//! Token-level scanner for Rust sources.
//!
//! The linter's rules are lexical (identifier sequences like
//! `Instant :: now` or `. unwrap (`), so a full parse is unnecessary —
//! but a naive substring grep would fire inside string literals, comments
//! and doc examples. This lexer walks the byte stream once, classifying
//! every position as code, comment or literal, and emits:
//!
//! * identifier / punctuation tokens with their 1-based line numbers, and
//! * comments (for `laces-lint: allow(..)` marker extraction).
//!
//! Handled literal forms: cooked strings with escapes, raw strings
//! `r"…"` / `r#"…"#` (any hash count), byte strings `b"…"` / `br#"…"#`,
//! char literals (including escaped ones), and lifetimes (`'a`, which are
//! *not* char literals). Block comments nest, per the Rust grammar.

/// One code token: an identifier, a number-free punctuation character, or
/// the two-character path separator `::`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifiers verbatim; punctuation as itself).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), captured for allow-marker parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether the comment is the first non-whitespace on its line
    /// (a standalone marker applies to the *next* line; a trailing
    /// marker applies to its own line).
    pub alone: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    alone: !line_has_code,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let alone = !line_has_code;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    alone,
                });
            }
            b'"' => {
                i = skip_cooked_string(b, i, &mut line);
                line_has_code = true;
            }
            b'\'' => {
                i = skip_char_or_lifetime(b, i, &mut line);
                line_has_code = true;
            }
            b'0'..=b'9' => {
                i = skip_number(b, i);
                line_has_code = true;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: b"…", r"…", r#"…"#, br#"…"#.
                if word == "b" && b.get(i) == Some(&b'"') {
                    i = skip_cooked_string(b, i, &mut line);
                    line_has_code = true;
                    continue;
                }
                if (word == "r" || word == "br") && matches!(b.get(i), Some(&b'"') | Some(&b'#')) {
                    if let Some(end) = skip_raw_string(b, i, &mut line) {
                        i = end;
                        line_has_code = true;
                        continue;
                    }
                    // `r#ident` raw identifiers fall through: emit `r`,
                    // then the `#` and the identifier as ordinary tokens.
                }
                out.tokens.push(Token {
                    text: word.to_string(),
                    line,
                });
                line_has_code = true;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    text: "::".to_string(),
                    line,
                });
                i += 2;
                line_has_code = true;
            }
            _ if c.is_ascii() => {
                out.tokens.push(Token {
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
                line_has_code = true;
            }
            _ => {
                // Non-ASCII outside strings/comments (e.g. an em-dash in a
                // macro-generated doc). Opaque to every rule: skip the byte.
                i += 1;
                line_has_code = true;
            }
        }
    }
    out
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_cooked_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose hash-or-quote run starts at `i` (the byte after
/// the `r`/`br` prefix). Returns `None` if this is not actually a raw
/// string opener (e.g. the `r#ident` raw-identifier form).
fn skip_raw_string(b: &[u8], start: usize, line: &mut u32) -> Option<usize> {
    let mut i = start;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Skip a char literal (`'x'`, `'\n'`, `'\u{1F980}'`) or a lifetime
/// (`'a`, `'_`, `'static`) starting at the quote.
fn skip_char_or_lifetime(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b.get(i + 1) == Some(&b'\\') {
        // Escaped char literal: scan to the closing quote.
        i += 2; // quote + backslash
        i += 1; // the escape head (n, t, ', u, x, …)
        while i < b.len() && b[i] != b'\'' {
            if b[i] == b'\n' {
                *line += 1;
            }
            i += 1;
        }
        return i + 1;
    }
    // `'X'` (X any single byte or UTF-8 head; multibyte chars end at the
    // next quote) vs a lifetime.
    if let Some(&next) = b.get(i + 1) {
        let is_ident_start = next == b'_' || next.is_ascii_alphabetic();
        if b.get(i + 2) == Some(&b'\'') && next != b'\'' {
            return i + 3; // ASCII char literal
        }
        if !is_ident_start {
            // Multibyte char literal (or stray quote): scan to close.
            i += 1;
            while i < b.len() && b[i] != b'\'' {
                if b[i] == b'\n' {
                    *line += 1;
                }
                i += 1;
            }
            return (i + 1).min(b.len());
        }
    }
    // Lifetime: consume the quote and the identifier.
    i += 1;
    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    i
}

/// Skip a numeric literal (integer, float, hex/oct/bin, suffixed).
fn skip_number(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    // A fractional part: `.` followed by a digit (so `1..10` stays a range).
    if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
        i += 1;
        while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| {
                t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            })
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let x = "Instant::now() in a string";
            // Instant::now() in a line comment
            /* Instant::now() in a block /* nested */ comment */
            let y = r#"thread_rng in a raw string"#;
            let z = b"HashMap in bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_captured_with_position() {
        let src = "let a = 1; // trailing\n// standalone\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].alone);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].alone);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive scanner would treat `'a` as an unterminated char literal
        // and swallow the rest of the file.
        let src = "fn f<'a>(x: &'a str) { x.unwrap(); }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn char_literals_including_escapes() {
        let src = "let q = '\\''; let n = '\\n'; let x = 'z'; y.unwrap();";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
        // The literal contents never surface as tokens.
        assert!(!ids.contains(&"z".to_string()));
    }

    #[test]
    fn path_separator_is_one_token() {
        let lexed = lex("Instant::now()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"line\nline\nline\";\nfoo.unwrap();\n";
        let lexed = lex(src);
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap");
        assert_eq!(unwrap.map(|t| t.line), Some(4));
    }

    #[test]
    fn raw_identifier_is_not_a_string_opener() {
        let ids = idents("let r#type = 1; x.unwrap();");
        assert!(ids.contains(&"unwrap".to_string()), "{ids:?}");
    }
}

//! Pass 1 of the flow analyzer: a deterministic, brace-aware symbol table
//! built on top of the token stream the lexer already produces.
//!
//! A full Rust parse is out of scope for a dependency-free linter, but the
//! flow rules (R8–R11) need more than per-token matching: they need to know
//! *which function* a token sits in, what that function calls, whether it
//! returns `Result`, and whether it touches locks, atomics, unordered
//! collections or serialization. This module extracts exactly that —
//! function spans (tracked through nested braces), the enclosing `impl`
//! type, an approximate call list with discard/guard context, and the
//! per-function "facts" the graph pass consumes.
//!
//! Everything here is deterministic in the token stream alone: no maps
//! keyed by hash order, no filesystem access, no ambient state.

use crate::lexer::Token;

/// A line-anchored fact inside a function body (a flow source, sink or
/// atomic-ordering site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// What matched, for diagnostics (e.g. `HashMap`, `serde_json::to_string`).
    pub what: String,
}

/// How a call's return value was discarded, if it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discard {
    /// `let _ = call(..);`
    LetUnderscore,
    /// `call(..);` as a bare statement.
    BareStatement,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee's final path segment (`save` in `store::save`).
    pub name: String,
    /// Full path segments when the call was path-qualified
    /// (`["laces_census", "store", "save"]`); empty for bare and method
    /// calls.
    pub path: Vec<String>,
    /// Whether this was a method call (`receiver.name(..)`).
    pub method: bool,
    /// Whether this was a macro invocation (`name!(..)`).
    pub is_macro: bool,
    /// 1-based source line.
    pub line: u32,
    /// Set when the call's return value is syntactically discarded.
    pub discard: Option<Discard>,
    /// Set when a named lock guard bound earlier in the function is still
    /// live (not yet `drop`ped) at this call: `(guard name, bind line)`.
    pub guard: Option<(String, u32)>,
}

/// A named lock-guard binding: `let [mut] g = <recv>.lock()/.read()/.write();`.
#[derive(Debug, Clone)]
pub struct GuardBind {
    /// The bound guard's name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// Token index of the binding's acquisition call.
    pub tok: usize,
    /// Token index of a matching `drop(g)`, if any.
    pub drop_tok: Option<usize>,
    /// Line of the `drop(g)`, if any.
    pub drop_line: Option<u32>,
}

/// One function definition and the flow facts extracted from its body.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl` block's type name, when inside one.
    pub impl_type: Option<String>,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// The crate the file belongs to (`census` for `crates/census/..`),
    /// empty for workspace-level `tests/`/`examples/` files.
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` scope (graph pass excludes these).
    pub is_test: bool,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the body acquires any lock (`.lock()` / `.read()` /
    /// `.write()` with empty argument lists).
    pub takes_lock: bool,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallSite>,
    /// Determinism-taint sources (unordered collections, ambient
    /// parallelism), in source order.
    pub sources: Vec<Site>,
    /// Serialization sinks (`serde_json::to_*`, `write_atomic`), in
    /// source order.
    pub sinks: Vec<Site>,
    /// `Ordering::Relaxed` sites, in source order (one per line).
    pub relaxed: Vec<Site>,
    /// Named lock-guard bindings, in source order.
    pub guard_binds: Vec<GuardBind>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 28] = [
    "Self", "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "while",
];

/// Unordered-iteration / ambient-ordering identifiers (R8 sources).
const SOURCE_UNORDERED: [&str; 2] = ["HashMap", "HashSet"];
const SOURCE_AMBIENT: [&str; 1] = ["available_parallelism"];

fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// Extract the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Parse one file's token stream into its function symbols. `skip[i]`
/// marks test-exempt tokens (from [`crate::exempt_tokens`]); functions
/// whose `fn` token is masked are recorded with `is_test = true`.
pub fn file_symbols(path: &str, tokens: &[Token], skip: &[bool]) -> Vec<FnSym> {
    let n = tokens.len();
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut out: Vec<FnSym> = Vec::new();
    let crate_name = crate_of(path).to_string();

    // Impl-block stack: (type name, brace depth at the block's `{`).
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    // Open-function stack: (index into `out`, brace depth at body `{`).
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    let mut depth = 0i32;

    let mut i = 0usize;
    while i < n {
        let t = text(i).unwrap_or("");
        match t {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                if let Some(&(fi, d)) = fn_stack.last() {
                    if depth < d {
                        out[fi].end_line = tokens[i].line;
                        fn_stack.pop();
                    }
                }
                if let Some(&(_, d)) = impl_stack.last() {
                    if depth < d {
                        impl_stack.pop();
                    }
                }
                i += 1;
            }
            "impl" => {
                // Scan the header up to its `{`; `for T` names the
                // implementing type, otherwise the first plain identifier
                // after any `impl<..>` generics does.
                let mut j = i + 1;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut angle = 0i32;
                while j < n {
                    match text(j) {
                        Some("{") if angle <= 0 => break,
                        Some(";") if angle <= 0 => break, // `impl Trait for T;` — not real Rust, bail
                        Some("<") => angle += 1,
                        Some(">") => angle -= 1,
                        Some("for") if angle <= 0 => {
                            after_for = true;
                            ty = None;
                        }
                        Some(s)
                            if angle <= 0
                                && is_ident(s)
                                && s != "dyn"
                                && (ty.is_none() || after_for) =>
                        {
                            ty = Some(s.to_string());
                            after_for = false;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if text(j) == Some("{") {
                    impl_stack.push((ty.unwrap_or_default(), depth + 1));
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            "fn" => {
                // `fn(` is a function-pointer type, not a definition.
                let Some(name_tok) = text(i + 1).filter(|s| is_ident(s)) else {
                    i += 1;
                    continue;
                };
                let def_line = tokens[i].line;
                let is_test = skip.get(i).copied().unwrap_or(false);
                // Scan the signature to the body `{` (or a `;` for
                // bodyless trait methods), noting a `Result` return.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut returns_result = false;
                let mut has_body = false;
                while j < n {
                    match text(j) {
                        Some("(") => paren += 1,
                        Some(")") => paren -= 1,
                        Some("<") => angle += 1,
                        Some(">") => angle -= 1,
                        Some("{") if paren == 0 => {
                            has_body = true;
                            break;
                        }
                        Some(";") if paren == 0 && angle <= 0 => break,
                        Some("Result") => returns_result = true,
                        _ => {}
                    }
                    j += 1;
                }
                if !has_body {
                    i = j.saturating_add(1).min(n);
                    continue;
                }
                out.push(FnSym {
                    name: name_tok.to_string(),
                    impl_type: impl_stack.last().map(|(ty, _)| ty.clone()),
                    file: path.to_string(),
                    crate_name: crate_name.clone(),
                    line: def_line,
                    end_line: def_line,
                    is_test,
                    returns_result,
                    takes_lock: false,
                    calls: Vec::new(),
                    sources: Vec::new(),
                    sinks: Vec::new(),
                    relaxed: Vec::new(),
                    guard_binds: Vec::new(),
                });
                fn_stack.push((out.len() - 1, depth + 1));
                depth += 1;
                i = j + 1;
            }
            _ => {
                if let Some(&(fi, _)) = fn_stack.last() {
                    scan_body_token(&mut out[fi], tokens, skip, i);
                }
                i += 1;
            }
        }
    }
    // Unclosed functions (truncated file): close at the last token's line.
    for (fi, _) in fn_stack {
        out[fi].end_line = tokens.last().map_or(out[fi].line, |t| t.line);
    }

    for f in &mut out {
        attach_guard_liveness(f);
    }
    out
}

/// Record whatever fact token `i` contributes to the innermost open
/// function `f`. Tokens masked by `skip` contribute nothing.
fn scan_body_token(f: &mut FnSym, tokens: &[Token], skip: &[bool], i: usize) {
    if skip.get(i).copied().unwrap_or(false) {
        return;
    }
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    let t = tokens[i].text.as_str();
    let line = tokens[i].line;

    if SOURCE_UNORDERED.contains(&t) || SOURCE_AMBIENT.contains(&t) {
        f.sources.push(Site {
            line,
            what: t.to_string(),
        });
    }
    if t == "Relaxed" && f.relaxed.last().map(|s| s.line) != Some(line) {
        f.relaxed.push(Site {
            line,
            what: "Ordering::Relaxed".to_string(),
        });
    }

    // Lock acquisition: `.lock()` / `.read()` / `.write()` with an empty
    // argument list (File::read/write take buffers, so the empty parens
    // discriminate the guard-returning forms).
    if matches!(t, "lock" | "read" | "write")
        && text(i.wrapping_sub(1)) == Some(".")
        && text(i + 1) == Some("(")
        && text(i + 2) == Some(")")
    {
        f.takes_lock = true;
        if let Some((name, bind_line)) = guard_binding_of(tokens, i) {
            f.guard_binds.push(GuardBind {
                name,
                line: bind_line,
                tok: i,
                drop_tok: None,
                drop_line: None,
            });
        }
    }

    // `drop(g)` — closes the most recent live guard named `g`.
    if t == "drop" && text(i + 1) == Some("(") {
        if let Some(g) = text(i + 2) {
            if text(i + 3) == Some(")") {
                if let Some(b) = f
                    .guard_binds
                    .iter_mut()
                    .rev()
                    .find(|b| b.name == g && b.drop_tok.is_none())
                {
                    b.drop_tok = Some(i);
                    b.drop_line = Some(line);
                }
            }
        }
    }

    // Call sites: `ident(` (plain/path/method) and `ident!(` (macro).
    if !is_ident(t) || NON_CALL_KEYWORDS.contains(&t) {
        return;
    }
    let is_macro = text(i + 1) == Some("!") && text(i + 2) == Some("(");
    let is_call = text(i + 1) == Some("(");
    if !is_call && !is_macro {
        return;
    }
    // The token before the whole path decides method-ness; rebuild the
    // path backwards over `seg::seg::name`.
    let mut start = i;
    let mut path_rev: Vec<String> = vec![t.to_string()];
    while start >= 2
        && text(start - 1) == Some("::")
        && text(start - 2).is_some_and(|s| is_ident(s) || s == "crate" || s == "super")
    {
        path_rev.push(tokens[start - 2].text.clone());
        start -= 2;
    }
    let before = start.checked_sub(1).and_then(text);
    let method = before == Some(".");
    let mut path: Vec<String> = path_rev.into_iter().rev().collect();
    if path.len() == 1 {
        path.clear(); // bare call: no qualifying path
    }
    let open = if is_macro { i + 2 } else { i + 1 };
    let discard = discard_of(tokens, start, open, method);
    f.calls.push(CallSite {
        name: t.to_string(),
        path,
        method,
        is_macro,
        line,
        discard,
        guard: None, // filled by attach_guard_liveness
    });
    // `serde_json::to_*` and `write_atomic` are serialization sinks.
    let qualified = f.calls.last().map(|c| c.path.as_slice()).unwrap_or(&[]);
    let is_serde_sink =
        qualified.iter().any(|s| s == "serde_json") && t.starts_with("to_") && !is_macro;
    if is_serde_sink || (t == "write_atomic" && !is_macro) {
        let what = if is_serde_sink {
            format!("serde_json::{t}")
        } else {
            t.to_string()
        };
        f.sinks.push(Site { line, what });
    }
    // Remember the call's token index via the guard-liveness side table
    // (encoded in the guard field later; see attach_guard_liveness).
    if let Some(c) = f.calls.last_mut() {
        c.guard = Some((format!("\u{0}tok{i}"), 0)); // sentinel, replaced below
    }
}

/// Find the `let [mut] name =` binding a lock acquisition at token `acq`
/// belongs to, walking back over the receiver chain.
fn guard_binding_of(tokens: &[Token], acq: usize) -> Option<(String, u32)> {
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    // Walk back over `recv . field . lock`-style chains: idents, `.`,
    // `::`, `self`. Anything else (e.g. a `)` from a call in the chain)
    // aborts — we only bind simple receivers.
    let mut j = acq.checked_sub(1)?; // the `.` before lock/read/write
    loop {
        let t = text(j)?;
        if t == "." || t == "::" || is_ident(t) {
            if j == 0 {
                return None;
            }
            let prev = text(j - 1)?;
            if prev == "." || prev == "::" || is_ident(prev) {
                j -= 1;
                continue;
            }
            break;
        }
        return None;
    }
    // `j` is the chain head; the binding shape is `let [mut] name = chain`.
    let eq = j.checked_sub(1)?;
    if text(eq)? != "=" {
        return None;
    }
    let mut k = eq.checked_sub(1)?;
    let name = text(k)?;
    if !is_ident(name) || name == "_" {
        return None;
    }
    let name = name.to_string();
    if text(k.wrapping_sub(1)) == Some("mut") {
        k = k.checked_sub(1)?;
    }
    if text(k.checked_sub(1)?)? != "let" {
        return None;
    }
    Some((name, tokens[acq].line))
}

/// Classify how the call starting at `path_start` (opening paren at
/// `open`) discards its result, if it does.
fn discard_of(tokens: &[Token], path_start: usize, open: usize, method: bool) -> Option<Discard> {
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    // The value is only discarded if the call's `)` is followed directly
    // by `;` — `foo(..)?`, `foo(..).ok()` and expression positions are
    // not discards of THIS call.
    let mut depth = 0i32;
    let mut k = open;
    loop {
        match text(k)? {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    if text(k + 1) != Some(";") {
        return None;
    }
    // Walk back over the receiver chain for method calls so the statement
    // boundary check starts before `recv.`; a chain containing calls (`)`)
    // is opaque — no discard claim.
    let mut s = path_start;
    if method {
        let mut j = s.checked_sub(1)?; // the `.`
        loop {
            let t = text(j)?;
            if t == "." || t == "::" || is_ident(t) {
                if j == 0 {
                    break;
                }
                let prev = text(j - 1)?;
                if prev == "." || prev == "::" || is_ident(prev) {
                    j -= 1;
                    continue;
                }
                break;
            }
            return None;
        }
        s = j;
    }
    match s.checked_sub(1).and_then(text) {
        Some("=") => {
            let us = s.checked_sub(2).and_then(text)?;
            let lt = s.checked_sub(3).and_then(text)?;
            (us == "_" && lt == "let").then_some(Discard::LetUnderscore)
        }
        Some(";") | Some("{") | Some("}") | None => Some(Discard::BareStatement),
        _ => None,
    }
}

/// Replace the token-index sentinels stashed in `CallSite::guard` with
/// real guard liveness: a call is "under guard" when some named guard was
/// bound before it and not dropped until after it.
fn attach_guard_liveness(f: &mut FnSym) {
    let binds = f.guard_binds.clone();
    for c in &mut f.calls {
        let Some((sentinel, _)) = c.guard.take() else {
            continue;
        };
        let Some(tok) = sentinel
            .strip_prefix("\u{0}tok")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        c.guard = binds
            .iter()
            .find(|b| b.tok < tok && b.drop_tok.is_none_or(|d| d > tok))
            .map(|b| (b.name.clone(), b.line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn syms(src: &str) -> Vec<FnSym> {
        let lexed = lexer::lex(src);
        let skip = crate::exempt_tokens(&lexed.tokens);
        file_symbols("crates/core/src/x.rs", &lexed.tokens, &skip)
    }

    #[test]
    fn fn_spans_and_nesting() {
        let src = "\
pub fn outer() {
    fn inner() -> Result<(), E> {
        helper();
    }
    inner();
}
";
        let s = syms(src);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "outer");
        assert_eq!((s[0].line, s[0].end_line), (1, 6));
        assert_eq!(s[1].name, "inner");
        assert!(s[1].returns_result);
        // `helper()` belongs to inner, `inner()` to outer.
        assert_eq!(s[1].calls.len(), 1);
        assert_eq!(s[1].calls[0].name, "helper");
        assert_eq!(s[0].calls.len(), 1);
        assert_eq!(s[0].calls[0].name, "inner");
    }

    #[test]
    fn impl_types_are_attached() {
        let src = "\
impl Store {
    fn save(&self) {}
}
impl Degraded for Report {
    fn reasons(&self) {}
}
";
        let s = syms(src);
        assert_eq!(s[0].impl_type.as_deref(), Some("Store"));
        assert_eq!(s[1].impl_type.as_deref(), Some("Report"));
    }

    #[test]
    fn qualified_calls_and_sinks() {
        let src = "\
fn publish(x: &X) {
    let text = serde_json::to_string(x);
    write_atomic(path, text);
    serde_json::from_str(text);
}
";
        let s = syms(src);
        assert_eq!(s[0].sinks.len(), 2, "{:?}", s[0].sinks);
        assert_eq!(s[0].sinks[0].what, "serde_json::to_string");
        assert_eq!(s[0].sinks[1].what, "write_atomic");
        let ser = &s[0].calls[0];
        assert_eq!(ser.path, vec!["serde_json", "to_string"]);
    }

    #[test]
    fn discard_shapes() {
        let src = "\
fn f(tx: &Sender) {
    let _ = tx.send(1);
    push_all(tx);
    let ok = tx.send(2);
    tx.send(3)?;
    consume(ok);
}
";
        let s = syms(src);
        let d: Vec<(String, Option<Discard>)> = s[0]
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.discard))
            .collect();
        assert_eq!(d[0], ("send".into(), Some(Discard::LetUnderscore)));
        assert_eq!(d[1], ("push_all".into(), Some(Discard::BareStatement)));
        assert_eq!(d[2], ("send".into(), None));
        assert_eq!(d[3], ("send".into(), None));
    }

    #[test]
    fn guard_liveness_covers_calls_until_drop() {
        let src = "\
fn f(m: &Mutex<T>) {
    before();
    let g = m.lock();
    risky();
    drop(g);
    after();
}
";
        let s = syms(src);
        let by_name = |n: &str| s[0].calls.iter().find(|c| c.name == n).unwrap().clone();
        assert!(by_name("before").guard.is_none());
        assert_eq!(by_name("risky").guard, Some(("g".into(), 3)));
        assert!(by_name("after").guard.is_none());
        assert!(s[0].takes_lock);
    }

    #[test]
    fn sources_and_relaxed_are_recorded() {
        let src = "\
fn f() {
    let m = HashMap::new();
    let n = std::thread::available_parallelism();
    c.fetch_add(1, Ordering::Relaxed);
}
";
        let s = syms(src);
        let whats: Vec<&str> = s[0].sources.iter().map(|x| x.what.as_str()).collect();
        assert_eq!(whats, vec!["HashMap", "available_parallelism"]);
        assert_eq!(s[0].relaxed.len(), 1);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let s = syms(src);
        assert!(!s[0].is_test);
        assert!(s[1].is_test);
    }
}

//! The grandfathered-violation baseline (`lint-baseline.json`).
//!
//! New code must be clean; pre-existing violations that are deliberate
//! (e.g. documented panicking accessors awaiting an API change) live in a
//! checked-in baseline so the linter can gate CI from day one without a
//! big-bang rewrite. Every entry carries a justification — an entry
//! without one is a lint error in itself.
//!
//! Entries match violations by `(file, rule, excerpt)` — the trimmed
//! source line — not by line number, so unrelated edits above a
//! grandfathered site do not invalidate the baseline. An entry suppresses
//! every occurrence of that excerpt in its file; `--update-baseline`
//! regenerates the file deterministically (sorted, stable JSON) while
//! preserving existing justifications.

use crate::json::{self, Json};
use crate::Violation;

/// One grandfathered violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// Rule id (`Rule::id` form).
    pub rule: String,
    /// The trimmed source line the violation sits on.
    pub excerpt: String,
    /// Why this site is allowed to stand (required, non-empty).
    pub justification: String,
}

/// Parse a baseline document. A missing `justification` (or an empty one)
/// is reported in the error list but does not drop the entry — the entry
/// still suppresses, the lint run still fails via `bad-allow` so the gap
/// gets fixed.
pub fn parse(src: &str) -> Result<(Vec<BaselineEntry>, Vec<String>), String> {
    let doc = json::parse(src)?;
    // Schema v1 (PR 3, token rules only) and v2 (flow rules) share the
    // entry shape; v1 baselines keep working and are migrated to v2 on the
    // next `--update-baseline`. Anything newer is from a future linter.
    if let Some(v) = doc.get("version").and_then(Json::as_num) {
        if !(1.0..=2.0).contains(&v) {
            return Err(format!(
                "unsupported baseline version {v} (expected 1 or 2)"
            ));
        }
    }
    let mut entries = Vec::new();
    let mut problems = Vec::new();
    let list = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| "baseline must have an \"entries\" array".to_string())?;
    for (idx, e) in list.iter().enumerate() {
        let field = |name: &str| e.get(name).and_then(Json::as_str).map(str::to_string);
        let (Some(file), Some(rule), Some(excerpt)) =
            (field("file"), field("rule"), field("excerpt"))
        else {
            return Err(format!("baseline entry {idx} is missing file/rule/excerpt"));
        };
        let justification = field("justification").unwrap_or_default();
        if justification.trim().is_empty() {
            problems.push(format!(
                "baseline entry for {file} [{rule}] has no justification"
            ));
        }
        entries.push(BaselineEntry {
            file,
            rule,
            excerpt,
            justification,
        });
    }
    Ok((entries, problems))
}

/// Render a baseline deterministically: entries sorted, two-space indent,
/// trailing newline. Byte-identical across reruns for the same entry set.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort();
    sorted.dedup();
    let mut out = String::from("{\n  \"version\": 2,\n  \"entries\": [");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"file\": \"{}\",\n      \"rule\": \"{}\",\n      \
             \"excerpt\": \"{}\",\n      \"justification\": \"{}\"\n    }}",
            json::escape(&e.file),
            json::escape(&e.rule),
            json::escape(&e.excerpt),
            json::escape(&e.justification)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Split `violations` into (non-baselined, baselined-count) and report
/// stale entries (entries matching nothing — the site was fixed; they
/// should be pruned with `--update-baseline`).
pub fn apply(
    violations: Vec<Violation>,
    baseline: &[BaselineEntry],
) -> (Vec<Violation>, usize, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.len()];
    let mut remaining = Vec::new();
    let mut suppressed = 0usize;
    for v in violations {
        let hit = baseline
            .iter()
            .position(|e| e.file == v.file && e.rule == v.rule.id() && e.excerpt == v.excerpt);
        match hit {
            Some(idx) => {
                used[idx] = true;
                suppressed += 1;
            }
            None => remaining.push(v),
        }
    }
    let stale = baseline
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (remaining, suppressed, stale)
}

/// Build an updated baseline from the current violation set: keep the
/// justification of any entry that still matches, mark new entries as
/// needing one (which `bad-allow` will then flag until a human writes it).
pub fn regenerate(violations: &[Violation], old: &[BaselineEntry]) -> Vec<BaselineEntry> {
    let mut out: Vec<BaselineEntry> = violations
        .iter()
        .map(|v| {
            let justification = old
                .iter()
                .find(|e| e.file == v.file && e.rule == v.rule.id() && e.excerpt == v.excerpt)
                .map(|e| e.justification.clone())
                .unwrap_or_default();
            BaselineEntry {
                file: v.file.clone(),
                rule: v.rule.id().to_string(),
                excerpt: v.excerpt.clone(),
                justification,
            }
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn v(file: &str, rule: Rule, excerpt: &str) -> Violation {
        Violation {
            file: file.to_string(),
            line: 10,
            rule,
            excerpt: excerpt.to_string(),
            message: rule.describe().to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip_is_stable() {
        let entries = vec![
            BaselineEntry {
                file: "crates/x/src/a.rs".into(),
                rule: "panic-path".into(),
                excerpt: "foo.unwrap();".into(),
                justification: "documented invariant".into(),
            },
            BaselineEntry {
                file: "crates/x/src/a.rs".into(),
                rule: "wall-clock".into(),
                excerpt: "Instant::now();".into(),
                justification: "perf counter".into(),
            },
        ];
        let text = render(&entries);
        let (back, problems) = parse(&text).unwrap();
        assert!(problems.is_empty());
        assert_eq!(back, entries);
        // Determinism: re-rendering parsed entries is byte-identical.
        assert_eq!(render(&back), text);
    }

    #[test]
    fn apply_matches_by_excerpt_not_line() {
        let baseline = vec![BaselineEntry {
            file: "crates/x/src/a.rs".into(),
            rule: "panic-path".into(),
            excerpt: "foo.unwrap();".into(),
            justification: "why".into(),
        }];
        let (rest, suppressed, stale) = apply(
            vec![
                v("crates/x/src/a.rs", Rule::PanicPath, "foo.unwrap();"),
                v("crates/x/src/a.rs", Rule::PanicPath, "bar.unwrap();"),
            ],
            &baseline,
        );
        assert_eq!(suppressed, 1);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].excerpt, "bar.unwrap();");
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let baseline = vec![BaselineEntry {
            file: "crates/x/src/gone.rs".into(),
            rule: "print-path".into(),
            excerpt: "println!(\"x\");".into(),
            justification: "was needed".into(),
        }];
        let (_, _, stale) = apply(vec![], &baseline);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn missing_justification_is_reported_but_still_suppresses() {
        let text = r#"{"version":1,"entries":[{"file":"f.rs","rule":"panic-path","excerpt":"x.unwrap()"}]}"#;
        let (entries, problems) = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("no justification"));
    }

    #[test]
    fn regenerate_preserves_existing_justifications() {
        let old = vec![BaselineEntry {
            file: "a.rs".into(),
            rule: "panic-path".into(),
            excerpt: "x.unwrap();".into(),
            justification: "keep me".into(),
        }];
        let new = regenerate(
            &[
                v("a.rs", Rule::PanicPath, "x.unwrap();"),
                v("b.rs", Rule::PrintPath, "println!();"),
            ],
            &old,
        );
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].justification, "keep me");
        assert_eq!(new[1].justification, "");
    }
}

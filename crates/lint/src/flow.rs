//! Pass 2 of the flow analyzer: the workspace call graph and the graph
//! rules R8–R11.
//!
//! The graph is approximate by design (see DESIGN.md §16): bare names
//! resolve within the defining crate first (falling back to any workspace
//! function of that name), `laces_<crate>::..` qualified paths resolve
//! across crates, and `Type::method` paths resolve through the impl type.
//! Test functions, `tests/` trees, `benches/` and `examples/` never enter
//! the graph — a test driver serializing artifacts must not taint library
//! code.
//!
//! Rule semantics:
//!
//! * **R8 determinism-taint** — a source site (unordered collection,
//!   ambient parallelism) fires when its enclosing function is reachable
//!   from some function that can also reach a serialization sink: the
//!   value it computes can end up in a serialized artifact. `--explain`
//!   prints the full source → sink path.
//! * **R9 discarded-fallibility** — `let _ =` / bare-statement discard of
//!   a call the symbol table knows returns `Result` (workspace functions
//!   plus a short list of known-fallible externals such as channel `send`
//!   and `write!`).
//! * **R10 lock-hygiene** — a named lock guard held across a call into
//!   another lock-taking function (deadlock-shaped), or held over a long
//!   span without an intervening `drop`.
//! * **R11 atomic-ordering** — `Ordering::Relaxed` in a function whose
//!   values can reach a serialization sink (same reachability as R8).
//!
//! Everything is ordered by `BTreeMap`/sorted vectors: the analysis is
//! byte-identical across reruns and file-walk orders.

use std::collections::{BTreeMap, VecDeque};

use crate::rules::{Hit, Rule};
use crate::symbols::{CallSite, Discard, FnSym};

/// Externals (not in the symbol table) known to return `Result`: channel
/// sends, the `write!` family (which return `fmt::Result`/`io::Result`),
/// and the fallible `std::fs` operations this workspace uses.
const EXTERNAL_RESULT_FNS: [&str; 10] = [
    "create_dir_all",
    "remove_dir_all",
    "remove_file",
    "rename",
    "send",
    "set_len",
    "sync_all",
    "try_send",
    "write",
    "writeln",
];

/// A lock guard must be dropped (or the function must end) within this
/// many lines of the binding; longer spans are R10's "guard crossing a
/// long span" shape.
const LONG_GUARD_SPAN_LINES: u32 = 30;

/// One step of a source → sink path: a function plus the line of the call
/// that led to it (0 for the first step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The function's display name (`Type::name` or `name`).
    pub func: String,
    /// The function's file.
    pub file: String,
    /// The function's definition line.
    pub line: u32,
    /// The line of the call edge that reached this function (0 = root).
    pub via_line: u32,
}

/// The stored explanation of one graph-rule hit (pre-suppression — even
/// justified sites can be explained).
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// The rule (R8 or R11).
    pub rule: Rule,
    /// Hit location.
    pub file: String,
    /// Hit line.
    pub line: u32,
    /// What matched at the hit site.
    pub what: String,
    /// Chain from the source's function up to the shared driver
    /// (reverse call order: `steps_up[0]` is the source's function).
    pub steps_up: Vec<PathStep>,
    /// Chain from the shared driver down to the sink-containing function
    /// (`steps_down[0]` is the driver, last is the sink's function).
    pub steps_down: Vec<PathStep>,
    /// The sink site inside the last `steps_down` function.
    pub sink: (String, u32, String),
}

/// The result of the graph pass over a workspace.
#[derive(Debug, Default)]
pub struct FlowAnalysis {
    /// Raw graph-rule hits per file (pre-marker, pre-baseline).
    pub hits: BTreeMap<String, Vec<Hit>>,
    /// Explanations for R8/R11 hits, keyed `(file, line)`.
    pub paths: BTreeMap<(String, u32), FlowPath>,
}

/// The symbol table plus its resolved call graph.
pub struct Graph<'a> {
    fns: &'a [FnSym],
    /// Caller → sorted `(callee, call line)` edges.
    edges: Vec<Vec<(usize, u32)>>,
    /// Function name → ids (non-test functions only).
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// `(impl type, method name)` → ids.
    by_type_name: BTreeMap<(&'a str, &'a str), Vec<usize>>,
}

fn display_name(f: &FnSym) -> String {
    match &f.impl_type {
        Some(ty) if !ty.is_empty() => format!("{ty}::{}", f.name),
        _ => f.name.clone(),
    }
}

fn step_of(f: &FnSym, via_line: u32) -> PathStep {
    PathStep {
        func: display_name(f),
        file: f.file.clone(),
        line: f.line,
        via_line,
    }
}

impl<'a> Graph<'a> {
    /// Build the call graph over all non-test functions.
    pub fn build(fns: &'a [FnSym]) -> Graph<'a> {
        // Index: name → fn ids, and (type, name) → fn ids, both sorted by
        // construction (fns arrive in sorted-file, source order).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(id);
            if let Some(ty) = &f.impl_type {
                by_type_name
                    .entry((ty.as_str(), f.name.as_str()))
                    .or_default()
                    .push(id);
            }
        }
        let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for c in &f.calls {
                if c.is_macro {
                    continue;
                }
                let mut targets: Vec<usize> =
                    resolve(c, &f.crate_name, &by_name, &by_type_name, fns);
                targets.retain(|&t| t != id);
                for t in targets {
                    edges[id].push((t, c.line));
                }
            }
            edges[id].sort_unstable();
            edges[id].dedup_by_key(|(t, _)| *t);
        }
        Graph {
            fns,
            edges,
            by_name,
            by_type_name,
        }
    }

    /// Functions that can reach a serialization sink through call edges
    /// (including sink-containing functions themselves). For each, the
    /// next hop toward the nearest sink, for path reconstruction.
    fn sink_reachers(&self) -> BTreeMap<usize, Option<(usize, u32)>> {
        // Reverse edges, then BFS outward from sink-containing functions.
        let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.fns.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for &(callee, line) in outs {
                rev[callee].push((caller, line));
            }
        }
        for r in &mut rev {
            r.sort_unstable();
        }
        let mut next_hop: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (id, f) in self.fns.iter().enumerate() {
            if !f.is_test && !f.sinks.is_empty() {
                next_hop.insert(id, None);
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &(caller, line) in &rev[id] {
                next_hop.entry(caller).or_insert_with(|| {
                    queue.push_back(caller);
                    Some((id, line))
                });
            }
        }
        next_hop
    }

    /// Run the graph rules; `in_scope(rule, file)` gates per-file scope
    /// and `r3_covers(file)` suppresses unordered sources where R3 already
    /// bans the types outright.
    pub fn check(
        &self,
        in_scope: impl Fn(Rule, &str) -> bool,
        r3_covers: impl Fn(&str) -> bool,
    ) -> FlowAnalysis {
        let mut out = FlowAnalysis::default();
        let reachers = self.sink_reachers();

        // Taint frontier: BFS downward from every sink-reaching function.
        // parent[x] = (caller, call line) on the first (deterministic)
        // visit; roots carry no parent.
        let mut parent: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &id in reachers.keys() {
            parent.insert(id, None);
            queue.push_back(id);
        }
        while let Some(id) = queue.pop_front() {
            for &(callee, line) in &self.edges[id] {
                if self.fns[callee].is_test {
                    continue;
                }
                parent.entry(callee).or_insert_with(|| {
                    queue.push_back(callee);
                    Some((id, line))
                });
            }
        }

        for (id, f) in self.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let tainted = parent.contains_key(&id);

            // R8: determinism-taint sources in sink-reaching scope.
            if tainted && in_scope(Rule::DeterminismTaint, &f.file) {
                for s in &f.sources {
                    let unordered = s.what == "HashMap" || s.what == "HashSet";
                    if unordered && r3_covers(&f.file) {
                        continue; // R3 already bans the type here outright
                    }
                    self.record_flow_hit(
                        &mut out,
                        Rule::DeterminismTaint,
                        f,
                        id,
                        s,
                        &parent,
                        &reachers,
                    );
                }
            }
            // R11: Relaxed orderings in sink-reaching scope.
            if tainted && in_scope(Rule::AtomicOrdering, &f.file) {
                for s in &f.relaxed {
                    self.record_flow_hit(
                        &mut out,
                        Rule::AtomicOrdering,
                        f,
                        id,
                        s,
                        &parent,
                        &reachers,
                    );
                }
            }
            // R9: discarded fallibility.
            if in_scope(Rule::DiscardedFallibility, &f.file) {
                for c in &f.calls {
                    let Some(d) = c.discard else { continue };
                    if !self.returns_result(c, &f.crate_name) {
                        continue;
                    }
                    let shape = match d {
                        Discard::LetUnderscore => "let _ =",
                        Discard::BareStatement => "bare `;`",
                    };
                    out.hits.entry(f.file.clone()).or_default().push(Hit {
                        rule: Rule::DiscardedFallibility,
                        line: c.line,
                        matched: format!("{} {}(..) discards Result", shape, c.name),
                    });
                }
            }
            // R10: lock hygiene.
            if in_scope(Rule::LockHygiene, &f.file) {
                for c in &f.calls {
                    let Some((guard, bind_line)) = &c.guard else {
                        continue;
                    };
                    if c.is_macro || !self.callee_takes_lock(c, &f.crate_name) {
                        continue;
                    }
                    out.hits.entry(f.file.clone()).or_default().push(Hit {
                        rule: Rule::LockHygiene,
                        line: c.line,
                        matched: format!(
                            "{}(..) takes a lock while guard `{guard}` (line {bind_line}) is held",
                            c.name
                        ),
                    });
                }
                for b in &f.guard_binds {
                    let end = b.drop_line.unwrap_or(f.end_line);
                    if end.saturating_sub(b.line) > LONG_GUARD_SPAN_LINES {
                        out.hits.entry(f.file.clone()).or_default().push(Hit {
                            rule: Rule::LockHygiene,
                            line: b.line,
                            matched: format!(
                                "guard `{}` held for {} lines without drop",
                                b.name,
                                end - b.line
                            ),
                        });
                    }
                }
            }
        }
        for hits in out.hits.values_mut() {
            hits.sort_by(|a, b| {
                (a.line, a.rule.id(), a.matched.as_str()).cmp(&(
                    b.line,
                    b.rule.id(),
                    b.matched.as_str(),
                ))
            });
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn record_flow_hit(
        &self,
        out: &mut FlowAnalysis,
        rule: Rule,
        f: &FnSym,
        id: usize,
        site: &crate::symbols::Site,
        parent: &BTreeMap<usize, Option<(usize, u32)>>,
        reachers: &BTreeMap<usize, Option<(usize, u32)>>,
    ) {
        out.hits.entry(f.file.clone()).or_default().push(Hit {
            rule,
            line: site.line,
            matched: site.what.clone(),
        });
        // Reconstruct the path only for the first hit at a location.
        let key = (f.file.clone(), site.line);
        if out.paths.contains_key(&key) {
            return;
        }
        // Up: from the source's fn to the taint root (a sink-reacher).
        let mut steps_up = vec![step_of(f, 0)];
        let mut cur = id;
        while let Some(Some((caller, line))) = parent.get(&cur) {
            steps_up.push(step_of(&self.fns[*caller], *line));
            cur = *caller;
        }
        // Down: from that root to the sink-containing function.
        let mut steps_down = vec![step_of(&self.fns[cur], 0)];
        let mut s = cur;
        while let Some(Some((next, line))) = reachers.get(&s) {
            steps_down.push(step_of(&self.fns[*next], *line));
            s = *next;
        }
        let sink_fn = &self.fns[s];
        let sink = sink_fn
            .sinks
            .first()
            .map(|x| (sink_fn.file.clone(), x.line, x.what.clone()))
            .unwrap_or((sink_fn.file.clone(), sink_fn.line, "sink".to_string()));
        out.paths.insert(
            key,
            FlowPath {
                rule,
                file: f.file.clone(),
                line: site.line,
                what: site.what.clone(),
                steps_up,
                steps_down,
                sink,
            },
        );
    }

    /// Does this call resolve to anything `Result`-returning?
    fn returns_result(&self, c: &CallSite, caller_crate: &str) -> bool {
        if c.is_macro {
            return matches!(c.name.as_str(), "write" | "writeln");
        }
        if EXTERNAL_RESULT_FNS.contains(&c.name.as_str())
            && (c.method || c.path.iter().any(|s| s == "fs"))
        {
            return true;
        }
        resolve(c, caller_crate, &self.by_name, &self.by_type_name, self.fns)
            .iter()
            .any(|&t| self.fns[t].returns_result)
    }

    fn callee_takes_lock(&self, c: &CallSite, caller_crate: &str) -> bool {
        if c.is_macro {
            return false;
        }
        resolve(c, caller_crate, &self.by_name, &self.by_type_name, self.fns)
            .iter()
            .any(|&t| self.fns[t].takes_lock)
    }
}

/// Resolve a call site to candidate function ids. Bare names and methods
/// resolve within the caller's crate first, falling back to the whole
/// workspace; `laces_<crate>::..` paths pin the crate; `Type::name` paths
/// pin the impl type.
fn resolve(
    c: &CallSite,
    caller_crate: &str,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_name: &BTreeMap<(&str, &str), Vec<usize>>,
    fns: &[FnSym],
) -> Vec<usize> {
    let name = c.name.as_str();
    // `Type::name` — penultimate segment naming a workspace impl type.
    if let Some(pen) = c.path.iter().rev().nth(1) {
        if pen.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
            if let Some(ids) = by_type_name.get(&(pen.as_str(), name)) {
                return ids.clone();
            }
        }
        // `laces_<crate>::..::name` — pin the crate.
        if let Some(krate) = c.path.first().and_then(|seg| seg.strip_prefix("laces_")) {
            if let Some(ids) = by_name.get(name) {
                let pinned: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].crate_name == krate)
                    .collect();
                if !pinned.is_empty() {
                    return pinned;
                }
            }
            return Vec::new();
        }
    }
    let Some(ids) = by_name.get(name) else {
        return Vec::new();
    };
    let same_crate: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| fns[id].crate_name == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    ids.clone()
}

/// Render a stored source → sink path as the `--explain` text.
pub fn render_path(p: &FlowPath) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "[{}] {}:{} `{}`\n",
        p.rule.id(),
        p.file,
        p.line,
        p.what
    ));
    out.push_str(&format!("  {}\n", p.rule.describe()));
    out.push_str("  source:\n");
    for (i, s) in p.steps_up.iter().enumerate() {
        if i == 0 {
            out.push_str(&format!("    fn {} — {}:{}\n", s.func, s.file, s.line));
        } else {
            out.push_str(&format!(
                "    ^ called from fn {} — {}:{} (call at line {})\n",
                s.func, s.file, s.line, s.via_line
            ));
        }
    }
    if p.steps_down.len() > 1 {
        out.push_str("  ...which also reaches:\n");
        for (i, s) in p.steps_down.iter().enumerate() {
            if i == 0 {
                continue; // same function as the last steps_up entry
            }
            out.push_str(&format!(
                "    v calls fn {} — {}:{} (call at line {})\n",
                s.func, s.file, s.line, s.via_line
            ));
        }
    }
    out.push_str(&format!(
        "  sink: `{}` — {}:{}\n",
        p.sink.2, p.sink.0, p.sink.1
    ));
    out
}

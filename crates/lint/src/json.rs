//! A minimal JSON reader/writer for the baseline file and `--format json`
//! output.
//!
//! The linter is deliberately dependency-free (it must keep working when
//! the crates it polices — including the serde shims — are broken), so it
//! carries its own ~150-line JSON subset: objects, arrays, strings with
//! escapes, integers, booleans and null. That is the entire schema of
//! `lint-baseline.json`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; the baseline schema only uses small ints).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for diagnostics.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {i}")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                fields.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*i), Some(&b'"'));
    *i += 1;
    let mut out = Vec::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        // The baseline never stores surrogate pairs; map
                        // unpaired surrogates to U+FFFD rather than erroring.
                        let ch = char::from_u32(hex).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

/// Escape a string for embedding in JSON output (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                // laces-lint: allow(discarded-fallibility) — fmt::Write to a String is infallible
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_schema() {
        let src = r#"{
  "version": 1,
  "entries": [
    {"file": "a.rs", "rule": "panic-path", "excerpt": "x.unwrap();", "justification": "ok \"quoted\""}
  ]
}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("version"), Some(&Json::Num(1.0)));
        let entries = v.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("justification").and_then(Json::as_str),
            Some("ok \"quoted\"")
        );
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        let nasty = "a\"b\\c\nd\te\u{1}f—g";
        let json = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&json).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
    }
}

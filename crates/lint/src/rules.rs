//! The rule set: what LACeS's determinism and robustness invariants
//! forbid, and where each rule applies.
//!
//! Every rule is derived from an invariant the system already relies on
//! (DESIGN.md §9–§11): reruns must be bit-identical, the measurement path
//! must degrade rather than panic, and all output flows through typed
//! results or `laces-obs`. The linter enforces them lexically; scope is
//! decided per file from its workspace-relative path.

use crate::lexer::Token;

/// A lint rule. Rule ids (`Rule::id`) are what allow markers and baseline
/// entries name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// R1: no wall-clock reads (`Instant::now`, `SystemTime::now`) outside
    /// `laces-obs` (which owns simulated time) and bench/example code.
    /// Wall-clock values differ across reruns and would leak
    /// nondeterminism into serialized artifacts.
    WallClock,
    /// R2: no ambient randomness (`thread_rng`, `from_entropy`, `OsRng`).
    /// Every RNG must be seeded from the world/measurement seed so a rerun
    /// of the same census day reproduces bit-identically.
    AmbientRng,
    /// R3: no `HashMap`/`HashSet` in code feeding serialized artifacts
    /// (census store, telemetry sidecar, world snapshots, bench
    /// artifacts). Their iteration order is randomized per process; use
    /// `BTreeMap`/`BTreeSet` or sort explicitly.
    UnorderedIter,
    /// R4: no `.unwrap()` / `.expect()` / `panic!` / `todo!` /
    /// `unimplemented!` in measurement-path library code now that
    /// `MeasurementError` exists — the path degrades, it does not abort.
    PanicPath,
    /// R5: no `println!`-family output in library crates; results flow
    /// through return values and `laces-obs` telemetry.
    PrintPath,
    /// R6: no direct `degraded` / `worker_health` field matching on the
    /// measurement path outside `impl Degraded for ..` blocks. Degradation
    /// state is read through the [`Degraded`] trait
    /// (`degraded_reasons()` / `is_degraded()`) so the sorted+dedup
    /// invariant and the "published anyway, flagged why" contract stay in
    /// one place; ad-hoc field pokes bypass both.
    DegradedBypass,
    /// R7: no numeric `as`-truncation (`as u8` / `as u16` / `as u32`) on
    /// identifier-typed operands — values whose names mark them as ids or
    /// indices (`*_id`, `worker`, `site`, `probe`, `vp`, `target`, ...).
    /// `as` silently wraps out-of-range values, and a wrapped worker or
    /// target id mis-attributes every downstream record; the sharded
    /// pipeline multiplies the exposure (every shard re-derives worker
    /// ids). Use `u16::try_from(..)` (with a typed error or a sentinel
    /// `unwrap_or`) so the narrowing is checked.
    AsTruncation,
    /// R8: determinism-taint — an unordered-iteration or ambient-ordering
    /// source (`HashMap`/`HashSet`, `available_parallelism`) in a function
    /// from which a serialization sink (`serde_json`, the store's
    /// `write_atomic`) is reachable through the workspace call graph.
    /// Unlike R3's crate allow-list, this is real reachability: a HashMap
    /// three calls upstream of a serialized sidecar fires wherever it
    /// lives. `--explain FILE:LINE` prints the full source→sink path.
    DeterminismTaint,
    /// R9: discarded fallibility — `let _ =` or a bare-`;` statement
    /// discarding a call the symbol table knows returns `Result` (or a
    /// known-fallible external such as channel `send` / `write!`). A
    /// swallowed error in a measurement crate silently degrades the census
    /// without flagging it; route through `?` or an explicit policy.
    DiscardedFallibility,
    /// R10: lock hygiene — a named lock guard held across a call into
    /// another lock-taking function (the deadlock shape), or held over a
    /// long span without an intervening `drop`. The sharded hot path must
    /// not serialize on incidental guard lifetimes.
    LockHygiene,
    /// R11: atomic ordering — `Ordering::Relaxed` in a function from which
    /// a serialization sink is reachable (same taint frontier as R8). A
    /// relaxed load feeding a canonical artifact can observe different
    /// values across reruns; the pr6 wire-geometry caches are the
    /// motivating case.
    AtomicOrdering,
    /// R12: ad-hoc metric-name string literal at a telemetry write site
    /// (`inc` / `set_gauge` / `record_histogram`). Two spellings of the
    /// same concept silently split a longitudinal series; production call
    /// sites reference the `laces_obs::names` registry consts (per-worker
    /// names go through `names::per_worker`, which keeps the stem
    /// registered).
    UnregisteredMetric,
    /// A malformed `laces-lint: allow(..)` marker: unknown rule id or
    /// missing justification. Markers must stay auditable.
    BadAllow,
}

/// All enforceable rules, in id order (excludes the marker meta-rule).
pub const ALL_RULES: [Rule; 12] = [
    Rule::WallClock,
    Rule::AmbientRng,
    Rule::UnorderedIter,
    Rule::PanicPath,
    Rule::PrintPath,
    Rule::DegradedBypass,
    Rule::AsTruncation,
    Rule::DeterminismTaint,
    Rule::DiscardedFallibility,
    Rule::LockHygiene,
    Rule::AtomicOrdering,
    Rule::UnregisteredMetric,
];

impl Rule {
    /// Stable kebab-case id used in markers, baselines and JSON output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::PanicPath => "panic-path",
            Rule::PrintPath => "print-path",
            Rule::DegradedBypass => "degraded-bypass",
            Rule::AsTruncation => "as-truncation",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::DiscardedFallibility => "discarded-fallibility",
            Rule::LockHygiene => "lock-hygiene",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::UnregisteredMetric => "unregistered-metric",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parse a rule id (as written in an allow marker).
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "wall-clock" => Some(Rule::WallClock),
            "ambient-rng" => Some(Rule::AmbientRng),
            "unordered-iter" => Some(Rule::UnorderedIter),
            "panic-path" => Some(Rule::PanicPath),
            "print-path" => Some(Rule::PrintPath),
            "degraded-bypass" => Some(Rule::DegradedBypass),
            "as-truncation" => Some(Rule::AsTruncation),
            "determinism-taint" => Some(Rule::DeterminismTaint),
            "discarded-fallibility" => Some(Rule::DiscardedFallibility),
            "lock-hygiene" => Some(Rule::LockHygiene),
            "atomic-ordering" => Some(Rule::AtomicOrdering),
            "unregistered-metric" => Some(Rule::UnregisteredMetric),
            "bad-allow" => Some(Rule::BadAllow),
            _ => None,
        }
    }

    /// One-line description shown in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock read on a deterministic path — stage timing comes from \
                 laces-obs SimClock, not Instant/SystemTime"
            }
            Rule::AmbientRng => {
                "ambient randomness — every RNG must be seeded from the world or \
                 measurement seed so reruns are bit-identical"
            }
            Rule::UnorderedIter => {
                "HashMap/HashSet in a serialized path — iteration order is \
                 per-process random; use BTreeMap/BTreeSet or sort explicitly"
            }
            Rule::PanicPath => {
                "panicking call in measurement-path library code — propagate \
                 MeasurementError (or the module's typed error) instead"
            }
            Rule::PrintPath => {
                "direct stdout/stderr output in a library crate — route through \
                 laces-obs telemetry or return the value"
            }
            Rule::DegradedBypass => {
                "direct degraded/worker_health field access bypasses the Degraded \
                 trait — read degradation through degraded_reasons()/is_degraded()"
            }
            Rule::AsTruncation => {
                "numeric `as`-truncation of an id-typed value — `as` wraps \
                 silently and a wrapped worker/target id mis-attributes records; \
                 use u16::try_from(..) so the narrowing is checked"
            }
            Rule::DeterminismTaint => {
                "unordered/ambient source in a function that reaches a \
                 serialization sink through the call graph — its value can end \
                 up in a canonical artifact; sort, seed or restructure \
                 (--explain FILE:LINE shows the path)"
            }
            Rule::DiscardedFallibility => {
                "discarded Result in a measurement crate — a swallowed error \
                 silently degrades the census; propagate with `?` or handle \
                 the failure explicitly"
            }
            Rule::LockHygiene => {
                "lock guard held across another lock acquisition or a long \
                 span — deadlock-shaped and serializes the sharded hot path; \
                 drop the guard (or narrow its scope) first"
            }
            Rule::AtomicOrdering => {
                "Ordering::Relaxed in a function that reaches a serialization \
                 sink — a relaxed value feeding a canonical artifact can \
                 differ across reruns; use a deterministic source or justify \
                 why the value is order-independent"
            }
            Rule::UnregisteredMetric => {
                "ad-hoc metric-name literal at a telemetry write site — use a \
                 laces_obs::names registry const (or names::per_worker over a \
                 registered stem) so the longitudinal series cannot fork"
            }
            Rule::BadAllow => {
                "malformed laces-lint allow marker — needs a known rule id and a \
                 non-empty justification"
            }
        }
    }

    /// Whether this rule applies to the file at workspace-relative `path`
    /// (forward slashes). Test sources (`tests/` trees) and `#[cfg(test)]`
    /// regions are exempt from every rule; the latter is handled by the
    /// scanner, the former here.
    pub fn applies_to(self, path: &str) -> bool {
        // R2 holds everywhere we scan: even examples, tests and bench runs
        // must reproduce from their seeds.
        if matches!(self, Rule::AmbientRng | Rule::BadAllow) {
            return true;
        }
        if is_test_tree(path) {
            return false;
        }
        match self {
            Rule::AmbientRng | Rule::BadAllow => unreachable!("handled above"),
            // R1: library src of every crate except laces-obs (owner of
            // time) and laces-bench (wall-clock throughput is its job).
            Rule::WallClock => {
                is_lib_src(path) && !in_crate(path, "obs") && !in_crate(path, "bench")
            }
            // R3: the crates whose in-memory state reaches disk — census
            // records/stats, telemetry sidecars, world snapshots consumed
            // by deterministic tests, and bench artifacts.
            Rule::UnorderedIter => SERIALIZED_PATH_CRATES
                .iter()
                .any(|c| in_crate(path, c) && under_src(path)),
            // R4: measurement-path library code.
            Rule::PanicPath => {
                is_lib_src(path) && MEASUREMENT_CRATES.iter().any(|c| in_crate(path, c))
            }
            // R5: every library crate (bench is a reporting harness and
            // prints by design).
            Rule::PrintPath => is_lib_src(path) && !in_crate(path, "bench"),
            // R6: measurement-path library code, except laces-obs — the
            // owner of RunReport is allowed at its own fields.
            Rule::DegradedBypass => {
                is_lib_src(path)
                    && !in_crate(path, "obs")
                    && MEASUREMENT_CRATES.iter().any(|c| in_crate(path, c))
            }
            // R7: measurement-path library code — the crates where a
            // wrapped id reaches records, telemetry or the wire.
            Rule::AsTruncation => {
                is_lib_src(path) && MEASUREMENT_CRATES.iter().any(|c| in_crate(path, c))
            }
            // R8/R11: graph rules — no crate allow-list. Any crate `src/`
            // (bins included: a main.rs serializing a report is exactly the
            // sink that matters); the call graph itself excludes test code.
            Rule::DeterminismTaint | Rule::AtomicOrdering => under_src(path) && !is_test_tree(path),
            // R9/R10/R12: measurement-path library code, like R4.
            Rule::DiscardedFallibility | Rule::LockHygiene | Rule::UnregisteredMetric => {
                is_lib_src(path) && MEASUREMENT_CRATES.iter().any(|c| in_crate(path, c))
            }
        }
    }
}

/// Crates whose library code sits on the measurement path (R4/R9/R10
/// scope). `lint` polices the others' determinism contract and so holds
/// itself to the same robustness bar (self-clean since flow-lint v2).
pub const MEASUREMENT_CRATES: [&str; 8] = [
    "census", "core", "gcd", "health", "lint", "netsim", "obs", "query",
];

/// Crates whose `src/` feeds serialized artifacts (R3 scope).
pub const SERIALIZED_PATH_CRATES: [&str; 6] =
    ["bench", "census", "health", "netsim", "obs", "query"];

fn in_crate(path: &str, name: &str) -> bool {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .is_some_and(|c| c == name)
}

fn under_src(path: &str) -> bool {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split_once('/'))
        .is_some_and(|(_, sub)| sub.starts_with("src/"))
}

/// `crates/<c>/src/**` excluding binaries (`src/bin/**`, `src/main.rs`):
/// the scope where "library code" rules bite.
fn is_lib_src(path: &str) -> bool {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split_once('/'))
        .is_some_and(|(_, sub)| {
            sub.starts_with("src/") && !sub.starts_with("src/bin/") && sub != "src/main.rs"
        })
}

/// Test trees: crate-level `tests/`, the workspace `tests/` crate, bench
/// `benches/`, and `examples/` (both crate-level and workspace-level).
fn is_test_tree(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// One raw rule hit, before allow-marker / baseline suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// What matched (for the diagnostic), e.g. `Instant::now`.
    pub matched: String,
}

/// Narrowing targets R7 flags. Widening (`as u64`) cannot wrap the ids
/// this codebase mints (u16 workers, u32 targets), and `as usize` is how
/// wire ids index per-worker tables — both stay legal.
const TRUNCATING_WIDTHS: [&str; 3] = ["u8", "u16", "u32"];

/// Whether an identifier names an id- or index-typed value (R7's naming
/// heuristic): `*_id` / `*_idx` suffixes, camel-case `..Id` type names,
/// or the domain nouns that id every record field.
fn is_id_like(ident: &str) -> bool {
    if ident.ends_with("Id") && ident.len() > 2 {
        return true;
    }
    let lower = ident.to_ascii_lowercase();
    lower == "id"
        || lower == "idx"
        || lower.ends_with("_id")
        || lower.ends_with("_idx")
        || lower.contains("worker")
        || lower.contains("site")
        || lower.contains("probe")
        || lower.contains("target")
        || lower == "vp"
        || lower.starts_with("vp_")
        || lower.ends_with("_vp")
}

/// For an `as u8/u16/u32` at `as_idx`, find the id-like identifier that
/// names the cast operand, if any. Walks backwards through the operand
/// expression with paren-depth tracking; stepping out of the cast's
/// enclosing group checks the callee (catching `TargetId(i as u32)`), and
/// statement/argument boundaries (`;`, `{`, `}`, and `,` / `=` at depth
/// zero) end the operand.
fn id_like_operand(tokens: &[Token], as_idx: usize) -> Option<String> {
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut depth = 0i32;
    let mut j = as_idx;
    for _ in 0..16 {
        if j == 0 {
            return None;
        }
        j -= 1;
        let t = text(j)?;
        match t {
            ")" | "]" => depth += 1,
            "(" => {
                if depth == 0 {
                    let callee = j.checked_sub(1).and_then(text)?;
                    if is_id_like(callee) {
                        return Some(callee.to_string());
                    }
                    return None;
                }
                depth -= 1;
            }
            "[" => depth = (depth - 1).max(0),
            ";" | "{" | "}" => return None,
            "," | "=" if depth == 0 => return None,
            _ => {
                if is_id_like(t) {
                    return Some(t.to_string());
                }
            }
        }
    }
    None
}

const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const DEGRADED_FIELDS: [&str; 2] = ["degraded", "worker_health"];
const AMBIENT_RNG_IDENTS: [&str; 3] = ["OsRng", "from_entropy", "thread_rng"];
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const PANIC_METHODS: [&str; 2] = ["expect", "unwrap"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PRINT_MACROS: [&str; 5] = ["dbg", "eprint", "eprintln", "print", "println"];
const METRIC_METHODS: [&str; 3] = ["inc", "record_histogram", "set_gauge"];

/// Mark every token inside an `impl Degraded for ..` block (including
/// `impl laces_obs::Degraded for ..` path forms): the one place direct
/// `degraded` field access is the point rather than a bypass. Token-level
/// brace matching, same approach as the test-exemption mask.
fn degraded_impl_mask(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut i = 0usize;
    while i < n {
        if text(i) != Some("impl") {
            i += 1;
            continue;
        }
        // Scan the impl header (up to the opening `{`), looking for the
        // `Degraded .. for` shape. A `{` before `for` means this is an
        // inherent impl (or a different trait) — leave it alone.
        let mut saw_degraded = false;
        let mut is_degraded_impl = false;
        let mut j = i + 1;
        while j < n {
            match text(j) {
                Some("{") => break,
                Some("for") => {
                    is_degraded_impl = saw_degraded;
                    break;
                }
                Some("Degraded") => saw_degraded = true,
                _ => {}
            }
            j += 1;
        }
        if !is_degraded_impl {
            i += 1;
            continue;
        }
        // Find the block's `{` and mark through its matching `}`.
        while j < n && text(j) != Some("{") {
            j += 1;
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match text(k) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end = (k + 1).min(n);
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Run every in-scope rule over the token stream. `skip[i]` marks tokens
/// inside `#[cfg(test)]` items, `#[test]` items or attribute argument
/// lists — exempt from all rules.
pub fn check_tokens(path: &str, tokens: &[Token], skip: &[bool]) -> Vec<Hit> {
    let mut hits = Vec::new();
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let degraded_scope = Rule::DegradedBypass.applies_to(path);
    let degraded_impl = if degraded_scope {
        degraded_impl_mask(tokens)
    } else {
        Vec::new()
    };
    for (i, tok) in tokens.iter().enumerate() {
        if skip.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = tok.text.as_str();
        if Rule::WallClock.applies_to(path)
            && WALL_CLOCK_TYPES.contains(&t)
            && text(i + 1) == Some("::")
            && text(i + 2) == Some("now")
        {
            hits.push(Hit {
                rule: Rule::WallClock,
                line: tok.line,
                matched: format!("{t}::now"),
            });
        }
        if Rule::AmbientRng.applies_to(path) && AMBIENT_RNG_IDENTS.contains(&t) {
            hits.push(Hit {
                rule: Rule::AmbientRng,
                line: tok.line,
                matched: t.to_string(),
            });
        }
        if Rule::UnorderedIter.applies_to(path) && UNORDERED_TYPES.contains(&t) {
            hits.push(Hit {
                rule: Rule::UnorderedIter,
                line: tok.line,
                matched: t.to_string(),
            });
        }
        if Rule::PanicPath.applies_to(path) {
            // `.unwrap(` / `.expect(` — the exact method, so
            // `unwrap_or_else` and friends stay legal.
            if PANIC_METHODS.contains(&t)
                && i > 0
                && text(i - 1) == Some(".")
                && text(i + 1) == Some("(")
            {
                hits.push(Hit {
                    rule: Rule::PanicPath,
                    line: tok.line,
                    matched: format!(".{t}()"),
                });
            }
            if PANIC_MACROS.contains(&t) && text(i + 1) == Some("!") {
                hits.push(Hit {
                    rule: Rule::PanicPath,
                    line: tok.line,
                    matched: format!("{t}!"),
                });
            }
        }
        if Rule::PrintPath.applies_to(path) && PRINT_MACROS.contains(&t) && text(i + 1) == Some("!")
        {
            hits.push(Hit {
                rule: Rule::PrintPath,
                line: tok.line,
                matched: format!("{t}!"),
            });
        }
        // `<id-like> as u8/u16/u32` — a silently wrapping narrowing of an
        // id-typed value.
        if Rule::AsTruncation.applies_to(path) && t == "as" && i > 0 {
            if let Some(width) = text(i + 1).filter(|w| TRUNCATING_WIDTHS.contains(w)) {
                if let Some(operand) = id_like_operand(tokens, i) {
                    hits.push(Hit {
                        rule: Rule::AsTruncation,
                        line: tok.line,
                        matched: format!("{operand} as {width}"),
                    });
                }
            }
        }
        // `.inc("…", ..)` / `.set_gauge("…", ..)` / `.record_histogram("…", ..)`
        // with a bare string-literal first argument. The lexer drops
        // string literals from the token stream, so a literal-first call
        // is exactly `.method(` followed immediately by `,`; a registry
        // const (`names::…`) or a `&format!` over one leaves an
        // identifier there instead.
        if Rule::UnregisteredMetric.applies_to(path)
            && METRIC_METHODS.contains(&t)
            && i > 0
            && text(i - 1) == Some(".")
            && text(i + 1) == Some("(")
            && text(i + 2) == Some(",")
        {
            hits.push(Hit {
                rule: Rule::UnregisteredMetric,
                line: tok.line,
                matched: format!(".{t}(\"…\")"),
            });
        }
        // `.degraded` / `.worker_health` field access (a following `(`
        // would make it a method call — `census.degraded()` is the trait's
        // own surface and stays legal).
        if degraded_scope
            && DEGRADED_FIELDS.contains(&t)
            && i > 0
            && text(i - 1) == Some(".")
            && text(i + 1) != Some("(")
            && !degraded_impl.get(i).copied().unwrap_or(false)
        {
            hits.push(Hit {
                rule: Rule::DegradedBypass,
                line: tok.line,
                matched: format!(".{t}"),
            });
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("bad-allow"), Some(Rule::BadAllow));
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn scopes_match_the_workspace_layout() {
        // R1 exempts obs (owner of time) and bench (measures wall-clock).
        assert!(Rule::WallClock.applies_to("crates/core/src/worker.rs"));
        assert!(!Rule::WallClock.applies_to("crates/obs/src/stage.rs"));
        assert!(!Rule::WallClock.applies_to("crates/bench/src/perf.rs"));
        assert!(!Rule::WallClock.applies_to("crates/netsim/examples/scale_test.rs"));
        // R2 applies even to examples.
        assert!(Rule::AmbientRng.applies_to("examples/quickstart.rs"));
        // R3 covers serialized-path crates only.
        assert!(Rule::UnorderedIter.applies_to("crates/census/src/store.rs"));
        assert!(Rule::UnorderedIter.applies_to("crates/bench/src/artifacts.rs"));
        assert!(Rule::UnorderedIter.applies_to("crates/query/src/idx.rs"));
        assert!(!Rule::UnorderedIter.applies_to("crates/geo/src/cities.rs"));
        // R4 covers measurement-path library code, not bins or tests.
        assert!(Rule::PanicPath.applies_to("crates/gcd/src/enumerate.rs"));
        assert!(Rule::PanicPath.applies_to("crates/query/src/service.rs"));
        assert!(!Rule::PanicPath.applies_to("crates/gcd/tests/gcd_e2e.rs"));
        assert!(!Rule::PanicPath.applies_to("crates/baselines/src/bgptools.rs"));
        // R5 spares the bench harness and binaries.
        assert!(Rule::PrintPath.applies_to("crates/census/src/pipeline.rs"));
        assert!(!Rule::PrintPath.applies_to("crates/bench/src/report.rs"));
        assert!(!Rule::PrintPath.applies_to("crates/lint/src/main.rs"));
        // R6 covers measurement-path library code but spares laces-obs,
        // the owner of the RunReport fields.
        assert!(Rule::DegradedBypass.applies_to("crates/core/src/results.rs"));
        assert!(Rule::DegradedBypass.applies_to("crates/census/src/pipeline.rs"));
        assert!(!Rule::DegradedBypass.applies_to("crates/obs/src/report.rs"));
        assert!(!Rule::DegradedBypass.applies_to("crates/geo/src/cities.rs"));
        assert!(!Rule::DegradedBypass.applies_to("crates/core/tests/fault_matrix.rs"));
        // Test trees are exempt from everything except ambient-rng.
        assert!(Rule::AmbientRng.applies_to("tests/tests/daily_census.rs"));
        assert!(!Rule::PanicPath.applies_to("crates/core/tests/fault_matrix.rs"));
    }

    #[test]
    fn as_truncation_detection() {
        use crate::scan_source;
        let path = "crates/core/src/fixture.rs";
        let src = "\
pub fn bad(worker_id: usize, vp: usize, targets: &[u8]) {
    let a = worker_id as u16;
    let b = TargetId(vp as u32);
    let c = (rng % u64::from(n_workers)) as u16;
    consume(a, b, c);
}
pub fn legal(worker_id: usize, len: usize, x: u64) {
    let a = u16::try_from(worker_id).unwrap_or(u16::MAX);
    let b = worker_id as u64;
    let c = worker_id as usize;
    let d = len as u32;
    consume(a, b, c, d, x as u16);
}
";
        let (violations, _) = scan_source(path, src);
        let hits: Vec<(u32, &str)> = violations
            .iter()
            .filter(|v| v.rule == Rule::AsTruncation)
            .map(|v| (v.line, v.message.as_str()))
            .collect();
        assert_eq!(hits.len(), 3, "{violations:#?}");
        assert_eq!(hits[0].0, 2, "direct id cast fires");
        assert_eq!(hits[1].0, 3, "id-typed constructor argument fires");
        assert_eq!(hits[2].0, 4, "id-derived arithmetic fires");
        // Widening, usize casts, non-id operands and try_from stay legal.
        assert!(hits.iter().all(|(line, _)| *line <= 4), "{hits:?}");
    }

    #[test]
    fn as_truncation_scope_is_the_measurement_path() {
        assert!(Rule::AsTruncation.applies_to("crates/core/src/worker.rs"));
        assert!(Rule::AsTruncation.applies_to("crates/netsim/src/world.rs"));
        assert!(Rule::AsTruncation.applies_to("crates/gcd/src/engine.rs"));
        assert!(!Rule::AsTruncation.applies_to("crates/bench/src/probing.rs"));
        assert!(!Rule::AsTruncation.applies_to("crates/core/tests/fault_matrix.rs"));
        // Since flow-lint v2 the linter holds itself to the same bar.
        assert!(Rule::AsTruncation.applies_to("crates/lint/src/rules.rs"));
    }

    #[test]
    fn graph_rule_scopes() {
        // R8/R11 have no crate allow-list: any crate src, bins included.
        for r in [Rule::DeterminismTaint, Rule::AtomicOrdering] {
            assert!(r.applies_to("crates/geo/src/cities.rs"), "{r:?}");
            assert!(r.applies_to("crates/lint/src/main.rs"), "{r:?}");
            assert!(r.applies_to("crates/bench/src/artifacts.rs"), "{r:?}");
            assert!(!r.applies_to("crates/core/tests/fault_matrix.rs"), "{r:?}");
            assert!(!r.applies_to("examples/quickstart.rs"), "{r:?}");
            assert!(!r.applies_to("crates/netsim/examples/scale.rs"), "{r:?}");
        }
        // R9/R10 track the measurement-path scope (now including lint).
        for r in [Rule::DiscardedFallibility, Rule::LockHygiene] {
            assert!(r.applies_to("crates/core/src/orchestrator.rs"), "{r:?}");
            assert!(r.applies_to("crates/lint/src/json.rs"), "{r:?}");
            assert!(!r.applies_to("crates/bench/src/probing.rs"), "{r:?}");
            assert!(!r.applies_to("crates/core/tests/fault_matrix.rs"), "{r:?}");
        }
    }

    #[test]
    fn degraded_bypass_detection() {
        use crate::scan_source;
        let path = "crates/core/src/fixture.rs";
        // Field access fires; method calls and trait impls do not.
        let src = "\
pub fn peek(outcome: &MeasurementOutcome) -> usize {
    outcome.worker_health.len() + outcome.telemetry.degraded.len()
}
pub fn legal(census: &DailyCensus) -> bool {
    census.degraded() || !census.degraded_reasons().is_empty()
}
impl Degraded for Wrapper {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        &self.inner.degraded
    }
}
impl laces_obs::Degraded for Other {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        &self.report.degraded
    }
}
";
        let (violations, _) = scan_source(path, src);
        let hits: Vec<(u32, &str)> = violations
            .iter()
            .filter(|v| v.rule == Rule::DegradedBypass)
            .map(|v| (v.line, v.message.as_str()))
            .collect();
        assert_eq!(hits.len(), 2, "{violations:#?}");
        assert!(hits.iter().all(|(line, _)| *line == 2), "{hits:?}");
    }
}

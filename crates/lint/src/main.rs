//! `laces-lint` CLI: scan the workspace, apply the baseline, report.
//!
//! Exit codes: 0 clean, 1 non-baselined violations found, 2 usage or I/O
//! error. `--format json` output is byte-identical across reruns of the
//! same tree — CI diffs it, and determinism here is dogfooding the very
//! invariant the linter enforces.

use std::path::PathBuf;
use std::process::ExitCode;

use laces_lint::{analyze_workspace, baseline, flow, render_human, render_json, sort_violations};

const USAGE: &str = "\
laces-lint — LACeS workspace determinism & robustness linter

USAGE:
    laces-lint [--root DIR] [--format human|json] [--baseline FILE]
               [--update-baseline] [--explain FILE:LINE] [--help]

OPTIONS:
    --root DIR          Workspace root (default: auto-detected from cwd)
    --format FMT        `human` (default) or `json` (deterministic)
    --baseline FILE     Baseline path (default: <root>/lint-baseline.json)
    --update-baseline   Rewrite the baseline from current violations,
                        preserving existing justifications, and exit
    --explain FILE:LINE Print the source→sink call path behind the flow
                        hit (determinism-taint / atomic-ordering) at that
                        location — works even for allowed/baselined sites
    --help              Show this help
";

struct Opts {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    explain: Option<(String, u32)>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        root: None,
        format: Format::Human,
        baseline: None,
        update_baseline: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(None),
            "--explain" => {
                let spec = it.next().ok_or("--explain needs FILE:LINE")?;
                let (file, line) = spec
                    .rsplit_once(':')
                    .ok_or("--explain argument must look like crates/x/src/y.rs:42")?;
                let line: u32 = line
                    .parse()
                    .map_err(|_| format!("--explain: `{line}` is not a line number"))?;
                opts.explain = Some((file.replace('\\', "/"), line));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file path")?,
                ))
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                _ => return Err("--format must be `human` or `json`".to_string()),
            },
            "--update-baseline" => opts.update_baseline = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

/// Walk up from cwd to the workspace root (the directory whose Cargo.toml
/// declares `[workspace]` and which contains `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && dir.join("crates").is_dir()
            && std::fs::read_to_string(&manifest).is_ok_and(|t| t.contains("[workspace]"))
        {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("laces-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let Some(root) = opts.root.or_else(find_root) else {
        eprintln!("laces-lint: could not locate the workspace root (try --root)");
        return ExitCode::from(2);
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("laces-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some((file, line)) = opts.explain {
        return match analysis.paths.get(&(file.clone(), line)) {
            Some(p) => {
                print!("{}", flow::render_path(p));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "laces-lint: no flow hit recorded at {file}:{line} (only \
                     determinism-taint / atomic-ordering sites have paths; run \
                     without --explain to list hits)"
                );
                ExitCode::from(2)
            }
        };
    }
    let report = analysis.report;

    // Load the baseline (a missing file means an empty baseline).
    let (entries, baseline_problems) = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!(
                    "laces-lint: malformed baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => (Vec::new(), Vec::new()),
    };

    if opts.update_baseline {
        let new_entries = baseline::regenerate(&report.violations, &entries);
        let rendered = baseline::render(&new_entries);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("laces-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let missing = new_entries
            .iter()
            .filter(|e| e.justification.trim().is_empty())
            .count();
        println!(
            "laces-lint: wrote {} entries to {}{}",
            new_entries.len(),
            baseline_path.display(),
            if missing > 0 {
                format!(" ({missing} need a justification before CI will pass)")
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }

    let (mut violations, baselined, stale) = baseline::apply(report.violations, &entries);
    // Unjustified baseline entries fail the run like unjustified markers.
    for p in &baseline_problems {
        eprintln!("laces-lint: {p}");
    }
    sort_violations(&mut violations);

    match opts.format {
        Format::Human => {
            print!("{}", render_human(&violations, &stale));
            println!(
                "laces-lint: {} files scanned, {} violations ({} baselined, {} allowed inline)",
                report.files_scanned,
                violations.len(),
                baselined,
                report.allowed
            );
        }
        Format::Json => print!(
            "{}",
            render_json(
                &violations,
                &stale,
                report.files_scanned,
                baselined,
                report.allowed
            )
        ),
    }

    if violations.is_empty() && baseline_problems.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

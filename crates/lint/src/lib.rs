//! `laces-lint`: the workspace determinism & robustness linter.
//!
//! LACeS is a *longitudinal* census: its value rests on day-N and a rerun
//! of day-N producing bit-identical artifacts (PAPER.md §5, DESIGN.md
//! §9–§10). One stray wall-clock read, ambient RNG, unordered map in a
//! serialized path, or panic in the measurement path silently breaks that
//! contract. This crate is a self-contained, dependency-free static
//! analysis pass that locks the invariants in:
//!
//! | id                      | rule                                                  |
//! |-------------------------|-------------------------------------------------------|
//! | `wall-clock`            | no `Instant::now`/`SystemTime::now` outside obs/bench |
//! | `ambient-rng`           | no `thread_rng`/`from_entropy`/`OsRng` anywhere       |
//! | `unordered-iter`        | no `HashMap`/`HashSet` in serialized paths            |
//! | `panic-path`            | no `unwrap`/`expect`/`panic!`/`todo!` on the          |
//! |                         | measurement path                                      |
//! | `print-path`            | no `println!`-family output in library crates         |
//! | `degraded-bypass`       | degradation read through the `Degraded` trait only    |
//! | `as-truncation`         | no bare narrowing casts of id-typed values            |
//! | `determinism-taint`     | no unordered/ambient source reaching a serialization  |
//! |                         | sink through the call graph (flow rule, `--explain`)  |
//! | `discarded-fallibility` | no discarded `Result` in measurement crates           |
//! | `lock-hygiene`          | no guard held across another lock / a long span       |
//! | `atomic-ordering`       | no `Relaxed` atomics feeding a serialization sink     |
//!
//! R1–R7 are token rules; R8–R11 run on a workspace symbol table and an
//! approximate call graph (see [`symbols`] and [`flow`], DESIGN.md §16).
//!
//! Violations are suppressed either by an inline marker on the offending
//! line (or the line directly above it):
//!
//! ```text
//! // laces-lint: allow(panic-path) — serialising plain in-memory structs is infallible
//! ```
//!
//! or by an entry in the checked-in `lint-baseline.json` (see
//! [`baseline`]). Both require a justification; a marker without one is
//! itself a violation (`bad-allow`). String literals, comments, attribute
//! argument lists and `#[cfg(test)]`/`#[test]` items never fire.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod flow;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod symbols;

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Comment, Lexed, Token};
use rules::Rule;

/// One reportable violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// The trimmed source line (the baseline matching key).
    pub excerpt: String,
    /// Human-readable description.
    pub message: String,
}

/// The outcome of scanning a set of files.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Violations not suppressed by inline markers (baseline not yet
    /// applied), sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Count of hits suppressed by valid inline allow markers.
    pub allowed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// A parsed `laces-lint: allow(..)` marker.
#[derive(Debug)]
struct AllowMarker {
    rule: Option<Rule>,
    line: u32,
    alone: bool,
    justified: bool,
}

const MARKER_INTRO: &str = "laces-lint:";

/// Extract allow markers from a file's comments. Malformed markers yield
/// `bad-allow` violations (reported with the file's other findings).
fn parse_markers(
    comments: &[Comment],
    path: &str,
    lines: &[&str],
) -> (Vec<AllowMarker>, Vec<Violation>) {
    let mut markers = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find(MARKER_INTRO) else {
            continue;
        };
        let rest = c.text[pos + MARKER_INTRO.len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad.push(bad_allow(path, c.line, lines, "expected `allow(<rule>)`"));
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push(bad_allow(path, c.line, lines, "unclosed `allow(`"));
            continue;
        };
        let rule_id = args[..close].trim();
        // Documentation *about* the grammar writes placeholders like
        // `allow(..)` or `allow(<rule>)`; only id-shaped attempts are
        // judged, so a typo'd rule still fails but prose never does.
        if rule_id.is_empty()
            || !rule_id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            continue;
        }
        let rule = Rule::from_id(rule_id);
        if rule.is_none() {
            bad.push(bad_allow(
                path,
                c.line,
                lines,
                &format!("unknown rule id `{rule_id}`"),
            ));
        }
        // Justification: everything after the closing paren, minus a
        // leading separator (em-dash, hyphen(s) or colon).
        let tail = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        let justified = tail.len() >= 3;
        if !justified {
            bad.push(bad_allow(
                path,
                c.line,
                lines,
                "missing justification after the rule id",
            ));
        }
        markers.push(AllowMarker {
            rule,
            line: c.line,
            alone: c.alone,
            justified,
        });
    }
    (markers, bad)
}

fn bad_allow(path: &str, line: u32, lines: &[&str], why: &str) -> Violation {
    Violation {
        file: path.to_string(),
        line,
        rule: Rule::BadAllow,
        excerpt: excerpt_at(lines, line),
        message: format!("{} ({why})", Rule::BadAllow.describe()),
    }
}

fn excerpt_at(lines: &[&str], line: u32) -> String {
    lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

/// Compute, for each token, whether it is exempt from the rules: inside an
/// attribute's argument list, or inside an item annotated `#[cfg(test)]`,
/// `#[test]` or `#[bench]` (an inner `#![cfg(test)]` exempts the whole
/// file). Token-level brace matching — no parser needed.
pub(crate) fn exempt_tokens(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut skip = vec![false; n];
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut i = 0usize;
    while i < n {
        if text(i) != Some("#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = text(j) == Some("!");
        if inner {
            j += 1;
        }
        if text(j) != Some("[") {
            i += 1;
            continue;
        }
        // Find the matching `]` (attribute arguments may nest brackets).
        let attr_body_start = j + 1;
        let mut depth = 1i32;
        let mut k = attr_body_start;
        while k < n && depth > 0 {
            match text(k) {
                Some("[") => depth += 1,
                Some("]") => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let attr_end = k; // one past `]`
                          // Attribute argument lists are never code: exempt them outright
                          // (e.g. `#[deprecated(note = "...unwrap...")]` token content).
        for s in skip.iter_mut().take(attr_end).skip(i) {
            *s = true;
        }
        if is_test_attr(&tokens[attr_body_start..attr_end.saturating_sub(1)]) {
            if inner {
                // `#![cfg(test)]`: the entire file is test code.
                for s in skip.iter_mut() {
                    *s = true;
                }
                return skip;
            }
            // Exempt the annotated item: any further attributes, then the
            // item through its closing brace (or terminating semicolon).
            let mut m = attr_end;
            while text(m) == Some("#") && text(m + 1) == Some("[") {
                let mut d = 1i32;
                let mut p = m + 2;
                while p < n && d > 0 {
                    match text(p) {
                        Some("[") => d += 1,
                        Some("]") => d -= 1,
                        _ => {}
                    }
                    p += 1;
                }
                m = p;
            }
            let mut brace = 0i32;
            while m < n {
                match text(m) {
                    Some("{") => brace += 1,
                    Some("}") => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    Some(";") if brace == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            let item_end = (m + 1).min(n);
            for s in skip.iter_mut().take(item_end).skip(i) {
                *s = true;
            }
            i = item_end;
            continue;
        }
        i = attr_end;
    }
    skip
}

/// Does an attribute's token body mark test-only code? Matches `test`,
/// `bench`, `cfg(test)` and `cfg(any(test, ..))` — but not `cfg(not(test))`,
/// which guards *non*-test code.
fn is_test_attr(body: &[Token]) -> bool {
    let texts: Vec<&str> = body.iter().map(|t| t.text.as_str()).collect();
    match texts.first() {
        Some(&"test") | Some(&"bench") => true,
        Some(&"cfg") => texts.contains(&"test") && !texts.contains(&"not"),
        // `#[tokio::test]`-style: a path ending in `test`.
        _ => texts.last() == Some(&"test") && texts.contains(&"::"),
    }
}

/// The full two-pass analysis result: the scan report plus the stored
/// source→sink paths behind every R8/R11 hit (pre-suppression, so even
/// justified sites stay explainable via `--explain`).
#[derive(Debug, Default)]
pub struct Analysis {
    /// The violation report (inline markers applied, baseline not).
    pub report: ScanReport,
    /// Explain paths keyed by `(file, line)`.
    pub paths: BTreeMap<(String, u32), flow::FlowPath>,
}

/// Analyze a set of `(workspace-relative path, source)` pairs.
///
/// This is the core two-pass entry point: pass 1 lexes every file, runs
/// the token rules (R1–R7) and builds the symbol table; pass 2 builds the
/// workspace call graph and runs the flow rules (R8–R11); then inline
/// allow markers are applied per file. The input is sorted and deduped by
/// path internally, so the output is byte-identical regardless of the
/// order files were collected in.
pub fn analyze_sources(files: Vec<(String, String)>) -> Analysis {
    let mut files = files;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files.dedup_by(|a, b| a.0 == b.0);

    // Pass 1: lex, token rules, symbol table.
    struct Unit {
        path: String,
        src: String,
        comments: Vec<Comment>,
        hits: Vec<rules::Hit>,
    }
    let mut units: Vec<Unit> = Vec::new();
    let mut syms: Vec<symbols::FnSym> = Vec::new();
    for (path, src) in files {
        let Lexed { tokens, comments } = lexer::lex(&src);
        let skip = exempt_tokens(&tokens);
        let hits = rules::check_tokens(&path, &tokens, &skip);
        syms.extend(symbols::file_symbols(&path, &tokens, &skip));
        units.push(Unit {
            path,
            src,
            comments,
            hits,
        });
    }

    // Pass 2: the workspace call graph and the flow rules.
    let graph = flow::Graph::build(&syms);
    let mut fa = graph.check(
        |rule, file| rule.applies_to(file),
        |file| Rule::UnorderedIter.applies_to(file),
    );

    // Merge per file and apply inline markers.
    let mut out = Analysis::default();
    for mut u in units {
        if let Some(extra) = fa.hits.remove(&u.path) {
            u.hits.extend(extra);
        }
        let lines: Vec<&str> = u.src.lines().collect();
        let (markers, mut violations) = parse_markers(&u.comments, &u.path, &lines);
        for hit in u.hits {
            let suppressed = markers.iter().any(|m| {
                m.rule == Some(hit.rule)
                    && m.justified
                    && (m.line == hit.line || (m.alone && m.line + 1 == hit.line))
            });
            if suppressed {
                out.report.allowed += 1;
                continue;
            }
            violations.push(Violation {
                file: u.path.clone(),
                line: hit.line,
                rule: hit.rule,
                excerpt: excerpt_at(&lines, hit.line),
                message: format!("`{}`: {}", hit.matched, hit.rule.describe()),
            });
        }
        out.report.violations.extend(violations);
        out.report.files_scanned += 1;
    }
    sort_violations(&mut out.report.violations);
    out.paths = fa.paths;
    out
}

/// Scan one source file (by its workspace-relative path) and return its
/// violations after inline-marker suppression, plus the allowed count.
/// The flow rules see a single-file symbol table here, so R8–R11 fire on
/// flows contained within `src` (the full workspace graph needs
/// [`analyze_sources`] / [`analyze_workspace`]).
pub fn scan_source(path: &str, src: &str) -> (Vec<Violation>, usize) {
    let a = analyze_sources(vec![(path.to_string(), src.to_string())]);
    (a.report.violations, a.report.allowed)
}

/// Directories never scanned: build output, the offline dependency shims
/// (they mirror external crates' APIs, ambient-RNG names included), and
/// lint-rule fixture corpora (violations on purpose).
fn walk_excluded(rel: &str) -> bool {
    rel == "target" || rel == "shims" || rel.ends_with("/fixtures") || rel.ends_with("/target")
}

/// Collect the workspace-relative paths of every `.rs` file to scan,
/// sorted for deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = BTreeSet::new();
    let mut stack: Vec<PathBuf> = ["crates", "examples", "tests"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let p = entry.path();
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if p.is_dir() {
                if !walk_excluded(&rel) {
                    stack.push(p);
                }
            } else if rel.ends_with(".rs") {
                out.insert(rel);
            }
        }
    }
    Ok(out.into_iter().collect())
}

/// Run the full two-pass analysis on the workspace rooted at `root`,
/// keeping the explain paths. Output is independent of directory-walk
/// order ([`analyze_sources`] sorts internally).
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for rel in collect_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    Ok(analyze_sources(files))
}

/// Scan the workspace rooted at `root`. Violations come back sorted by
/// (file, line, rule id) — stable across reruns.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    Ok(analyze_workspace(root)?.report)
}

/// Canonical violation order for output and baselines.
pub fn sort_violations(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id(), a.excerpt.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.id(),
            b.excerpt.as_str(),
        ))
    });
}

/// Render violations as human-readable diagnostics.
pub fn render_human(violations: &[Violation], stale: &[baseline::BaselineEntry]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.file,
            v.line,
            v.rule.id(),
            v.message,
            v.excerpt
        ));
    }
    for e in stale {
        out.push_str(&format!(
            "warning: stale baseline entry (site fixed? run --update-baseline): {} [{}] {}\n",
            e.file, e.rule, e.excerpt
        ));
    }
    out
}

/// Render violations as a deterministic JSON document (sorted input in,
/// byte-identical output out — no timestamps, no absolute paths).
pub fn render_json(
    violations: &[Violation],
    stale: &[baseline::BaselineEntry],
    files_scanned: usize,
    baselined: usize,
    allowed: usize,
) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"excerpt\": \"{}\", \"message\": \"{}\"}}",
            json::escape(&v.file),
            v.line,
            v.rule.id(),
            json::escape(&v.excerpt),
            json::escape(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_baseline\": [");
    for (i, e) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"excerpt\": \"{}\"}}",
            json::escape(&e.file),
            json::escape(&e.rule),
            json::escape(&e.excerpt)
        ));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files_scanned\": {files_scanned}, \"violations\": {}, \"baselined\": {baselined}, \"allowed\": {allowed}}}\n}}\n",
        violations.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/fake.rs";

    #[test]
    fn marker_on_same_line_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() /* laces-lint: allow(panic-path) — checked by caller */ }\n";
        let (v, allowed) = scan_source(LIB, src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(allowed, 1);
    }

    #[test]
    fn standalone_marker_covers_next_line_only() {
        let src = "\
// laces-lint: allow(panic-path) — demo justification
fn g(x: Option<u8>) -> u8 { x.unwrap() }
fn h(x: Option<u8>) -> u8 { x.unwrap() }
";
        let (v, allowed) = scan_source(LIB, src);
        assert_eq!(allowed, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unjustified_marker_is_bad_allow_and_does_not_suppress() {
        let src = "fn g(x: Option<u8>) -> u8 { x.unwrap() } // laces-lint: allow(panic-path)\n";
        let (v, allowed) = scan_source(LIB, src);
        assert_eq!(allowed, 0);
        let rules: BTreeSet<&str> = v.iter().map(|x| x.rule.id()).collect();
        assert!(rules.contains("bad-allow"), "{v:?}");
        assert!(rules.contains("panic-path"), "{v:?}");
    }

    #[test]
    fn unknown_rule_in_marker_is_bad_allow() {
        let src = "// laces-lint: allow(no-such-rule) — whatever\nfn f() {}\n";
        let (v, _) = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BadAllow);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u8> = None;
        x.unwrap();
        println!(\"{:?}\", std::time::Instant::now());
    }
}
";
        let (v, _) = scan_source(LIB, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let (v, _) = scan_source(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }

    #[test]
    fn attribute_arguments_are_exempt() {
        let src = "#[deprecated(note = \"x\")]\nfn f() { g(HashMap::or_not); }\n";
        // HashMap outside R3 scope here; check with a serialized-path file.
        let (v, _) = scan_source("crates/census/src/fake.rs", src);
        assert_eq!(v.len(), 1, "{v:?}"); // the HashMap in the body fires once
    }

    #[test]
    fn inner_cfg_test_exempts_whole_file() {
        let src = "#![cfg(test)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let (v, _) = scan_source(LIB, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wrong_rule_marker_does_not_suppress() {
        let src = "fn g(x: Option<u8>) -> u8 { x.unwrap() } // laces-lint: allow(print-path) — wrong rule\n";
        let (v, allowed) = scan_source(LIB, src);
        assert_eq!(allowed, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicPath);
    }
}

//! Batch-size invariance: batching is pure transport framing.
//!
//! The tentpole claim of the batched probing pipeline is that
//! `spec.batch_size` changes *only* how orders travel — every record, the
//! classification built from them, and the serialized run report are
//! bit-identical for any batch size, with and without an active fault
//! plan. These tests pin that claim on the paper-topology world across
//! batch sizes {1, 16, 256} (partial tail batches, single-order batches,
//! and batches larger than the per-worker record-flush threshold).

use std::net::IpAddr;
use std::sync::{Arc, OnceLock};

use laces_core::classify::AnycastClassification;
use laces_core::error::MeasurementError;
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::PrefixKey;

/// Shared paper-topology world (32-site production platform, reduced
/// target mass) — generated once for the whole test binary.
fn world() -> &'static Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    WORLD.get_or_init(|| Arc::new(World::generate(WorldConfig::paper_topology_tiny_targets())))
}

/// A v4 hitlist slice small enough that no worker crosses the internal
/// record-flush threshold mid-probing (checked by `assert_outputs_equal`);
/// that keeps even the mid-stream-abort runs fully deterministic.
fn hitlist(world: &World, n: usize) -> Arc<Vec<IpAddr>> {
    Arc::new(
        world.targets[..world.n_v4]
            .iter()
            .take(n)
            .map(|t| match t.prefix {
                PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
                PrefixKey::V6(_) => unreachable!(),
            })
            .collect(),
    )
}

fn spec_with(
    world: &World,
    id: u32,
    targets: Arc<Vec<IpAddr>>,
    faults: FaultPlan,
    batch_size: usize,
) -> MeasurementSpec {
    MeasurementSpec::builder(id, world.std_platforms.production)
        .targets(targets)
        .faults(faults)
        .batch_size(batch_size)
        .build(world)
        .expect("valid spec")
}

/// Assert two outcomes are observably identical: records, classification,
/// and the full serialized run report.
fn assert_outputs_equal(a: &MeasurementOutcome, b: &MeasurementOutcome, label: &str) {
    assert_eq!(a.records, b.records, "{label}: records diverge");
    assert_eq!(
        a.probes_sent, b.probes_sent,
        "{label}: probes_sent diverges"
    );
    assert_eq!(
        a.failed_workers, b.failed_workers,
        "{label}: failed workers diverge"
    );
    assert_eq!(
        a.worker_health, b.worker_health,
        "{label}: worker health diverges"
    );
    let class_a = format!("{:?}", AnycastClassification::from_outcome(a));
    let class_b = format!("{:?}", AnycastClassification::from_outcome(b));
    assert_eq!(class_a, class_b, "{label}: classification diverges");
    assert_eq!(
        a.telemetry.to_jsonl(),
        b.telemetry.to_jsonl(),
        "{label}: serialized run report diverges"
    );
}

/// Guard for the determinism argument of the abort test: a worker that
/// never crosses the record-flush threshold during probing emits all its
/// records after the whole order stream closed, so an abort triggered by
/// the final record count cannot race the streamer.
fn assert_no_midstream_flush(outcome: &MeasurementOutcome) {
    for h in &outcome.worker_health {
        let streamed = outcome
            .telemetry
            .counter(&format!("worker.{:03}.records_streamed", h.worker));
        assert!(
            streamed < 256,
            "worker {} streamed {streamed} records; shrink the hitlist so the \
             abort-invariance argument holds",
            h.worker
        );
    }
}

#[test]
fn outputs_are_bit_identical_across_batch_sizes() {
    let w = world();
    let targets = hitlist(w, 120);
    let baseline = run_measurement(
        w,
        &spec_with(w, 41_001, Arc::clone(&targets), FaultPlan::none(), 1),
    )
    .expect("valid spec");
    assert!(!baseline.records.is_empty(), "workload must be non-trivial");
    for batch_size in [16usize, 256] {
        let outcome = run_measurement(
            w,
            &spec_with(
                w,
                41_001,
                Arc::clone(&targets),
                FaultPlan::none(),
                batch_size,
            ),
        )
        .expect("valid spec");
        assert_outputs_equal(&baseline, &outcome, &format!("batch_size={batch_size}"));
    }
}

#[test]
fn faulted_outputs_are_bit_identical_across_batch_sizes() {
    let w = world();
    let targets = hitlist(w, 120);
    // A crash point that is not a multiple of any tested batch size, so the
    // crash fires mid-batch, plus lossy/duplicating capture fabric.
    let plan = || {
        FaultPlan::with_seed(0xBA7C)
            .and_crash(3, 37)
            .and_fabric(0.05, 0.03)
    };
    let baseline = run_measurement(w, &spec_with(w, 41_002, Arc::clone(&targets), plan(), 1))
        .expect("valid spec");
    assert_eq!(baseline.failed_workers, vec![3], "crash plan must fire");
    assert!(
        baseline.telemetry.counter("fabric.dropped") > 0,
        "fabric drop must fire"
    );
    for batch_size in [16usize, 256] {
        let outcome = run_measurement(
            w,
            &spec_with(w, 41_002, Arc::clone(&targets), plan(), batch_size),
        )
        .expect("valid spec");
        assert_outputs_equal(
            &baseline,
            &outcome,
            &format!("faulted batch_size={batch_size}"),
        );
    }
}

#[test]
fn midstream_abort_is_bit_identical_across_batch_sizes() {
    let w = world();
    // Smaller than the other tests: the receiving side is skewed by the
    // anycast catchments, and `assert_no_midstream_flush` needs the
    // busiest worker to stay under the flush threshold.
    let targets = hitlist(w, 50);
    let plan = || FaultPlan::with_seed(0xAB07).and_fabric(0.02, 0.01);
    // Learn the run's total record count, then schedule the abort exactly
    // on the final record: the abort path executes (counter + degraded
    // reason) but deterministically cuts nothing.
    let reference = run_measurement(w, &spec_with(w, 41_003, Arc::clone(&targets), plan(), 1))
        .expect("valid spec");
    assert_no_midstream_flush(&reference);
    let total = reference.records.len();
    assert!(total > 0, "workload must be non-trivial");

    let abort_plan = || plan().and_abort_after(total);
    let baseline = run_measurement(
        w,
        &spec_with(w, 41_003, Arc::clone(&targets), abort_plan(), 1),
    )
    .expect("valid spec");
    assert_eq!(baseline.telemetry.counter("orchestrator.aborts"), 1);
    assert!(baseline.is_degraded(), "abort must degrade the run");
    assert_eq!(
        baseline.records, reference.records,
        "abort on the final record must cut nothing"
    );
    for batch_size in [16usize, 256] {
        let outcome = run_measurement(
            w,
            &spec_with(w, 41_003, Arc::clone(&targets), abort_plan(), batch_size),
        )
        .expect("valid spec");
        assert_outputs_equal(
            &baseline,
            &outcome,
            &format!("aborted batch_size={batch_size}"),
        );
    }
}

#[test]
fn builder_rejects_zero_batch_size() {
    let w = world();
    let err = MeasurementSpec::builder(41_004, w.std_platforms.production)
        .targets(hitlist(w, 4))
        .batch_size(0)
        .build(w)
        .unwrap_err();
    assert_eq!(err, MeasurementError::InvalidBatchSize { batch_size: 0 });
    assert!(err.to_string().contains("batch size"));
}

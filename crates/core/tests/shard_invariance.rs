//! Shard-count invariance: sharding is pure execution layout.
//!
//! The tentpole claim of the sharded probing pipeline is that
//! `spec.shards` changes *only* which thread streams which contiguous
//! slice of the hitlist — every record, the classification built from
//! them, the serialized run report, and the flight-recorder export are
//! byte-identical for any shard count, with and without an active fault
//! plan, and under a mid-stream abort. These tests pin that claim on the
//! paper-topology world across shard counts {1, 4, 16} (single inline
//! shard, even split, and more shards than some slices have targets),
//! mirroring `batch_invariance.rs` — plus the trace export, which batch
//! invariance does not pin.

use std::net::IpAddr;
use std::sync::{Arc, OnceLock};

use laces_core::classify::AnycastClassification;
use laces_core::error::MeasurementError;
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::{run_measurement, run_measurement_threaded};
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::PrefixKey;
use laces_trace::TraceConfig;

/// Shared paper-topology world (32-site production platform, reduced
/// target mass) — generated once for the whole test binary.
fn world() -> &'static Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    WORLD.get_or_init(|| Arc::new(World::generate(WorldConfig::paper_topology_tiny_targets())))
}

fn hitlist(world: &World, n: usize) -> Arc<Vec<IpAddr>> {
    Arc::new(
        world.targets[..world.n_v4]
            .iter()
            .take(n)
            .map(|t| match t.prefix {
                PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
                PrefixKey::V6(_) => unreachable!(),
            })
            .collect(),
    )
}

fn spec_with(
    world: &World,
    id: u32,
    targets: Arc<Vec<IpAddr>>,
    faults: FaultPlan,
    shards: usize,
) -> MeasurementSpec {
    MeasurementSpec::builder(id, world.std_platforms.production)
        .targets(targets)
        .faults(faults)
        .trace(TraceConfig::all(0x5A17))
        .shards(shards)
        .build(world)
        .expect("valid spec")
}

/// Assert two outcomes are observably identical: records, classification,
/// the full serialized run report, and the trace export. `shard_report`
/// is deliberately NOT compared — it is the one field documented to
/// depend on `spec.shards`.
fn assert_outputs_equal(a: &MeasurementOutcome, b: &MeasurementOutcome, label: &str) {
    assert_eq!(a.records, b.records, "{label}: records diverge");
    assert_eq!(
        a.probes_sent, b.probes_sent,
        "{label}: probes_sent diverges"
    );
    assert_eq!(
        a.failed_workers, b.failed_workers,
        "{label}: failed workers diverge"
    );
    assert_eq!(
        a.worker_health, b.worker_health,
        "{label}: worker health diverges"
    );
    let class_a = format!("{:?}", AnycastClassification::from_outcome(a));
    let class_b = format!("{:?}", AnycastClassification::from_outcome(b));
    assert_eq!(class_a, class_b, "{label}: classification diverges");
    assert_eq!(
        a.telemetry.to_jsonl(),
        b.telemetry.to_jsonl(),
        "{label}: serialized run report diverges"
    );
    assert_eq!(
        a.trace_report.to_jsonl(),
        b.trace_report.to_jsonl(),
        "{label}: trace export diverges"
    );
}

#[test]
fn outputs_are_byte_identical_across_shard_counts() {
    let w = world();
    let targets = hitlist(w, 120);
    let baseline = run_measurement(
        w,
        &spec_with(w, 42_001, Arc::clone(&targets), FaultPlan::none(), 1),
    )
    .expect("valid spec");
    assert!(!baseline.records.is_empty(), "workload must be non-trivial");
    assert!(
        !baseline.trace_report.to_jsonl().is_empty(),
        "tracing must be live or the trace comparison is vacuous"
    );
    for shards in [4usize, 16] {
        let outcome = run_measurement(
            w,
            &spec_with(w, 42_001, Arc::clone(&targets), FaultPlan::none(), shards),
        )
        .expect("valid spec");
        assert_outputs_equal(&baseline, &outcome, &format!("shards={shards}"));
    }
}

#[test]
fn sharded_pipeline_matches_the_threaded_reference() {
    let w = world();
    let targets = hitlist(w, 120);
    let spec = spec_with(w, 42_001, Arc::clone(&targets), FaultPlan::none(), 4);
    let sharded = run_measurement(w, &spec).expect("valid spec");
    let threaded = run_measurement_threaded(w, &spec).expect("valid spec");
    assert_outputs_equal(&threaded, &sharded, "threaded-vs-sharded");
}

#[test]
fn faulted_outputs_are_byte_identical_across_shard_counts() {
    let w = world();
    let targets = hitlist(w, 120);
    // A crash point that lands mid-slice for every tested shard count,
    // plus lossy/duplicating capture fabric and a seal rejection — the
    // full fault surface crossing shard boundaries.
    let plan = || {
        FaultPlan::with_seed(0xBA7C)
            .and_crash(3, 37)
            .and_fabric(0.05, 0.03)
    };
    let baseline = run_measurement(w, &spec_with(w, 42_002, Arc::clone(&targets), plan(), 1))
        .expect("valid spec");
    assert_eq!(baseline.failed_workers, vec![3], "crash plan must fire");
    assert!(
        baseline.telemetry.counter("fabric.dropped") > 0,
        "fabric drop must fire"
    );
    for shards in [4usize, 16] {
        let outcome = run_measurement(
            w,
            &spec_with(w, 42_002, Arc::clone(&targets), plan(), shards),
        )
        .expect("valid spec");
        assert_outputs_equal(&baseline, &outcome, &format!("faulted shards={shards}"));
    }
}

#[test]
fn midstream_abort_is_byte_identical_across_shard_counts() {
    let w = world();
    let targets = hitlist(w, 50);
    let plan = || FaultPlan::with_seed(0xAB07).and_fabric(0.02, 0.01);
    // Learn the run's total record count, then schedule the abort exactly
    // on the final record: the abort path executes (counter + degraded
    // reason) but deterministically cuts nothing, so the outcome stays
    // comparable across shard counts.
    let reference = run_measurement(w, &spec_with(w, 42_003, Arc::clone(&targets), plan(), 1))
        .expect("valid spec");
    let total = reference.records.len();
    assert!(total > 0, "workload must be non-trivial");

    let abort_plan = || plan().and_abort_after(total);
    let baseline = run_measurement(
        w,
        &spec_with(w, 42_003, Arc::clone(&targets), abort_plan(), 1),
    )
    .expect("valid spec");
    assert_eq!(baseline.telemetry.counter("orchestrator.aborts"), 1);
    assert!(baseline.is_degraded(), "abort must degrade the run");
    assert_eq!(
        baseline.records, reference.records,
        "abort on the final record must cut nothing"
    );
    for shards in [4usize, 16] {
        let outcome = run_measurement(
            w,
            &spec_with(w, 42_003, Arc::clone(&targets), abort_plan(), shards),
        )
        .expect("valid spec");
        assert_outputs_equal(&baseline, &outcome, &format!("aborted shards={shards}"));
    }
}

#[test]
fn shard_report_reflects_the_layout_without_leaking_into_telemetry() {
    let w = world();
    let targets = hitlist(w, 120);
    let outcome = run_measurement(
        w,
        &spec_with(w, 42_004, Arc::clone(&targets), FaultPlan::none(), 4),
    )
    .expect("valid spec");
    assert_eq!(outcome.shard_report.gauge("orchestrator.shards"), 4);
    let stages = &outcome.shard_report.stages;
    assert_eq!(stages.len(), 1, "one parent stage for the sharded stream");
    assert_eq!(stages[0].name, "stream:sharded");
    assert_eq!(stages[0].children.len(), 4, "one child stage per shard");
    let targets_covered: u64 = stages[0]
        .children
        .iter()
        .map(|c| c.counter("targets"))
        .sum();
    assert_eq!(targets_covered, 120, "shard slices must cover the hitlist");
    // The canonical telemetry must not mention shard layout at all.
    assert!(
        !outcome.telemetry.to_jsonl().contains("shard"),
        "shard-dependent keys leaked into the invariant run report"
    );
}

#[test]
fn builder_rejects_zero_shards() {
    let w = world();
    let err = MeasurementSpec::builder(42_005, w.std_platforms.production)
        .targets(hitlist(w, 4))
        .shards(0)
        .build(w)
        .unwrap_err();
    assert_eq!(err, MeasurementError::InvalidShardCount);
    assert!(err.to_string().contains("shard count"));
}

#[test]
fn builder_rejects_zero_rate() {
    let w = world();
    let err = MeasurementSpec::builder(42_006, w.std_platforms.production)
        .targets(hitlist(w, 4))
        .rate_per_s(0)
        .build(w)
        .unwrap_err();
    assert_eq!(err, MeasurementError::InvalidRate);
    assert!(err.to_string().contains("rate"));
}

//! End-to-end measurement tests: CLI-style spec → Orchestrator → Workers →
//! classification, over a tiny simulated Internet.

use std::net::IpAddr;
use std::sync::Arc;

use laces_core::classify::{AnycastClassification, Class};
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{TargetKind, World, WorldConfig};
use laces_packet::{PrefixKey, ProbeEncoding, Protocol};

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn v4_hitlist(world: &World) -> Arc<Vec<IpAddr>> {
    Arc::new(
        world.targets[..world.n_v4]
            .iter()
            .map(|t| match t.prefix {
                PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
                PrefixKey::V6(_) => unreachable!(),
            })
            .collect(),
    )
}

fn v6_hitlist(world: &World) -> Arc<Vec<IpAddr>> {
    Arc::new(
        world.targets[world.n_v4..]
            .iter()
            .map(|t| match t.prefix {
                PrefixKey::V6(p) => {
                    IpAddr::V6(p.addr(u64::from(laces_netsim::targets::REPRESENTATIVE_HOST)))
                }
                PrefixKey::V4(_) => unreachable!(),
            })
            .collect(),
    )
}

#[test]
fn census_measurement_classifies_all_kinds() {
    let w = world();
    let spec = MeasurementSpec::census(
        10,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let outcome = run_measurement(&w, &spec).expect("valid spec");

    assert!(outcome.failed_workers.is_empty());
    assert_eq!(outcome.n_workers, 32);
    // Every worker transmitted one probe per target.
    assert_eq!(outcome.probes_sent, spec.probe_budget(32));
    assert!(!outcome.records.is_empty());

    let class = AnycastClassification::from_outcome(&outcome);
    let mut anycast_hits = 0;
    let mut unicast_ok = 0;
    let mut fn_count = 0;
    for t in &w.targets[..w.n_v4] {
        let c = class.class_of(t.prefix);
        match t.kind {
            TargetKind::Anycast { dep }
                if t.resp.icmp
                    && t.any_anycast_on(0)
                    && w.deployment(dep).n_distinct_cities() >= 6 =>
            {
                // Widely distributed deployments must be detected
                // (allowing rare churn misses).
                if c.is_anycast() {
                    anycast_hits += 1;
                } else {
                    fn_count += 1;
                }
            }
            TargetKind::Unicast { .. }
                if t.resp.icmp
                    && !t.jittery
                    && (c == Class::Unicast || c == Class::Unresponsive) =>
            {
                unicast_ok += 1;
            }
            _ => {}
        }
    }
    assert!(
        anycast_hits > 20,
        "only {anycast_hits} wide anycast targets detected"
    );
    assert!(
        fn_count * 10 < anycast_hits,
        "{fn_count} FNs vs {anycast_hits} TPs"
    );
    assert!(
        unicast_ok > 800,
        "unicast misclassified: only {unicast_ok} clean"
    );
}

#[test]
fn unresponsive_prefixes_classified_unresponsive() {
    let w = world();
    let spec = MeasurementSpec::census(
        11,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let class =
        AnycastClassification::from_outcome(&run_measurement(&w, &spec).expect("valid spec"));
    let mut checked = 0;
    for t in &w.targets[..w.n_v4] {
        if !t.resp.any() {
            assert_eq!(class.class_of(t.prefix), Class::Unresponsive);
            checked += 1;
        }
    }
    assert!(checked > 100);
}

#[test]
fn ipv6_measurement_works() {
    let w = world();
    let spec = MeasurementSpec::census(
        12,
        w.std_platforms.production,
        Protocol::Icmp,
        v6_hitlist(&w),
        0,
    );
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    let class = AnycastClassification::from_outcome(&outcome);
    assert!(
        class
            .anycast_targets()
            .iter()
            .all(|p| matches!(p, PrefixKey::V6(_))),
        "v6 census must contain only /48 keys"
    );
    assert!(!class.anycast_targets().is_empty());
}

#[test]
fn worker_failure_does_not_abort_measurement() {
    let w = world();
    let mut spec = MeasurementSpec::census(
        13,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    spec.faults = FaultPlan::crash(5, 10);
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    assert_eq!(outcome.failed_workers, vec![5]);
    // The rest of the platform completed: probes from 31 workers for all
    // targets plus 10 from the failed one.
    assert_eq!(outcome.probes_sent, 31 * spec.targets.len() as u64 + 10);
    let class = AnycastClassification::from_outcome(&outcome);
    assert!(
        class.anycast_targets().len() > 10,
        "census still detects anycast"
    );
}

#[test]
fn static_encoding_still_counts_receivers() {
    let w = world();
    let mut spec = MeasurementSpec::census(
        14,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    spec.encoding = ProbeEncoding::Static;
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    // §5.1.4: attribution is impossible, but receiving-worker counting (the
    // classification signal) still works.
    assert!(outcome.records.iter().all(|r| r.tx_worker.is_none()));
    let class_static = AnycastClassification::from_outcome(&outcome);

    let spec_regular = MeasurementSpec::census(
        14,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let class_regular = AnycastClassification::from_outcome(
        &run_measurement(&w, &spec_regular).expect("valid spec"),
    );

    // The load-balancer experiment's conclusion: static probes match the
    // regular measurement.
    assert_eq!(
        class_static.anycast_targets(),
        class_regular.anycast_targets(),
        "static vs varying probes disagree: load balancers should not matter"
    );
}

#[test]
fn reduced_probing_rate_finds_same_anycast_targets() {
    // §5.5.2: at 1/8th rate the census detects the same anycast targets.
    let w = world();
    let mut fast = MeasurementSpec::census(
        15,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    fast.rate_per_s = 10_000;
    let mut slow = fast.clone();
    slow.rate_per_s = 10_000 / 8;
    let at_fast =
        AnycastClassification::from_outcome(&run_measurement(&w, &fast).expect("valid spec"))
            .anycast_targets();
    let at_slow =
        AnycastClassification::from_outcome(&run_measurement(&w, &slow).expect("valid spec"))
            .anycast_targets();
    assert_eq!(at_fast, at_slow);
}

#[test]
fn tcp_and_udp_measurements_run() {
    let w = world();
    for (id, proto) in [(16, Protocol::Tcp), (17, Protocol::Udp)] {
        let spec =
            MeasurementSpec::census(id, w.std_platforms.production, proto, v4_hitlist(&w), 0);
        let outcome = run_measurement(&w, &spec).expect("valid spec");
        assert!(!outcome.records.is_empty(), "{proto} got no replies");
        assert!(outcome.records.iter().all(|r| r.protocol == proto));
        let class = AnycastClassification::from_outcome(&outcome);
        // DNS-only deployments must be detectable via UDP.
        if proto == Protocol::Udp {
            let dns_only_found = w.targets[..w.n_v4].iter().any(|t| {
                matches!(t.kind, TargetKind::Anycast { dep } if w.deployment(dep).operator.starts_with("dns-only"))
                    && class.class_of(t.prefix).is_anycast()
            });
            assert!(
                dns_only_found,
                "G-root-style DNS-only anycast missed by UDP probing"
            );
        }
    }
}

#[test]
fn smaller_platform_yields_fewer_or_equal_receivers() {
    let w = world();
    let hit = v4_hitlist(&w);
    let spec32 = MeasurementSpec::census(
        18,
        w.std_platforms.production,
        Protocol::Icmp,
        Arc::clone(&hit),
        0,
    );
    let spec2 = MeasurementSpec::census(19, w.std_platforms.eu_na, Protocol::Icmp, hit, 0);
    let c32 =
        AnycastClassification::from_outcome(&run_measurement(&w, &spec32).expect("valid spec"));
    let c2 = AnycastClassification::from_outcome(&run_measurement(&w, &spec2).expect("valid spec"));
    // A 2-site platform can never see more than 2 receivers.
    assert!(c2.vp_count_histogram().keys().all(|&k| k <= 2));
    // And the 32-site platform detects at least as many wide deployments.
    let wide32 = c32
        .vp_count_histogram()
        .iter()
        .filter(|(k, _)| **k >= 3)
        .map(|(_, v)| v)
        .sum::<usize>();
    assert!(wide32 > 0);
}

#[test]
fn outcome_is_deterministic_across_runs() {
    let w = world();
    let spec = MeasurementSpec::census(
        20,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let a = AnycastClassification::from_outcome(&run_measurement(&w, &spec).expect("valid spec"));
    let b = AnycastClassification::from_outcome(&run_measurement(&w, &spec).expect("valid spec"));
    assert_eq!(
        a.observations, b.observations,
        "same spec must reproduce identical results"
    );
}

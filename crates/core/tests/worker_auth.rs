//! Worker-level security behaviour (R8): a worker must refuse instructions
//! that do not authenticate, and must ignore captured packets from other
//! measurements.

use std::sync::Arc;

use crossbeam::channel;
use laces_core::auth::{AuthKey, Sealed};
use laces_core::worker::{run_worker, ProbeBatch, ProbeOrder, StartOrder, WorkerError, WorkerOut};
use laces_netsim::wire::{MeasurementCtx, ProbeSource};
use laces_netsim::{platform as plat, World, WorldConfig};
use laces_packet::probe::{build_probe, ProbeEncoding, ProbeMeta};
use laces_packet::Protocol;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn start_order(world: &World, id: u32) -> StartOrder {
    StartOrder {
        measurement_id: id,
        platform: world.std_platforms.production,
        worker_id: 0,
        protocol: Protocol::Icmp,
        encoding: ProbeEncoding::PerWorker,
        offset_ms: 1_000,
        span_ms: 31_000,
        day: 0,
        src_addr: plat::anycast_src_v4(world.std_platforms.production),
        fail_after: None,
        fabric_faults: None,
    }
}

#[test]
fn worker_refuses_unauthenticated_start_order() {
    let w = world();
    let good_key = AuthKey::derive(1);
    let bad_key = AuthKey::derive(2);
    let sealed = Sealed::seal(bad_key, start_order(&w, 900));

    let (_order_tx, order_rx) = channel::bounded::<ProbeBatch>(8);
    let (_cap_tx, cap_rx) = channel::unbounded();
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    let err = run_worker(
        &w,
        good_key,
        sealed,
        order_rx,
        cap_rx,
        vec![],
        out_tx,
        laces_trace::Tracer::disabled(),
    );
    assert_eq!(err, Err(WorkerError::BadAuth));
    // A refused worker emits nothing.
    assert!(out_rx.try_recv().is_err());
}

#[test]
fn worker_discards_captures_from_other_measurements() {
    let w = world();
    let key = AuthKey::derive(3);
    let sealed = Sealed::seal(key, start_order(&w, 901));

    // Build a *foreign* reply (different measurement id) and inject it as a
    // capture; the worker's validation must drop it.
    let target = w
        .targets
        .iter()
        .find(|t| t.resp.icmp && t.prefix.is_v4())
        .map(|t| match t.prefix {
            laces_packet::PrefixKey::V4(p) => std::net::IpAddr::V4(p.addr(77)),
            _ => unreachable!(),
        })
        .unwrap();
    let src = plat::anycast_src_v4(w.std_platforms.production);
    let foreign_probe = build_probe(
        src,
        target,
        Protocol::Icmp,
        &ProbeMeta {
            measurement_id: 999_999,
            worker_id: 0,
            tx_time_ms: 0,
        },
        ProbeEncoding::PerWorker,
    );
    let ctx = MeasurementCtx {
        id: 999_999,
        day: 0,
        span_ms: 0,
    };
    let delivery = w
        .send_probe(
            ProbeSource::Worker {
                platform: w.std_platforms.production,
                site: 0,
            },
            &foreign_probe,
            0,
            0,
            &ctx,
        )
        .unwrap()
        .expect("target responds");

    let (order_tx, order_rx) = channel::bounded::<ProbeBatch>(8);
    let (cap_tx, cap_rx) = channel::unbounded();
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    cap_tx.send(vec![delivery]).unwrap();
    drop(cap_tx);
    drop(order_tx); // no orders: worker goes straight to the capture phase

    run_worker(
        &w,
        key,
        sealed,
        order_rx,
        cap_rx,
        vec![],
        out_tx,
        laces_trace::Tracer::disabled(),
    )
    .unwrap();

    let msgs: Vec<WorkerOut> = out_rx.iter().collect();
    // Only the lifecycle Done event; the foreign capture produced no record,
    // but the filter counted the rejection in the worker's telemetry.
    assert_eq!(msgs.len(), 1);
    match &msgs[0] {
        WorkerOut::Event(laces_core::results::WorkerEvent::Done { telemetry, .. }) => {
            assert_eq!(telemetry.probes_sent, 0);
            assert_eq!(telemetry.records_streamed, 0);
            assert_eq!(telemetry.captures_rejected, 1);
        }
        other => panic!("expected a Done event, got {other:?}"),
    }
}

#[test]
fn worker_processes_orders_and_validates_own_captures() {
    let w = world();
    let key = AuthKey::derive(4);
    let id = 902;
    let sealed = Sealed::seal(key, start_order(&w, id));

    // A handful of responsive targets.
    let targets: Vec<std::net::IpAddr> = w
        .targets
        .iter()
        .filter(|t| t.resp.icmp && t.prefix.is_v4())
        .take(20)
        .map(|t| match t.prefix {
            laces_packet::PrefixKey::V4(p) => std::net::IpAddr::V4(p.addr(77)),
            _ => unreachable!(),
        })
        .collect();

    let (order_tx, order_rx) = channel::bounded::<ProbeBatch>(64);
    let (cap_tx, cap_rx) = channel::unbounded();
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    let orders: Vec<ProbeOrder> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| ProbeOrder {
            target: t,
            window_start_ms: i as u64 * 100,
        })
        .collect();
    // Deliberately uneven batch split: the worker must treat batch
    // boundaries as pure transport framing.
    let (head, tail) = orders.split_at(13);
    order_tx
        .send(ProbeBatch {
            orders: head.to_vec(),
        })
        .unwrap();
    order_tx
        .send(ProbeBatch {
            orders: tail.to_vec(),
        })
        .unwrap();
    drop(order_tx);

    // Fabric: route every delivery back to this single worker regardless of
    // its true catchment (single-worker harness).
    run_worker(
        &w,
        key,
        sealed,
        order_rx,
        cap_rx,
        vec![cap_tx; 32],
        out_tx,
        laces_trace::Tracer::disabled(),
    )
    .unwrap();

    let msgs: Vec<WorkerOut> = out_rx.iter().collect();
    let records: usize = msgs
        .iter()
        .filter_map(|m| match m {
            WorkerOut::Records(rs) => Some(rs.len()),
            _ => None,
        })
        .sum();
    let done = msgs.iter().any(|m| {
        matches!(
            m,
            WorkerOut::Event(laces_core::results::WorkerEvent::Done { telemetry, .. })
                if telemetry.probes_sent == 20
        )
    });
    assert!(done, "worker must report 20 probes sent");
    assert!(
        records > 10,
        "expected most probes to yield validated records, got {records}"
    );
}

//! Fault-injection matrix: crash k of n workers at varying points, break
//! order channels, corrupt seals, fault the capture fabric, and abort
//! mid-stream — the measurement must complete, report exactly the injected
//! faults (as typed degradation events in its telemetry), and reproduce
//! bit-identically from the same fault seed, run report included.

use std::collections::BTreeSet;
use std::net::IpAddr;
use std::sync::Arc;

use laces_core::error::MeasurementError;
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::{run_measurement, run_with_precheck};
use laces_core::results::WorkerStatus;
use laces_core::spec::MeasurementSpec;
use laces_core::DegradedReason;
use laces_netsim::{World, WorldConfig};
use laces_packet::Protocol;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn v4_hitlist(world: &World) -> Arc<Vec<IpAddr>> {
    Arc::new(laces_hitlist::build_v4(world).addresses())
}

fn census_spec(world: &World, id: u32, faults: FaultPlan) -> MeasurementSpec {
    let mut spec = MeasurementSpec::census(
        id,
        world.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(world),
        0,
    );
    spec.faults = faults;
    spec
}

#[test]
fn fault_matrix_reports_exactly_the_crashed_workers() {
    let w = world();
    let n_workers = 32u16;
    // Crash k of 32 at varying fail_after, including immediate (0) crashes.
    for (case, k) in [1usize, 3, 8].into_iter().enumerate() {
        let plan = FaultPlan::seeded(9_000 + case as u64, n_workers, k, 60);
        let expected = plan.doomed_workers();
        let expected_fail_sum: u64 = plan.crashes.iter().map(|c| c.after_orders as u64).sum();
        let spec = census_spec(&w, 900 + case as u32, plan);
        let outcome = run_measurement(&w, &spec).expect("valid spec");

        // Exactly the planned workers are reported failed, no more.
        assert_eq!(outcome.failed_workers, expected, "case {case}");
        assert!(
            outcome.is_degraded(),
            "case {case}: a crashed worker degrades"
        );
        // Every failure surfaces as a typed degradation event.
        let crashed: Vec<u16> = outcome
            .degraded_reasons()
            .iter()
            .filter_map(|r| match r {
                DegradedReason::WorkerCrashed { worker } => Some(*worker),
                _ => None,
            })
            .collect();
        assert_eq!(crashed, expected, "case {case}: reasons name the workers");

        // Health covers the whole platform and matches the plan.
        assert_eq!(outcome.worker_health.len(), usize::from(n_workers));
        let failed_by_health: Vec<u16> = outcome
            .worker_health
            .iter()
            .filter(|h| h.status == WorkerStatus::Failed)
            .map(|h| h.worker)
            .collect();
        assert_eq!(failed_by_health, expected, "case {case}");

        // Survivors completed the full hitlist; crashed workers stopped at
        // their planned order counts.
        let survivors = u64::from(n_workers) - expected.len() as u64;
        assert_eq!(
            outcome.probes_sent,
            survivors * spec.targets.len() as u64 + expected_fail_sum,
            "case {case}: survivor probing must be complete"
        );
        // The aggregate probe counter agrees with the outcome field.
        assert_eq!(
            outcome.telemetry.counter("worker.probes_sent"),
            outcome.probes_sent,
            "case {case}: telemetry probe total matches"
        );

        // A crashed worker's captures are lost with it: no record claims a
        // dead worker as its receiver.
        let dead: BTreeSet<u16> = expected.iter().copied().collect();
        assert!(
            outcome.records.iter().all(|r| !dead.contains(&r.rx_worker)),
            "case {case}: dead workers must not contribute captures"
        );
    }
}

#[test]
fn same_fault_seed_reruns_are_bit_identical() {
    let w = world();
    let plan = FaultPlan::seeded(77, 32, 4, 40).and_fabric(0.05, 0.02);
    let spec = census_spec(&w, 910, plan);
    let a = run_measurement(&w, &spec).expect("valid spec");
    let b = run_measurement(&w, &spec).expect("valid spec");
    let ja = serde_json::to_string(&a).expect("outcome serialises");
    let jb = serde_json::to_string(&b).expect("outcome serialises");
    assert_eq!(ja, jb, "same fault seed must reproduce byte-identically");

    // And a different fault seed produces a different outcome.
    let other = census_spec(
        &w,
        910,
        FaultPlan::seeded(78, 32, 4, 40).and_fabric(0.05, 0.02),
    );
    let c = run_measurement(&w, &other).expect("valid spec");
    assert_ne!(
        ja,
        serde_json::to_string(&c).expect("outcome serialises"),
        "different fault seeds must differ"
    );
}

#[test]
fn run_report_is_bit_identical_across_reruns() {
    // The tentpole acceptance criterion: for any abort-free plan the whole
    // serialized RunReport — counters, gauges, histograms, stages, typed
    // degradation events — is a pure function of (world seed, spec, fault
    // plan). Thread scheduling must not leak into a single byte.
    let w = world();
    for (case, plan) in [
        FaultPlan::none(),
        FaultPlan::seeded(41, 32, 5, 30),
        FaultPlan::seeded(42, 32, 2, 50)
            .and_fabric(0.10, 0.03)
            .and_reject_seal(11)
            .and_order_fault(3, 5, Some(40)),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = census_spec(&w, 980 + case as u32, plan);
        let a = run_measurement(&w, &spec).expect("valid spec");
        let b = run_measurement(&w, &spec).expect("valid spec");
        assert_eq!(
            serde_json::to_string(&a.telemetry).expect("report serialises"),
            serde_json::to_string(&b.telemetry).expect("report serialises"),
            "case {case}: run reports must be bit-identical across reruns"
        );
        assert_eq!(
            a.telemetry.to_jsonl(),
            b.telemetry.to_jsonl(),
            "case {case}: the JSONL encoding must be bit-identical too"
        );
    }
}

#[test]
fn telemetry_counts_the_schedule_and_the_wire() {
    let w = world();
    let spec = census_spec(&w, 985, FaultPlan::none());
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    let t = &outcome.telemetry;
    // Every (target, worker) pair was ordered exactly once.
    assert_eq!(
        t.counter("orchestrator.orders_streamed"),
        spec.targets.len() as u64 * 32
    );
    // The schedule stalls whenever the next window opens later; at 10 k
    // targets/s the integer-ms schedule has one stall every 10 targets.
    assert_eq!(
        t.counter("orchestrator.rate_limiter_stalls"),
        (spec.targets.len() as u64 - 1) / 10
    );
    assert_eq!(
        t.counter("orchestrator.records_collected"),
        outcome.records.len() as u64
    );
    // The wire accounted for every probe: delivered + unanswered = sent.
    assert_eq!(
        t.counter("fabric.replies_delivered") + t.counter("fabric.unanswered"),
        t.counter("worker.probes_sent")
    );
    // Per-worker counters sum to the aggregate.
    let per_worker: u64 = (0..32)
        .map(|w| t.counter(&format!("worker.{w:03}.probes_sent")))
        .sum();
    assert_eq!(per_worker, t.counter("worker.probes_sent"));
    // The RTT histogram observed every attributable record.
    let rtts = t.histograms.get("worker.rtt_ms").expect("rtt histogram");
    assert_eq!(
        rtts.count,
        outcome
            .records
            .iter()
            .filter(|r| r.rtt_ms().is_some())
            .count() as u64
    );
    // One stage, spanning the simulated probing window.
    assert_eq!(t.stages.len(), 1);
    assert_eq!(t.stages[0].counter("probes_sent"), outcome.probes_sent);
    assert!(t.stages[0].sim_ms >= spec.span_ms(32));
}

#[test]
fn abort_mid_stream_keeps_every_collected_record() {
    let w = world();
    let full = run_measurement(&w, &census_spec(&w, 920, FaultPlan::none())).expect("valid spec");
    assert!(full.records.len() > 200, "world too small for this test");

    let aborted = run_measurement(
        &w,
        &census_spec(&w, 920, FaultPlan::none().and_abort_after(50)),
    )
    .expect("valid spec");
    // Nothing collected before the abort is lost; in-flight probes may add
    // records beyond the trigger point.
    assert!(
        aborted.records.len() >= 50,
        "only {} records survived the abort",
        aborted.records.len()
    );
    assert!(aborted.is_degraded(), "an aborted measurement is degraded");
    assert!(
        aborted
            .degraded_reasons()
            .contains(&DegradedReason::Aborted),
        "the abort surfaces as a typed reason"
    );
    // Where the abort cuts the stream is scheduling-dependent (see the
    // fault module docs); on a hitlist smaller than the order queues the
    // streamer may even finish before the flag is observed, so only the
    // upper bound is guaranteed.
    assert!(
        aborted.probes_sent <= full.probes_sent,
        "an aborted run can never probe more than a full one"
    );
    // Every surviving record is one the full run also observed (the abort
    // truncates, it does not corrupt).
    let full_set: BTreeSet<String> = full
        .records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    assert!(aborted
        .records
        .iter()
        .all(|r| full_set.contains(&serde_json::to_string(r).unwrap())));
}

#[test]
fn seal_rejection_degrades_instead_of_panicking() {
    let w = world();
    let outcome = run_measurement(
        &w,
        &census_spec(&w, 930, FaultPlan::none().and_reject_seal(4)),
    )
    .expect("valid spec");
    assert_eq!(outcome.failed_workers, vec![4]);
    let h = outcome
        .worker_health
        .iter()
        .find(|h| h.worker == 4)
        .unwrap();
    assert_eq!(h.status, WorkerStatus::Failed);
    assert_eq!(h.probes_sent, 0, "a rejected worker never probes");
    // The rejection is distinguishable from a crash in the telemetry.
    assert_eq!(
        outcome.degraded_reasons(),
        &[DegradedReason::SealRejected { worker: 4 }]
    );
    assert_eq!(outcome.telemetry.counter("orchestrator.seal_rejections"), 1);
    // The other 31 workers completed the measurement.
    assert_eq!(
        outcome.probes_sent,
        31 * outcome.n_targets as u64,
        "platform degrades to the surviving workers"
    );
}

#[test]
fn order_channel_faults_shrink_but_complete_the_worker() {
    let w = world();
    let plan = FaultPlan::none().and_order_fault(6, 10, Some(25));
    let outcome = run_measurement(&w, &census_spec(&w, 940, plan)).expect("valid spec");
    // The worker is healthy — a broken control channel is not a crash.
    assert!(outcome.failed_workers.is_empty());
    assert!(!outcome.is_degraded());
    let h = outcome
        .worker_health
        .iter()
        .find(|h| h.worker == 6)
        .unwrap();
    assert_eq!(h.status, WorkerStatus::Completed);
    assert_eq!(
        h.probes_sent, 25,
        "10 orders lost to the late channel, closed after 25 delivered"
    );
    // Everyone else got the full hitlist.
    assert!(outcome
        .worker_health
        .iter()
        .filter(|h| h.worker != 6)
        .all(|h| h.probes_sent == outcome.n_targets as u64));
}

#[test]
fn fabric_drop_loses_captures_silently_and_dup_doubles_them() {
    let w = world();
    let baseline =
        run_measurement(&w, &census_spec(&w, 950, FaultPlan::none())).expect("valid spec");

    // Total fabric loss: the platform probes normally but records nothing.
    let dark = run_measurement(
        &w,
        &census_spec(&w, 950, FaultPlan::with_seed(5).and_fabric(1.0, 0.0)),
    )
    .expect("valid spec");
    assert!(dark.records.is_empty());
    assert_eq!(dark.probes_sent, baseline.probes_sent);
    assert!(
        !dark.is_degraded(),
        "fabric loss is invisible to the tool; workers all completed"
    );
    // ... but the telemetry shows what the fabric did: everything the wire
    // delivered was dropped, exactly as the planned rate promised.
    assert_eq!(
        dark.telemetry.counter("fabric.dropped"),
        dark.telemetry.counter("fabric.replies_delivered")
    );
    assert_eq!(dark.telemetry.gauge("fabric.planned_drop_permille"), 1000);

    // Total duplication: exactly every record twice.
    let doubled = run_measurement(
        &w,
        &census_spec(&w, 950, FaultPlan::with_seed(5).and_fabric(0.0, 1.0)),
    )
    .expect("valid spec");
    assert_eq!(doubled.records.len(), 2 * baseline.records.len());
    // Canonical ordering puts each duplicate next to its original.
    for pair in doubled.records.chunks(2) {
        assert_eq!(pair[0], pair[1]);
    }
    assert_eq!(
        doubled.telemetry.counter("fabric.duplicated"),
        doubled.telemetry.counter("fabric.replies_delivered")
    );
}

#[test]
fn empty_hitlist_short_circuits() {
    let w = world();
    let spec = MeasurementSpec::census(
        960,
        w.std_platforms.production,
        Protocol::Icmp,
        Arc::new(Vec::new()),
        0,
    );
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    assert_eq!(outcome.probes_sent, 0);
    assert_eq!(outcome.n_targets, 0);
    assert!(outcome.records.is_empty());
    assert!(outcome.failed_workers.is_empty());
    assert!(!outcome.is_degraded());
    assert_eq!(outcome.worker_health.len(), outcome.n_workers);
    assert!(outcome
        .worker_health
        .iter()
        .all(|h| h.status == WorkerStatus::Completed && h.probes_sent == 0));
}

#[test]
fn precheck_rejects_ids_in_the_reserved_space() {
    let w = world();
    let spec = MeasurementSpec::census(
        0x8000_0001,
        w.std_platforms.production,
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let err = run_with_precheck(&w, &spec, 0).expect_err("reserved id must be rejected");
    assert_eq!(err, MeasurementError::ReservedId { id: 0x8000_0001 });
    assert!(err.to_string().contains("reserved precheck id space"));
    // Ids outside the reserved space are accepted unchanged.
    let ok = MeasurementSpec::census(
        0x7FFF_FFFF,
        w.std_platforms.production,
        Protocol::Icmp,
        Arc::new(Vec::new()),
        0,
    );
    assert!(run_with_precheck(&w, &ok, 0).is_ok());
}

#[test]
fn unicast_platform_is_a_typed_error_not_a_panic() {
    let w = world();
    let spec = MeasurementSpec::census(
        965,
        w.std_platforms.ark, // a unicast VP platform — GCD territory
        Protocol::Icmp,
        v4_hitlist(&w),
        0,
    );
    let err = run_measurement(&w, &spec).expect_err("unicast platform must be rejected");
    assert_eq!(
        err,
        MeasurementError::NotAnycast {
            platform: w.std_platforms.ark
        }
    );
    assert!(err.to_string().contains("not an anycast platform"));
    // The abortable and precheck entry points reject it identically.
    let err2 = run_with_precheck(&w, &spec, 0).expect_err("precheck validates the platform too");
    assert_eq!(err, err2);
}

#[test]
fn empty_hitlist_still_fails_doomed_workers() {
    // The early return must agree with what the full machinery would do:
    // start-order authentication precedes any probing, so a corrupted seal
    // fails its worker even when there is nothing to probe, and a crash
    // after zero orders fires with zero orders delivered. A crash deeper
    // into the stream needs deliveries that never happen, so that worker
    // completes.
    let w = world();
    let mut spec = MeasurementSpec::census(
        961,
        w.std_platforms.production,
        Protocol::Icmp,
        Arc::new(Vec::new()),
        0,
    );
    spec.faults = FaultPlan::none()
        .and_reject_seal(4)
        .and_crash(7, 0)
        .and_crash(9, 100);
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    assert_eq!(outcome.probes_sent, 0);
    assert_eq!(outcome.failed_workers, vec![4, 7]);
    assert!(outcome.is_degraded());
    assert_eq!(
        outcome.degraded_reasons(),
        &[
            DegradedReason::WorkerCrashed { worker: 7 },
            DegradedReason::SealRejected { worker: 4 },
        ],
        "the early return reports the same typed reasons as the full path"
    );
    for h in &outcome.worker_health {
        let expect = if h.worker == 4 || h.worker == 7 {
            WorkerStatus::Failed
        } else {
            WorkerStatus::Completed
        };
        assert_eq!(h.status, expect, "worker {}", h.worker);
    }
}

#[test]
fn crash_scheduled_at_end_of_stream_still_fires() {
    // "Crash after N orders" must fire once N orders were processed even
    // when the hitlist ends exactly there — a crash at the stream's edge
    // must not silently turn into a healthy completion.
    let w = world();
    let targets = v4_hitlist(&w);
    let n = targets.len();
    let plan = FaultPlan::none().and_crash(2, n);
    let spec = census_spec(&w, 970, plan);
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    assert_eq!(outcome.failed_workers, vec![2]);
    let h = outcome
        .worker_health
        .iter()
        .find(|h| h.worker == 2)
        .unwrap();
    assert_eq!(h.status, WorkerStatus::Failed);
    assert_eq!(
        h.probes_sent, n as u64,
        "the worker probes its whole stream before the edge crash"
    );
    // A crash scheduled beyond the stream never fires: the measurement
    // ended before the worker reached its crash point.
    let survivor = census_spec(&w, 971, FaultPlan::none().and_crash(2, n + 1));
    let outcome = run_measurement(&w, &survivor).expect("valid spec");
    assert!(outcome.failed_workers.is_empty());
    assert!(!outcome.is_degraded());
}

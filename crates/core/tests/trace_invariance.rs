//! Flight-recorder determinism: tracing observes, it never perturbs.
//!
//! The tentpole claim of `laces-trace` is that the recorded event stream
//! is part of the deterministic output surface: both exporters (JSONL and
//! Chrome trace-event) are bit-identical across reruns and across batch
//! sizes, fault-free and under crash+fabric fault plans, and the seeded
//! target-keyed sample traces the *same* targets on every rerun. These
//! tests mirror `batch_invariance.rs` on the paper-topology world.

use std::net::IpAddr;
use std::sync::{Arc, OnceLock};

use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::PrefixKey;
use laces_trace::explain::ProbeFate;
use laces_trace::{prefix_sampled, TraceConfig};

fn world() -> &'static Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    WORLD.get_or_init(|| Arc::new(World::generate(WorldConfig::paper_topology_tiny_targets())))
}

fn hitlist(world: &World, n: usize) -> Arc<Vec<IpAddr>> {
    Arc::new(
        world.targets[..world.n_v4]
            .iter()
            .take(n)
            .map(|t| match t.prefix {
                PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
                PrefixKey::V6(_) => unreachable!(),
            })
            .collect(),
    )
}

fn spec_with(
    world: &World,
    id: u32,
    targets: Arc<Vec<IpAddr>>,
    faults: FaultPlan,
    batch_size: usize,
    trace: TraceConfig,
) -> MeasurementSpec {
    MeasurementSpec::builder(id, world.std_platforms.production)
        .targets(targets)
        .faults(faults)
        .batch_size(batch_size)
        .trace(trace)
        .build(world)
        .expect("valid spec")
}

/// The crash+fabric plan from `batch_invariance.rs`: a crash point that is
/// not a multiple of any tested batch size, plus lossy/duplicating fabric.
fn faulted_plan() -> FaultPlan {
    FaultPlan::with_seed(0xBA7C)
        .and_crash(3, 37)
        .and_fabric(0.05, 0.03)
}

/// Both exporters, as the byte strings the invariance claims are over.
fn exports(outcome: &MeasurementOutcome) -> (String, String) {
    (
        outcome.trace_report.to_jsonl(),
        outcome.trace_report.to_chrome_json(),
    )
}

#[test]
fn trace_exports_are_bit_identical_across_batch_sizes() {
    let w = world();
    let targets = hitlist(w, 120);
    let trace = TraceConfig::all(0x7ACE);
    let run = |batch_size: usize| {
        run_measurement(
            w,
            &spec_with(
                w,
                42_001,
                Arc::clone(&targets),
                FaultPlan::none(),
                batch_size,
                trace,
            ),
        )
        .expect("valid spec")
    };
    let baseline = run(1);
    assert!(
        baseline.trace_report.n_events() > 0,
        "tracing must record a non-trivial stream"
    );
    let (jsonl, chrome) = exports(&baseline);
    // Rerun at the same batch size: bit-identical.
    assert_eq!(exports(&run(1)), (jsonl.clone(), chrome.clone()));
    // Batching is transport framing: exports do not move.
    for batch_size in [16usize, 256] {
        let outcome = run(batch_size);
        assert_eq!(
            exports(&outcome),
            (jsonl.clone(), chrome.clone()),
            "trace exports diverge at batch_size={batch_size}"
        );
    }
}

#[test]
fn faulted_trace_exports_are_bit_identical_across_batch_sizes() {
    let w = world();
    let targets = hitlist(w, 120);
    let trace = TraceConfig::all(0x7ACE);
    let run = |batch_size: usize| {
        run_measurement(
            w,
            &spec_with(
                w,
                42_002,
                Arc::clone(&targets),
                faulted_plan(),
                batch_size,
                trace,
            ),
        )
        .expect("valid spec")
    };
    let baseline = run(1);
    assert_eq!(baseline.failed_workers, vec![3], "crash plan must fire");
    let (jsonl, chrome) = exports(&baseline);
    assert!(
        jsonl.contains("WorkerFault") || jsonl.contains("worker_fault") || jsonl.contains("crash"),
        "the crash must be on the record"
    );
    assert_eq!(exports(&run(1)), (jsonl.clone(), chrome.clone()));
    for batch_size in [16usize, 256] {
        let outcome = run(batch_size);
        assert_eq!(
            exports(&outcome),
            (jsonl.clone(), chrome.clone()),
            "faulted trace exports diverge at batch_size={batch_size}"
        );
    }
}

#[test]
fn sampling_is_seeded_and_target_keyed() {
    let w = world();
    let targets = hitlist(w, 120);
    let trace = TraceConfig::sampled(0x5EED, 250);
    let run = |batch_size: usize| {
        run_measurement(
            w,
            &spec_with(
                w,
                42_003,
                Arc::clone(&targets),
                FaultPlan::none(),
                batch_size,
                trace,
            ),
        )
        .expect("valid spec")
    };
    let baseline = run(1);
    let traced = baseline.trace_report.traced_prefixes();
    assert!(
        !traced.is_empty() && traced.len() < targets.len(),
        "250‰ over 120 targets must be a strict, non-empty subset \
         (got {} of {})",
        traced.len(),
        targets.len()
    );
    // The sample is the predicate, not an artifact of scheduling: every
    // traced prefix satisfies prefix_sampled and every sampled target in
    // the hitlist is traced.
    for prefix in &traced {
        assert!(prefix_sampled(0x5EED, 250, *prefix));
    }
    for addr in targets.iter() {
        let prefix = PrefixKey::of(*addr);
        assert_eq!(
            prefix_sampled(0x5EED, 250, prefix),
            traced.contains(&prefix),
            "{prefix} sampling must be target-keyed"
        );
    }
    // Reruns and rebatching trace the same targets, byte for byte.
    let (jsonl, chrome) = exports(&baseline);
    for batch_size in [1usize, 16, 256] {
        let outcome = run(batch_size);
        assert_eq!(outcome.trace_report.traced_prefixes(), traced);
        assert_eq!(exports(&outcome), (jsonl.clone(), chrome.clone()));
    }
}

#[test]
fn explain_is_complete_for_every_sampled_target_under_faults() {
    let w = world();
    let targets = hitlist(w, 120);
    let outcome = run_measurement(
        w,
        &spec_with(
            w,
            42_004,
            Arc::clone(&targets),
            faulted_plan(),
            16,
            TraceConfig::all(0x7ACE),
        ),
    )
    .expect("valid spec");
    let mut fabric_losses = 0usize;
    let mut worker_fault_losses = 0usize;
    for addr in targets.iter() {
        let prefix = PrefixKey::of(*addr);
        let ex = outcome.trace_report.explain(prefix);
        assert!(ex.sampled, "{prefix}: TraceConfig::all samples everything");
        assert!(
            ex.complete,
            "{prefix}: chain incomplete under faults\nsteps: {:#?}\nprobes: {:#?}",
            ex.steps, ex.probes
        );
        assert!(!ex.probes.is_empty(), "{prefix}: no probe orders resolved");
        for probe in &ex.probes {
            match probe.fate {
                ProbeFate::DroppedByFabric { .. } => fabric_losses += 1,
                ProbeFate::LostToWorkerFault { .. }
                | ProbeFate::CaptureLostToWorkerFault { .. } => worker_fault_losses += 1,
                _ => {}
            }
        }
    }
    assert!(
        fabric_losses > 0,
        "the fabric drop fault must be attributed somewhere"
    );
    assert!(
        worker_fault_losses > 0,
        "the worker crash must be attributed somewhere"
    );
}

#[test]
fn tracing_is_disabled_by_default_and_off_means_empty() {
    let w = world();
    let targets = hitlist(w, 16);
    let spec = MeasurementSpec::builder(42_005, w.std_platforms.production)
        .targets(Arc::clone(&targets))
        .build(w)
        .expect("valid spec");
    assert!(!spec.trace.enabled, "tracing must be opt-in");
    let outcome = run_measurement(w, &spec).expect("valid spec");
    assert!(!outcome.trace_report.enabled);
    assert_eq!(outcome.trace_report.n_events(), 0);
    let ex = outcome.trace_report.explain(PrefixKey::of(targets[0]));
    assert!(!ex.complete);
    assert!(ex.steps[0].contains("disabled"));
}

//! Tests for the precheck measurement mode (§6 future work) and catchment
//! mapping over the simulated wire.

use std::sync::Arc;

use laces_core::catchment::{shift, CatchmentMap};
use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::{run_measurement, run_with_precheck};
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::{PrefixKey, Protocol};

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn hitlist(world: &World) -> Arc<Vec<std::net::IpAddr>> {
    Arc::new(laces_hitlist::build_v4(world).addresses())
}

#[test]
fn precheck_saves_probes_and_keeps_detections() {
    let w = world();
    let spec = MeasurementSpec::census(
        800,
        w.std_platforms.production,
        Protocol::Icmp,
        hitlist(&w),
        0,
    );

    let full = run_measurement(&w, &spec).expect("valid spec");
    let pre = run_with_precheck(&w, &spec, 0).expect("id 800 is outside the reserved space");

    // The world has a sizeable unresponsive mass, so the precheck must pay.
    assert!(
        pre.skipped_targets > 100,
        "skipped only {}",
        pre.skipped_targets
    );
    assert!(
        pre.total_probes() < full.probes_sent,
        "precheck cost {} >= full cost {}",
        pre.total_probes(),
        full.probes_sent
    );

    // Detections survive: ATs of the prechecked run are a near-complete
    // subset of the full run's (losses only from the single precheck probe
    // being dropped).
    let ats_full: std::collections::BTreeSet<PrefixKey> =
        AnycastClassification::from_outcome(&full)
            .anycast_targets()
            .into_iter()
            .collect();
    let ats_pre: std::collections::BTreeSet<PrefixKey> =
        AnycastClassification::from_outcome(&pre.outcome)
            .anycast_targets()
            .into_iter()
            .collect();
    let recovered = ats_full.intersection(&ats_pre).count();
    assert!(
        recovered * 100 >= ats_full.len() * 90,
        "precheck lost too many ATs: {recovered}/{}",
        ats_full.len()
    );
}

#[test]
fn single_sender_measurement_still_captures_at_other_workers() {
    let w = world();
    let mut spec = MeasurementSpec::census(
        801,
        w.std_platforms.production,
        Protocol::Icmp,
        hitlist(&w),
        0,
    );
    spec.senders = Some(vec![3]);
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    // Only worker 3 transmitted.
    assert_eq!(outcome.probes_sent, spec.targets.len() as u64);
    assert!(outcome.records.iter().all(|r| r.tx_worker == Some(3)));
    // But replies were captured at many workers (anycast source routing).
    let receivers: std::collections::BTreeSet<u16> =
        outcome.records.iter().map(|r| r.rx_worker).collect();
    assert!(
        receivers.len() > 3,
        "captures concentrated at {receivers:?}"
    );
}

#[test]
fn catchment_map_matches_ground_truth_for_stable_unicast() {
    let w = world();
    let spec = MeasurementSpec::census(
        802,
        w.std_platforms.production,
        Protocol::Icmp,
        hitlist(&w),
        0,
    );
    let outcome = run_measurement(&w, &spec).expect("valid spec");
    let map = CatchmentMap::from_outcome(&outcome);

    assert!(!map.assignments.is_empty());
    // Single-site assignments must match the routing-derived primary
    // catchment for non-jittery unicast targets.
    let mut checked = 0;
    for (p, &site) in &map.assignments {
        let Some(tid) = w.lookup(*p) else { continue };
        let t = w.target(tid);
        if let laces_netsim::TargetKind::Unicast { .. } = t.kind {
            if t.jittery {
                continue;
            }
            let expected = w.receiving_site(w.std_platforms.production, t.as_idx, 0);
            if let Some((primary, _, ties)) = expected {
                if ties.len() == 1 {
                    assert_eq!(usize::from(site), primary, "catchment mismatch for {p}");
                    checked += 1;
                }
            }
        }
        if checked > 200 {
            break;
        }
    }
    assert!(checked > 100, "too few assignments verified: {checked}");
}

#[test]
fn catchment_shift_between_days_is_small_but_nonzero() {
    let w = world();
    let mk = |day: u32| {
        let spec = MeasurementSpec::census(
            803,
            w.std_platforms.production,
            Protocol::Icmp,
            hitlist(&w),
            day,
        );
        CatchmentMap::from_outcome(&run_measurement(&w, &spec).expect("valid spec"))
    };
    let d0 = mk(0);
    let d1 = mk(1);
    let s = shift(&d0, &d1);
    assert!(s.stable > 0);
    // Daily catchments are mostly stable (tie-breaks re-rolled per day only
    // where equal-cost alternatives exist).
    assert!(s.churn() < 0.25, "daily churn too high: {:.2}", s.churn());
    // Same day is perfectly stable.
    let again = mk(0);
    let s0 = shift(&d0, &again);
    assert_eq!(s0.moved, 0);
    assert_eq!(s0.churn(), 0.0);
}

#[test]
fn aborted_measurement_sends_no_further_probes() {
    use laces_core::orchestrator::{run_measurement_abortable, AbortHandle};
    let w = world();
    let spec = MeasurementSpec::census(
        804,
        w.std_platforms.production,
        Protocol::Icmp,
        hitlist(&w),
        0,
    );

    // Abort before the stream starts: nothing is probed, workers exit
    // cleanly, the outcome is coherent.
    let handle = AbortHandle::new();
    handle.abort();
    assert!(handle.is_aborted());
    let outcome = run_measurement_abortable(&w, &spec, &handle).expect("valid spec");
    assert_eq!(outcome.probes_sent, 0);
    assert!(outcome.records.is_empty());
    assert!(outcome.failed_workers.is_empty());

    // Abort fired from another thread mid-measurement: the run ends early.
    // The kill is asynchronous, so it races the run itself (the batched
    // pipeline can finish the tiny hitlist before a sleeping killer wakes);
    // retry until the abort lands mid-stream.
    let mut stopped_early = false;
    for _ in 0..20 {
        let handle = AbortHandle::new();
        let h2 = handle.clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            h2.abort();
        });
        let outcome = run_measurement_abortable(&w, &spec, &handle).expect("valid spec");
        killer.join().unwrap();
        if outcome.probes_sent < spec.probe_budget(32) {
            stopped_early = true;
            break;
        }
    }
    assert!(
        stopped_early,
        "abort never stopped the stream in 20 attempts"
    );
}

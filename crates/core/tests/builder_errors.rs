//! Every `MeasurementError` variant the builder can return, one test per
//! variant. `fault_matrix.rs` covers `NotAnycast` and `ReservedId` through
//! the run entry points; `gcd_e2e.rs` covers `NotUnicast`. Here the
//! builder itself is the unit under test: a bad definition must be a typed
//! error at `build`, before any thread is spawned.

use std::sync::Arc;

use laces_core::error::MeasurementError;
use laces_core::fault::FaultPlan;
use laces_core::spec::MeasurementSpec;
use laces_netsim::platform::{Platform, PlatformKind};
use laces_netsim::{PlatformId, World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig::tiny())
}

#[test]
fn builder_accepts_the_census_defaults() {
    let w = world();
    let spec = MeasurementSpec::builder(1, w.std_platforms.production)
        .targets(Arc::new(vec!["192.0.2.1".parse().unwrap()]))
        .build(&w)
        .expect("default census definition is valid");
    assert_eq!(spec.id, 1);
    assert_eq!(spec.targets.len(), 1);
}

#[test]
fn builder_rejects_unicast_platforms() {
    let w = world();
    let err = MeasurementSpec::builder(2, w.std_platforms.ark)
        .build(&w)
        .expect_err("ark is GCD territory, not a worker platform");
    assert_eq!(
        err,
        MeasurementError::NotAnycast {
            platform: w.std_platforms.ark
        }
    );
}

#[test]
fn builder_rejects_platforms_with_no_workers() {
    let mut w = world();
    let empty = PlatformId(w.platforms.len() as u16);
    w.platforms.push(Platform {
        name: "ghost-town".into(),
        kind: PlatformKind::Anycast { sites: Vec::new() },
    });
    let err = MeasurementSpec::builder(3, empty)
        .build(&w)
        .expect_err("a platform with zero sites cannot measure");
    assert_eq!(err, MeasurementError::WorkerCount { n_workers: 0 });
    assert!(err.to_string().contains("worker count"));
}

#[test]
fn builder_rejects_reserved_precheck_ids() {
    let w = world();
    let err = MeasurementSpec::builder(0x8000_0002, w.std_platforms.production)
        .build(&w)
        .expect_err("bit 31 belongs to the precheck pass");
    assert_eq!(err, MeasurementError::ReservedId { id: 0x8000_0002 });
}

#[test]
fn builder_rejects_senders_the_platform_does_not_have() {
    let w = world();
    let n = w.platform(w.std_platforms.production).n_vps();
    let bad = n as u16; // first worker id past the end
    let err = MeasurementSpec::builder(4, w.std_platforms.production)
        .senders(vec![0, bad])
        .build(&w)
        .expect_err("sender restriction names a nonexistent worker");
    assert_eq!(
        err,
        MeasurementError::SenderOutOfRange {
            worker: bad,
            n_workers: n
        }
    );
    // In-range restrictions pass.
    assert!(MeasurementSpec::builder(5, w.std_platforms.production)
        .senders(vec![0, (n - 1) as u16])
        .build(&w)
        .is_ok());
}

#[test]
fn builder_rejects_fabric_rates_outside_unit_interval() {
    let w = world();
    for bad_rate in [1.5, -0.1, f64::NAN, f64::INFINITY] {
        let err = MeasurementSpec::builder(6, w.std_platforms.production)
            .faults(FaultPlan::none().and_fabric(bad_rate, 0.0))
            .build(&w)
            .expect_err("fabric rate outside [0, 1] must be rejected");
        match err {
            MeasurementError::InvalidFaultPlan { detail } => {
                assert!(detail.contains("drop_rate"), "unexpected detail: {detail}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }
}

#[test]
fn builder_rejects_faults_on_nonexistent_workers() {
    let w = world();
    let n = w.platform(w.std_platforms.production).n_vps() as u16;
    for plan in [
        FaultPlan::crash(n, 5),
        FaultPlan::none().and_reject_seal(n + 3),
    ] {
        let err = MeasurementSpec::builder(7, w.std_platforms.production)
            .faults(plan)
            .build(&w)
            .expect_err("fault on a worker the platform lacks");
        match err {
            MeasurementError::InvalidFaultPlan { detail } => {
                assert!(detail.contains("worker"), "unexpected detail: {detail}");
            }
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }
    // The same plans are fine on workers that exist.
    assert!(MeasurementSpec::builder(8, w.std_platforms.production)
        .faults(FaultPlan::crash(0, 5))
        .build(&w)
        .is_ok());
}

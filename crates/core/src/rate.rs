//! Rate control (R3, R10).
//!
//! The Orchestrator streams the hitlist to the Workers at a configured
//! rate. In virtual time this is a deterministic schedule; the
//! [`TokenBucket`] additionally provides the classic real-time limiter the
//! production tool would use, so both pieces are exercised.

/// A token bucket: `rate` tokens per second, burst capacity `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_ms: f64,
    burst: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// Create a bucket with the given rate (tokens/second) and burst size.
    pub fn new(rate_per_s: u32, burst: u32) -> Self {
        TokenBucket {
            rate_per_ms: f64::from(rate_per_s) / 1000.0,
            burst: f64::from(burst.max(1)),
            tokens: f64::from(burst.max(1)),
            last_ms: 0,
        }
    }

    /// Try to take one token at time `now_ms`; returns whether it was
    /// granted.
    pub fn try_take(&mut self, now_ms: u64) -> bool {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// The earliest time at or after `now_ms` when a token will be
    /// available.
    pub fn next_available_ms(&mut self, now_ms: u64) -> u64 {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            now_ms
        } else {
            let deficit = 1.0 - self.tokens;
            now_ms + (deficit / self.rate_per_ms).ceil() as u64
        }
    }

    fn refill(&mut self, now_ms: u64) {
        if now_ms > self.last_ms {
            let dt = (now_ms - self.last_ms) as f64;
            self.tokens = (self.tokens + dt * self.rate_per_ms).min(self.burst);
            self.last_ms = now_ms;
        }
    }
}

/// The deterministic hitlist schedule: target `i` is dispatched at
/// `i * 1000 / rate` milliseconds.
///
/// A zero rate admits no schedule — every window is unreachable
/// (`u64::MAX`). [`MeasurementSpec::builder`](crate::spec::MeasurementSpec)
/// rejects zero rates up front ([`MeasurementError::InvalidRate`]
/// (crate::error::MeasurementError::InvalidRate)); this function used to
/// paper over them by clamping 0 → 1 probe/s, which silently turned a
/// misconfigured census into one running 10 000× slower than intended.
pub fn window_start_ms(index: usize, rate_per_s: u32) -> u64 {
    (index as u64)
        .saturating_mul(1000)
        .checked_div(u64::from(rate_per_s))
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_spacing_matches_rate() {
        assert_eq!(window_start_ms(0, 1000), 0);
        assert_eq!(window_start_ms(1000, 1000), 1000);
        assert_eq!(window_start_ms(1, 10_000), 0);
        assert_eq!(window_start_ms(10, 10_000), 1);
    }

    /// Regression: a zero rate used to be silently clamped to 1 probe/s
    /// (`window_start_ms(5, 0)` returned 5000, as if the caller had asked
    /// for a 1/s census). The spec builder now rejects zero rates; the raw
    /// schedule reports every window as unreachable instead of inventing a
    /// rate.
    #[test]
    fn zero_rate_is_unreachable_not_clamped() {
        assert_eq!(window_start_ms(0, 0), u64::MAX);
        assert_eq!(window_start_ms(5, 0), u64::MAX);
    }

    #[test]
    fn bucket_enforces_rate() {
        let mut b = TokenBucket::new(1000, 1); // 1 token per ms
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst of 1 exhausted");
        assert!(b.try_take(1));
        assert!(b.try_take(2));
        assert!(!b.try_take(2));
    }

    #[test]
    fn bucket_burst_allows_bursts() {
        let mut b = TokenBucket::new(10, 5);
        for _ in 0..5 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0));
    }

    #[test]
    fn next_available_is_exact() {
        let mut b = TokenBucket::new(100, 1); // 0.1 token/ms
        assert!(b.try_take(0));
        let t = b.next_available_ms(0);
        assert_eq!(t, 10);
        assert!(b.try_take(t));
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut b = TokenBucket::new(1000, 2);
        assert!(b.try_take(0));
        // A long idle period must not accumulate more than `burst`.
        b.refill(1_000_000);
        assert!(b.try_take(1_000_000));
        assert!(b.try_take(1_000_000));
        assert!(!b.try_take(1_000_000));
    }
}

//! Anycast-based classification (the MAnycast² methodology, rebuilt).
//!
//! For each probed prefix, count the distinct workers that captured
//! responses: one worker → unicast; more than one → anycast candidate;
//! none → unresponsive. The census publishes this verdict *independently*
//! of the GCD verdict (R1: results convey per-methodology confidence), and
//! the VP count itself is the key confidence signal — Table 3 shows
//! 2-VP candidates are mostly false positives while 5+-VP candidates are
//! almost all real.

use std::collections::{BTreeMap, BTreeSet};

use laces_packet::PrefixKey;
use laces_trace::{Component, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

use crate::results::MeasurementOutcome;

/// Verdict of the anycast-based stage for one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Class {
    /// Responses arrived at `n_vps` (>1) distinct workers.
    Anycast {
        /// Number of distinct receiving workers.
        n_vps: usize,
    },
    /// All responses arrived at a single worker.
    Unicast,
    /// No responses captured.
    Unresponsive,
}

impl Class {
    /// Whether the verdict is an anycast candidate.
    pub fn is_anycast(self) -> bool {
        matches!(self, Class::Anycast { .. })
    }
}

/// Per-prefix observation detail.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixObservation {
    /// Workers that captured at least one response.
    pub rx_workers: BTreeSet<u16>,
    /// Total responses captured.
    pub n_responses: u32,
    /// Distinct CHAOS identities observed (CHAOS measurements only).
    pub chaos_values: BTreeSet<String>,
}

/// The anycast-based classification of one measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnycastClassification {
    /// Per-prefix observations (only prefixes that responded appear).
    pub observations: BTreeMap<PrefixKey, PrefixObservation>,
    /// Number of probed targets.
    pub n_targets: usize,
}

impl AnycastClassification {
    /// Aggregate a measurement outcome.
    pub fn from_outcome(outcome: &MeasurementOutcome) -> Self {
        Self::from_outcome_traced(outcome, &Tracer::disabled())
    }

    /// Aggregate a measurement outcome, recording each record's
    /// contribution and the per-prefix verdict into `tracer`. The records
    /// are walked in the outcome's canonical order and verdicts come from
    /// a `BTreeMap` walk, so the recorded events are deterministic.
    pub fn from_outcome_traced(outcome: &MeasurementOutcome, tracer: &Tracer) -> Self {
        let mut observations: BTreeMap<PrefixKey, PrefixObservation> = BTreeMap::new();
        for r in &outcome.records {
            tracer.record_for(Component::Classify, r.prefix, || {
                TraceEvent::ClassContribution {
                    prefix: r.prefix,
                    rx_worker: r.rx_worker,
                }
            });
            let o = observations.entry(r.prefix).or_default();
            o.rx_workers.insert(r.rx_worker);
            o.n_responses += 1;
            if let Some(c) = &r.chaos_identity {
                if !o.chaos_values.contains(c.as_ref()) {
                    o.chaos_values.insert(c.as_ref().to_string());
                }
            }
        }
        if tracer.is_enabled() {
            for (prefix, o) in &observations {
                let verdict = if o.rx_workers.len() > 1 {
                    "anycast"
                } else {
                    "unicast"
                };
                tracer.record_for(Component::Classify, *prefix, || TraceEvent::ClassVerdict {
                    prefix: *prefix,
                    n_vps: o.rx_workers.len(),
                    verdict: verdict.to_string(),
                });
            }
        }
        AnycastClassification {
            observations,
            n_targets: outcome.n_targets,
        }
    }

    /// Verdict for a prefix that was in the hitlist.
    pub fn class_of(&self, prefix: PrefixKey) -> Class {
        match self.observations.get(&prefix) {
            None => Class::Unresponsive,
            Some(o) if o.rx_workers.len() > 1 => Class::Anycast {
                n_vps: o.rx_workers.len(),
            },
            Some(_) => Class::Unicast,
        }
    }

    /// All anycast candidates (the paper's "anycast targets", AT).
    pub fn anycast_targets(&self) -> Vec<PrefixKey> {
        self.observations
            .iter()
            .filter(|(_, o)| o.rx_workers.len() > 1)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Candidates bucketed by receiving-VP count (Table 3's rows).
    pub fn vp_count_histogram(&self) -> BTreeMap<usize, usize> {
        let mut h = BTreeMap::new();
        for o in self.observations.values() {
            if o.rx_workers.len() > 1 {
                *h.entry(o.rx_workers.len()).or_insert(0) += 1;
            }
        }
        h
    }

    /// Count of responsive prefixes.
    pub fn n_responsive(&self) -> usize {
        self.observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::ProbeRecord;
    use laces_netsim::PlatformId;
    use laces_packet::Protocol;

    fn record(prefix: &str, rx: u16) -> ProbeRecord {
        ProbeRecord {
            prefix: PrefixKey::of(prefix.parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: rx,
            tx_worker: Some(rx),
            tx_time_ms: Some(0),
            rx_time_ms: 10,
            chaos_identity: None,
        }
    }

    fn outcome(records: Vec<ProbeRecord>) -> MeasurementOutcome {
        MeasurementOutcome {
            measurement_id: 1,
            platform: PlatformId(0),
            protocol: Protocol::Icmp,
            n_workers: 32,
            probes_sent: 96,
            n_targets: 3,
            records,
            failed_workers: vec![],
            worker_health: vec![],
            telemetry: laces_obs::RunReport::new(),
            shard_report: Default::default(),
            trace_report: laces_trace::TraceReport::default(),
        }
    }

    #[test]
    fn classifies_by_distinct_receivers() {
        let o = outcome(vec![
            record("10.0.0.1", 0),
            record("10.0.0.2", 0),
            record("10.0.0.2", 0), // duplicate receiver, still unicast
            record("10.0.1.1", 0),
            record("10.0.1.1", 5),
            record("10.0.1.1", 9),
        ]);
        let c = AnycastClassification::from_outcome(&o);
        assert_eq!(
            c.class_of(PrefixKey::of("10.0.0.2".parse().unwrap())),
            Class::Unicast
        );
        assert_eq!(
            c.class_of(PrefixKey::of("10.0.1.99".parse().unwrap())),
            Class::Anycast { n_vps: 3 },
            "same /24 aggregates"
        );
        assert_eq!(
            c.class_of(PrefixKey::of("10.9.9.9".parse().unwrap())),
            Class::Unresponsive
        );
        assert_eq!(c.anycast_targets().len(), 1);
    }

    #[test]
    fn histogram_buckets_by_vp_count() {
        let o = outcome(vec![
            record("10.0.0.1", 0),
            record("10.0.0.1", 1),
            record("10.0.1.1", 0),
            record("10.0.1.1", 1),
            record("10.0.2.1", 0),
            record("10.0.2.1", 1),
            record("10.0.2.1", 2),
        ]);
        let c = AnycastClassification::from_outcome(&o);
        let h = c.vp_count_histogram();
        assert_eq!(h.get(&2), Some(&2));
        assert_eq!(h.get(&3), Some(&1));
    }

    #[test]
    fn chaos_values_deduplicate() {
        let mut r1 = record("10.0.0.1", 0);
        r1.chaos_identity = Some("auth1".into());
        let mut r2 = record("10.0.0.1", 1);
        r2.chaos_identity = Some("auth1".into());
        let mut r3 = record("10.0.0.1", 2);
        r3.chaos_identity = Some("ams01".into());
        let c = AnycastClassification::from_outcome(&outcome(vec![r1, r2, r3]));
        let o = &c.observations[&PrefixKey::of("10.0.0.1".parse().unwrap())];
        assert_eq!(o.chaos_values.len(), 2);
    }

    #[test]
    fn is_anycast_helper() {
        assert!(Class::Anycast { n_vps: 2 }.is_anycast());
        assert!(!Class::Unicast.is_anycast());
        assert!(!Class::Unresponsive.is_anycast());
    }
}

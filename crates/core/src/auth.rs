//! Authenticated control-channel envelopes (R8).
//!
//! The real deployment secures Orchestrator↔Worker traffic with TLS
//! (an orchestrator certificate and pinned public keys at the workers).
//! Inside the simulation there is no network to eavesdrop on, but the
//! *protocol property* still matters: a worker must reject instructions
//! that were not produced by its orchestrator. We model this with a keyed
//! message tag — a MAC-shaped construction over a shared key. It is **not**
//! cryptography (the mixer is a statistical hash, not a PRF); it is the
//! simulation stand-in that keeps the authentication code path, and its
//! failure handling, real.

use serde::{Deserialize, Serialize};

/// Shared authentication key, distributed out-of-band (in the real system:
/// the orchestrator's certificate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthKey(pub u64);

impl AuthKey {
    /// Derive a per-deployment key from a seed.
    pub fn derive(seed: u64) -> Self {
        AuthKey(mix(seed ^ 0xAE57_11D0_C0DE_D00D, 0x5EC2E7))
    }
}

/// An authenticated envelope around a serialisable payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sealed<T> {
    /// The payload.
    pub payload: T,
    tag: u64,
}

fn mix(mut z: u64, salt: u64) -> u64 {
    z ^= salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tag_bytes(key: AuthKey, bytes: &[u8]) -> u64 {
    let mut acc = mix(key.0, 0x7A6);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        acc = mix(acc ^ u64::from_le_bytes(w), 0x1D);
    }
    acc
}

impl<T: Serialize> Sealed<T> {
    /// Seal a payload under `key`.
    pub fn seal(key: AuthKey, payload: T) -> Self {
        // laces-lint: allow(panic-path) — sealed payloads are the worker protocol's own plain structs; serialisation is infallible, and a fallible seal() would force Result through every send site for an unreachable branch
        let bytes = serde_json::to_vec(&payload).expect("payload serialises");
        let tag = tag_bytes(key, &bytes);
        Sealed { payload, tag }
    }

    /// Verify the tag and release the payload; `None` on mismatch.
    pub fn open(self, key: AuthKey) -> Option<T> {
        // laces-lint: allow(panic-path) — same infallible serialisation as seal(); a tag over different bytes would fail verification, never panic
        let bytes = serde_json::to_vec(&self.payload).expect("payload serialises");
        if tag_bytes(key, &bytes) == self.tag {
            Some(self.payload)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = AuthKey::derive(42);
        let sealed = Sealed::seal(key, ("start".to_string(), 7u32));
        assert_eq!(sealed.open(key), Some(("start".to_string(), 7u32)));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = Sealed::seal(AuthKey::derive(1), vec![1u8, 2, 3]);
        assert_eq!(sealed.clone().open(AuthKey::derive(2)), None);
        assert_eq!(sealed.open(AuthKey::derive(1)), Some(vec![1u8, 2, 3]));
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut sealed = Sealed::seal(AuthKey::derive(1), vec![1u8, 2, 3]);
        sealed.payload[0] = 99;
        assert_eq!(sealed.open(AuthKey::derive(1)), None);
    }

    #[test]
    fn keys_derive_deterministically_and_differ() {
        assert_eq!(AuthKey::derive(5), AuthKey::derive(5));
        assert_ne!(AuthKey::derive(5), AuthKey::derive(6));
    }
}

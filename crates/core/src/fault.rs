//! Deterministic fault injection for the measurement path (R5).
//!
//! A [`FaultPlan`] describes every deliberate fault a measurement run
//! should suffer: workers crashing mid-measurement, start orders that fail
//! authentication, order channels that come up late or close early,
//! capture-fabric drops and duplications, and a mid-stream abort of the
//! whole measurement. The plan is serializable (so a failing run can be
//! attached to a bug report and replayed) and every stochastic choice in it
//! is keyed on one `seed`, so two runs under the same abort-free plan
//! produce bit-identical
//! [`MeasurementOutcome`](crate::results::MeasurementOutcome)s. A
//! mid-stream abort fires deterministically but cuts the stream at a
//! scheduling-dependent point, exactly like the real CLI disconnect it
//! models — replays of abort plans keep every collected record, not the
//! identical cut.
//!
//! The plan injects faults; *graceful degradation* is what the rest of the
//! stack does with them. The Orchestrator completes the measurement with
//! the surviving workers and reports per-worker health plus a `degraded`
//! flag; the census pipeline publishes the day anyway, with the flag set,
//! rather than losing it.

use laces_netsim::rng;
use laces_netsim::CaptureFaults;
use serde::{Deserialize, Serialize};

/// One worker crash: the worker goes dark after processing `after_orders`
/// probe orders, losing its remaining probes and all of its site's
/// captures (R5: a worker's loss costs only its own captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerCrash {
    /// The worker that disconnects.
    pub worker: u16,
    /// How many probe orders it processes before going dark.
    pub after_orders: usize,
}

/// A fault on one worker's order channel: the stream from the Orchestrator
/// comes up late (the first `delay_orders` orders are lost) and/or closes
/// early (after `close_after` delivered orders). The worker itself stays
/// healthy — it probes fewer targets and completes normally, which is
/// exactly how a flapping control connection degrades a real platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderChannelFault {
    /// The worker whose order channel is faulty.
    pub worker: u16,
    /// Orders lost before the channel comes up.
    pub delay_orders: usize,
    /// Close the channel after delivering this many orders.
    pub close_after: Option<usize>,
}

/// A complete, reproducible fault schedule for one measurement.
///
/// `FaultPlan::default()` is the fault-free plan every production spec
/// carries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed all stochastic fault decisions are keyed on (capture-fabric
    /// verdicts, [`FaultPlan::seeded`] generation).
    pub seed: u64,
    /// Workers that crash, each after its own order count.
    pub crashes: Vec<WorkerCrash>,
    /// Workers whose start order is sealed under a corrupted key; they
    /// reject it (R8) and never start.
    pub reject_seal: Vec<u16>,
    /// Per-worker order-channel faults.
    pub order_faults: Vec<OrderChannelFault>,
    /// Capture-fabric drop/duplication model, applied at the wire layer.
    pub fabric: Option<CaptureFaults>,
    /// Abort the whole measurement once this many records were collected
    /// (models the CLI disconnecting mid-stream). Whether the abort fires
    /// is deterministic; where the hitlist stream is cut is not — see the
    /// module docs.
    pub abort_after_records: Option<usize>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed` for later stochastic faults.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// A plan crashing exactly one worker — the shape robustness tests
    /// used before plans could express more.
    pub fn crash(worker: u16, after_orders: usize) -> Self {
        FaultPlan::default().and_crash(worker, after_orders)
    }

    /// Add one worker crash.
    pub fn and_crash(mut self, worker: u16, after_orders: usize) -> Self {
        self.crashes.push(WorkerCrash {
            worker,
            after_orders,
        });
        self
    }

    /// Add a start-order authentication failure for `worker`.
    pub fn and_reject_seal(mut self, worker: u16) -> Self {
        self.reject_seal.push(worker);
        self
    }

    /// Add an order-channel fault.
    pub fn and_order_fault(
        mut self,
        worker: u16,
        delay_orders: usize,
        close_after: Option<usize>,
    ) -> Self {
        self.order_faults.push(OrderChannelFault {
            worker,
            delay_orders,
            close_after,
        });
        self
    }

    /// Enable capture-fabric faults keyed on this plan's seed *as of this
    /// call*: set the seed first ([`FaultPlan::with_seed`] /
    /// [`FaultPlan::seeded`]), or the fabric verdicts stay keyed on the
    /// default seed 0.
    pub fn and_fabric(mut self, drop_rate: f64, dup_rate: f64) -> Self {
        self.fabric = Some(CaptureFaults {
            seed: self.seed,
            drop_rate,
            dup_rate,
        });
        self
    }

    /// Abort the measurement after `n` collected records.
    pub fn and_abort_after(mut self, n: usize) -> Self {
        self.abort_after_records = Some(n);
        self
    }

    /// Derive a pseudo-random crash schedule from `seed`: `k` distinct
    /// workers out of `n_workers`, each with its own `after_orders` below
    /// `max_after`. Pure in its arguments, so a fault-matrix test can
    /// sweep seeds and replay any cell.
    pub fn seeded(seed: u64, n_workers: u16, k: usize, max_after: usize) -> Self {
        let mut plan = FaultPlan::with_seed(seed);
        let k = k.min(usize::from(n_workers));
        let mut draw = 0u64;
        while plan.crashes.len() < k {
            // laces-lint: allow(as-truncation) — bounded by the u16-denominated modulus; cannot wrap
            let w = (rng::key(seed, &[0xC2A5, draw]) % u64::from(n_workers)) as u16;
            draw += 1;
            if plan.crashes.iter().any(|c| c.worker == w) {
                continue;
            }
            let after = rng::below(rng::key(seed, &[0xC2A6, u64::from(w)]), max_after.max(1));
            plan.crashes.push(WorkerCrash {
                worker: w,
                after_orders: after,
            });
        }
        plan.crashes.sort_unstable_by_key(|c| c.worker);
        plan
    }

    /// Whether the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.reject_seal.is_empty()
            && self.order_faults.is_empty()
            && self.fabric.is_none()
            && self.abort_after_records.is_none()
    }

    /// The order count after which `worker` crashes, if scheduled to. When
    /// a plan lists a worker twice the earliest crash wins.
    pub fn crash_after(&self, worker: u16) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|c| c.worker == worker)
            .map(|c| c.after_orders)
            .min()
    }

    /// Whether `worker`'s start order should be sealed under a bad key.
    pub fn rejects_seal(&self, worker: u16) -> bool {
        self.reject_seal.contains(&worker)
    }

    /// The order-channel fault for `worker`, if any.
    pub fn order_fault(&self, worker: u16) -> Option<&OrderChannelFault> {
        self.order_faults.iter().find(|f| f.worker == worker)
    }

    /// Workers the plan schedules to fail (crashes and seal rejections),
    /// sorted and deduplicated. This is the plan's *intent*: a crash whose
    /// `after_orders` exceeds the orders the measurement actually delivers
    /// to that worker never fires, and the worker completes healthy.
    pub fn doomed_workers(&self) -> Vec<u16> {
        let mut ws: Vec<u16> = self
            .crashes
            .iter()
            .map(|c| c.worker)
            .chain(self.reject_seal.iter().copied())
            .collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.crash_after(0), None);
        assert!(p.doomed_workers().is_empty());
    }

    #[test]
    fn builders_compose() {
        let p = FaultPlan::with_seed(7)
            .and_crash(3, 10)
            .and_crash(5, 0)
            .and_reject_seal(9)
            .and_order_fault(1, 4, Some(20))
            .and_fabric(0.1, 0.05)
            .and_abort_after(100);
        assert!(!p.is_none());
        assert_eq!(p.crash_after(3), Some(10));
        assert_eq!(p.crash_after(5), Some(0));
        assert_eq!(p.crash_after(4), None);
        assert!(p.rejects_seal(9));
        assert_eq!(p.order_fault(1).unwrap().close_after, Some(20));
        assert_eq!(p.fabric.unwrap().seed, 7);
        assert_eq!(p.doomed_workers(), vec![3, 5, 9]);
    }

    #[test]
    fn duplicate_crash_entries_take_earliest() {
        let p = FaultPlan::default().and_crash(2, 50).and_crash(2, 5);
        assert_eq!(p.crash_after(2), Some(5));
        assert_eq!(p.doomed_workers(), vec![2]);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(42, 32, 5, 100);
        let b = FaultPlan::seeded(42, 32, 5, 100);
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 5);
        let workers: std::collections::BTreeSet<u16> = a.crashes.iter().map(|c| c.worker).collect();
        assert_eq!(workers.len(), 5, "crashed workers are distinct");
        assert!(workers.iter().all(|&w| w < 32));
        let c = FaultPlan::seeded(43, 32, 5, 100);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn seeded_clamps_k_to_platform_size() {
        let p = FaultPlan::seeded(1, 4, 10, 8);
        assert_eq!(p.crashes.len(), 4);
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let p = FaultPlan::seeded(9, 16, 3, 40)
            .and_fabric(0.2, 0.01)
            .and_order_fault(2, 0, Some(7))
            .and_abort_after(500);
        let text = serde_json::to_string(&p).expect("plan serialises");
        let back: FaultPlan = serde_json::from_str(&text).expect("plan parses");
        assert_eq!(p, back);
    }
}

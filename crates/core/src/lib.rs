//! The LACeS measurement tool, rebuilt from the paper's design (§4).
//!
//! Three components cooperate to run a measurement:
//!
//! * the **CLI** ([`cli`]) turns a command line into a
//!   [`MeasurementSpec`](spec::MeasurementSpec) and sinks the result stream;
//! * the **Orchestrator** ([`orchestrator`]) seals start orders, streams
//!   the hitlist to the workers at the configured rate, and aggregates
//!   results, surviving worker failures;
//! * the **Workers** ([`worker`]) probe and capture at each anycast site,
//!   validating every captured reply against the probe metadata echoed by
//!   the target and streaming records back immediately.
//!
//! Classification ([`classify`]) turns an aggregated outcome into the
//! anycast-based verdict per prefix (unicast / anycast / unresponsive plus
//! the receiving-VP count, the methodology's confidence signal).
//!
//! # Example: a synchronized ICMP measurement
//!
//! ```
//! use std::sync::Arc;
//! use laces_core::{classify::AnycastClassification, orchestrator, spec::MeasurementSpec};
//! use laces_netsim::{World, WorldConfig};
//! use laces_packet::{PrefixKey, Protocol};
//!
//! let world = Arc::new(World::generate(WorldConfig::tiny()));
//! // Probe the first 100 IPv4 targets' representative addresses.
//! let targets: Vec<std::net::IpAddr> = world.targets[..100]
//!     .iter()
//!     .filter_map(|t| match t.prefix {
//!         PrefixKey::V4(p) => Some(std::net::IpAddr::V4(p.addr(77))),
//!         _ => None,
//!     })
//!     .collect();
//! let spec = MeasurementSpec::census(
//!     1,
//!     world.std_platforms.production,
//!     Protocol::Icmp,
//!     Arc::new(targets),
//!     0,
//! );
//! let outcome = orchestrator::run_measurement(&world, &spec).expect("anycast platform");
//! let class = AnycastClassification::from_outcome(&outcome);
//! println!("{} anycast candidates", class.anycast_targets().len());
//! ```

#![forbid(unsafe_code)]

pub mod auth;
pub mod catchment;
pub mod classify;
pub mod cli;
pub mod error;
pub mod fault;
pub mod orchestrator;
pub mod rate;
pub mod results;
pub mod spec;
pub mod worker;

pub use catchment::{shift, CatchmentMap, CatchmentShift};
pub use classify::{AnycastClassification, Class};
pub use error::MeasurementError;
pub use fault::{FaultPlan, OrderChannelFault, WorkerCrash};
pub use laces_obs::{Degraded, DegradedReason, RunReport};
#[allow(deprecated)]
pub use orchestrator::ReservedIdError;
pub use orchestrator::{
    run_measurement, run_measurement_abortable, run_measurement_threaded,
    run_measurement_threaded_abortable, run_with_precheck, AbortHandle, PRECHECK_ID_BIT,
};
pub use results::{MeasurementOutcome, ProbeRecord, WorkerHealth, WorkerStatus, WorkerTelemetry};
pub use spec::{MeasurementSpec, MeasurementSpecBuilder};

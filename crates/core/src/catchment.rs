//! Anycast catchment mapping and analysis (verfploeter mode).
//!
//! The same measurement machinery that detects anycast also maps the
//! measuring deployment's own *catchments*: which site captures each
//! prefix's traffic (de Vries et al., IMC 2017 — the measurement that led
//! to MAnycast², §2.2). Operators use catchment maps for load balancing
//! and to predict the impact of adding or withdrawing a site; comparing
//! maps across days surfaces routing shifts.

use std::collections::{BTreeMap, BTreeSet};

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

use crate::results::MeasurementOutcome;

/// A catchment map: for each responsive prefix, the set of sites that
/// captured its responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatchmentMap {
    /// Number of sites on the measuring platform.
    pub n_sites: usize,
    /// Prefixes captured at exactly one site (the normal case).
    pub assignments: BTreeMap<PrefixKey, u16>,
    /// Prefixes captured at several sites — anycast targets or unstable
    /// routes (De Vries et al.'s original observation).
    pub multi_site: BTreeMap<PrefixKey, BTreeSet<u16>>,
}

impl CatchmentMap {
    /// Build a catchment map from a measurement outcome.
    pub fn from_outcome(outcome: &MeasurementOutcome) -> Self {
        let mut sites: BTreeMap<PrefixKey, BTreeSet<u16>> = BTreeMap::new();
        for r in &outcome.records {
            sites.entry(r.prefix).or_default().insert(r.rx_worker);
        }
        let mut assignments = BTreeMap::new();
        let mut multi_site = BTreeMap::new();
        for (p, s) in sites {
            // A one-element set is a stable single-site assignment; the
            // `if let` shape keeps the measurement path free of panics.
            if let (1, Some(&site)) = (s.len(), s.iter().next()) {
                assignments.insert(p, site);
            } else {
                multi_site.insert(p, s);
            }
        }
        CatchmentMap {
            n_sites: outcome.n_workers,
            assignments,
            multi_site,
        }
    }

    /// Prefixes captured per site (single-site assignments only).
    pub fn site_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.n_sites];
        for &s in self.assignments.values() {
            if let Some(l) = loads.get_mut(usize::from(s)) {
                *l += 1;
            }
        }
        loads
    }

    /// Fraction of single-site prefixes captured by `site`.
    pub fn share(&self, site: u16) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        let n = self.assignments.values().filter(|&&s| s == site).count();
        n as f64 / self.assignments.len() as f64
    }

    /// Load imbalance: the largest catchment divided by the smallest
    /// non-empty one. 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let loads = self.site_loads();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().filter(|&l| l > 0).min().unwrap_or(0);
        if min == 0 {
            return f64::INFINITY;
        }
        max as f64 / min as f64
    }

    /// Sites that captured nothing at all (candidate outages or
    /// announcement problems).
    pub fn silent_sites(&self) -> Vec<u16> {
        let mut captured = vec![false; self.n_sites];
        for &s in self.assignments.values() {
            if let Some(c) = captured.get_mut(usize::from(s)) {
                *c = true;
            }
        }
        for sites in self.multi_site.values() {
            for &s in sites {
                if let Some(c) = captured.get_mut(usize::from(s)) {
                    *c = true;
                }
            }
        }
        captured
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i as u16)
            .collect()
    }
}

/// Differences between two catchment maps (e.g. consecutive days).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatchmentShift {
    /// Prefixes assigned to the same site in both maps.
    pub stable: usize,
    /// Prefixes assigned to a different site.
    pub moved: usize,
    /// Prefixes assigned in `a` but absent (or multi-site) in `b`.
    pub lost: usize,
    /// Prefixes assigned in `b` but absent (or multi-site) in `a`.
    pub gained: usize,
}

impl CatchmentShift {
    /// Fraction of comparable prefixes that moved.
    pub fn churn(&self) -> f64 {
        let comparable = self.stable + self.moved;
        if comparable == 0 {
            0.0
        } else {
            self.moved as f64 / comparable as f64
        }
    }
}

/// Compare two catchment maps.
pub fn shift(a: &CatchmentMap, b: &CatchmentMap) -> CatchmentShift {
    let mut out = CatchmentShift::default();
    for (p, &sa) in &a.assignments {
        match b.assignments.get(p) {
            Some(&sb) if sa == sb => out.stable += 1,
            Some(_) => out.moved += 1,
            None => out.lost += 1,
        }
    }
    for p in b.assignments.keys() {
        if !a.assignments.contains_key(p) {
            out.gained += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::ProbeRecord;
    use laces_netsim::PlatformId;
    use laces_packet::Protocol;

    fn record(prefix: &str, rx: u16) -> ProbeRecord {
        ProbeRecord {
            prefix: PrefixKey::of(prefix.parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: rx,
            tx_worker: Some(0),
            tx_time_ms: Some(0),
            rx_time_ms: 1,
            chaos_identity: None,
        }
    }

    fn outcome(records: Vec<ProbeRecord>, n_workers: usize) -> MeasurementOutcome {
        MeasurementOutcome {
            measurement_id: 1,
            platform: PlatformId(0),
            protocol: Protocol::Icmp,
            n_workers,
            probes_sent: 0,
            n_targets: 4,
            records,
            failed_workers: vec![],
            worker_health: vec![],
            telemetry: laces_obs::RunReport::new(),
            shard_report: Default::default(),
            trace_report: Default::default(),
        }
    }

    fn map(assignments: &[(&str, u16)], n: usize) -> CatchmentMap {
        CatchmentMap::from_outcome(&outcome(
            assignments.iter().map(|(p, s)| record(p, *s)).collect(),
            n,
        ))
    }

    #[test]
    fn splits_single_and_multi_site() {
        let m = CatchmentMap::from_outcome(&outcome(
            vec![
                record("10.0.0.1", 0),
                record("10.0.1.1", 1),
                record("10.0.1.1", 2),
            ],
            4,
        ));
        assert_eq!(m.assignments.len(), 1);
        assert_eq!(m.multi_site.len(), 1);
        assert_eq!(m.site_loads(), vec![1, 0, 0, 0]);
    }

    #[test]
    fn shares_and_imbalance() {
        let m = map(
            &[
                ("10.0.0.1", 0),
                ("10.0.1.1", 0),
                ("10.0.2.1", 0),
                ("10.0.3.1", 1),
            ],
            3,
        );
        assert!((m.share(0) - 0.75).abs() < 1e-9);
        assert!((m.share(1) - 0.25).abs() < 1e-9);
        assert_eq!(m.share(2), 0.0);
        assert!((m.imbalance() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_empty_map_is_infinite() {
        let m = map(&[], 3);
        assert!(m.imbalance().is_infinite());
    }

    #[test]
    fn silent_sites_detected() {
        let m = map(&[("10.0.0.1", 0), ("10.0.1.1", 2)], 4);
        assert_eq!(m.silent_sites(), vec![1, 3]);
    }

    #[test]
    fn shift_accounting() {
        let a = map(&[("10.0.0.1", 0), ("10.0.1.1", 1), ("10.0.2.1", 2)], 4);
        let b = map(&[("10.0.0.1", 0), ("10.0.1.1", 3), ("10.0.9.1", 1)], 4);
        let s = shift(&a, &b);
        assert_eq!(
            s,
            CatchmentShift {
                stable: 1,
                moved: 1,
                lost: 1,
                gained: 1
            }
        );
        assert!((s.churn() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn churn_of_empty_comparison_is_zero() {
        assert_eq!(CatchmentShift::default().churn(), 0.0);
    }
}

//! Measurement definitions.
//!
//! A [`MeasurementSpec`] is what the CLI hands to the Orchestrator: which
//! platform probes, what protocol, which targets, how fast, and with what
//! inter-worker offset. The paper's two probing disciplines are both
//! expressed through `offset_ms`: LACeS's synchronized probing uses 0–1 s
//! offsets, while the MAnycast² baseline's sequential per-VP sweeps
//! correspond to offsets of minutes (§5.1.5).

use std::net::IpAddr;
use std::sync::Arc;

use laces_netsim::PlatformId;
use laces_packet::{ProbeEncoding, Protocol};

use crate::fault::FaultPlan;

/// A complete measurement definition.
#[derive(Debug, Clone)]
pub struct MeasurementSpec {
    /// Measurement identifier, embedded in every probe and used to filter
    /// captured replies.
    pub id: u32,
    /// The anycast platform whose workers probe.
    pub platform: PlatformId,
    /// Probing protocol.
    pub protocol: Protocol,
    /// Target addresses (one representative per census prefix).
    pub targets: Arc<Vec<IpAddr>>,
    /// Hitlist streaming rate, in targets per second (R3: the probe load a
    /// target sees is `n_workers` packets per target regardless of rate;
    /// the rate bounds the *platform's* egress).
    pub rate_per_s: u32,
    /// Offset between consecutive workers' probes to the same target, in
    /// milliseconds. The target sees a ping train with this period.
    pub offset_ms: u64,
    /// Probe encoding (per-worker attribution or the §5.1.4 static mode).
    pub encoding: ProbeEncoding,
    /// Simulated day of the measurement.
    pub day: u32,
    /// Deliberate fault schedule for robustness tests (R5); the default
    /// plan is fault-free.
    pub faults: FaultPlan,
    /// Restrict probing to these workers (all workers still capture).
    /// `None` means every worker probes. Used by the single-VP
    /// responsiveness precheck (paper §6 future work).
    pub senders: Option<Vec<u16>>,
}

impl MeasurementSpec {
    /// A spec with the daily-census defaults: 1 s offsets, per-worker
    /// encoding, 10 k targets/s.
    pub fn census(
        id: u32,
        platform: PlatformId,
        protocol: Protocol,
        targets: Arc<Vec<IpAddr>>,
        day: u32,
    ) -> Self {
        MeasurementSpec {
            id,
            platform,
            protocol,
            targets,
            rate_per_s: 10_000,
            offset_ms: 1_000,
            encoding: ProbeEncoding::PerWorker,
            day,
            faults: FaultPlan::default(),
            senders: None,
        }
    }

    /// Whether `worker` transmits probes under this spec.
    pub fn is_sender(&self, worker: u16) -> bool {
        self.senders.as_ref().is_none_or(|s| s.contains(&worker))
    }

    /// Window span between the first and last probe a target receives.
    pub fn span_ms(&self, n_workers: usize) -> u64 {
        self.offset_ms * (n_workers.saturating_sub(1)) as u64
    }

    /// Total probes this measurement will send.
    pub fn probe_budget(&self, n_workers: usize) -> u64 {
        self.targets.len() as u64 * n_workers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(offset: u64) -> MeasurementSpec {
        let mut s = MeasurementSpec::census(
            1,
            PlatformId(0),
            Protocol::Icmp,
            Arc::new(vec!["10.0.0.1".parse().unwrap(); 10]),
            0,
        );
        s.offset_ms = offset;
        s
    }

    #[test]
    fn span_is_offset_times_gaps() {
        assert_eq!(spec(1_000).span_ms(32), 31_000);
        assert_eq!(spec(0).span_ms(32), 0);
        assert_eq!(spec(780_000).span_ms(32), 24_180_000); // the 13-minute baseline
        assert_eq!(spec(1_000).span_ms(1), 0);
        assert_eq!(spec(1_000).span_ms(0), 0);
    }

    #[test]
    fn probe_budget_counts_workers() {
        assert_eq!(spec(1_000).probe_budget(32), 320);
    }
}

//! Measurement definitions.
//!
//! A [`MeasurementSpec`] is what the CLI hands to the Orchestrator: which
//! platform probes, what protocol, which targets, how fast, and with what
//! inter-worker offset. The paper's two probing disciplines are both
//! expressed through `offset_ms`: LACeS's synchronized probing uses 0–1 s
//! offsets, while the MAnycast² baseline's sequential per-VP sweeps
//! correspond to offsets of minutes (§5.1.5).

use std::net::IpAddr;
use std::sync::Arc;

use laces_netsim::{PlatformId, World};
use laces_packet::{ProbeEncoding, Protocol};
use laces_trace::TraceConfig;

use crate::error::MeasurementError;
use crate::fault::FaultPlan;
use crate::orchestrator::PRECHECK_ID_BIT;

/// Default probe-batch size: how many orders the Orchestrator groups into
/// one channel send toward each worker, and how many probes a worker hands
/// to the wire per `send_probe_batch` call. Tuned by the probing bench
/// (BENCH_pr4.json): 256 amortizes channel wakeups and fabric flushes into
/// large frames while the in-flight window per worker stays modest; larger
/// sizes measured flat to slightly worse.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Cap on the default shard count: beyond ~16 shards the per-shard slices
/// of realistic hitlists drop below the size where per-shard session setup
/// amortizes, and the merge fan-in starts to show.
pub const MAX_DEFAULT_SHARDS: usize = 16;

/// The default shard count: the machine's available parallelism, capped at
/// [`MAX_DEFAULT_SHARDS`] and floored at 1. Outputs are invariant in the
/// shard count (see `shard_invariance.rs`), so a machine-dependent default
/// never leaks into records, classification or telemetry.
pub fn default_shards() -> usize {
    // laces-lint: allow(determinism-taint) — shard count never reaches artifact bytes: records, classification, telemetry and traces are pinned shard-invariant by core/tests/shard_invariance.rs
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, MAX_DEFAULT_SHARDS)
}

/// A complete measurement definition.
#[derive(Debug, Clone)]
pub struct MeasurementSpec {
    /// Measurement identifier, embedded in every probe and used to filter
    /// captured replies.
    pub id: u32,
    /// The anycast platform whose workers probe.
    pub platform: PlatformId,
    /// Probing protocol.
    pub protocol: Protocol,
    /// Target addresses (one representative per census prefix).
    pub targets: Arc<Vec<IpAddr>>,
    /// Hitlist streaming rate, in targets per second (R3: the probe load a
    /// target sees is `n_workers` packets per target regardless of rate;
    /// the rate bounds the *platform's* egress).
    pub rate_per_s: u32,
    /// Offset between consecutive workers' probes to the same target, in
    /// milliseconds. The target sees a ping train with this period.
    pub offset_ms: u64,
    /// Probe encoding (per-worker attribution or the §5.1.4 static mode).
    pub encoding: ProbeEncoding,
    /// Simulated day of the measurement.
    pub day: u32,
    /// Deliberate fault schedule for robustness tests (R5); the default
    /// plan is fault-free.
    pub faults: FaultPlan,
    /// Restrict probing to these workers (all workers still capture).
    /// `None` means every worker probes. Used by the single-VP
    /// responsiveness precheck (paper §6 future work).
    pub senders: Option<Vec<u16>>,
    /// Orders per [`ProbeBatch`](crate::worker::ProbeBatch): the
    /// Orchestrator issues `ceil(n_targets / batch_size)` channel sends per
    /// worker instead of one per target. Purely a transport knob — records,
    /// classification and telemetry are bit-identical across batch sizes
    /// (the probe schedule and all RNG draws are keyed on per-probe
    /// coordinates, never on the batching).
    pub batch_size: usize,
    /// Shard count for the hitlist stream: the Orchestrator splits the
    /// hitlist into this many contiguous slices, each streamed by its own
    /// shard with its own per-worker probe sessions and record arena.
    /// Purely a throughput knob — shard assignment is a pure function of
    /// the global target index, fault plans count orders in canonical
    /// (global-index) order, and records are merged into one canonical
    /// multiset, so outputs are bit-identical across shard counts.
    /// Defaults to [`default_shards`].
    pub shards: usize,
    /// Flight-recorder configuration. Disabled by default: the probing hot
    /// path then pays one branch per hook and allocates nothing. When
    /// enabled, targets are sampled by a seeded, prefix-keyed hash, so the
    /// same targets are traced on every rerun and at every batch size.
    pub trace: TraceConfig,
}

impl MeasurementSpec {
    /// A spec with the daily-census defaults: 1 s offsets, per-worker
    /// encoding, 10 k targets/s.
    pub fn census(
        id: u32,
        platform: PlatformId,
        protocol: Protocol,
        targets: Arc<Vec<IpAddr>>,
        day: u32,
    ) -> Self {
        MeasurementSpec {
            id,
            platform,
            protocol,
            targets,
            rate_per_s: 10_000,
            offset_ms: 1_000,
            encoding: ProbeEncoding::PerWorker,
            day,
            faults: FaultPlan::default(),
            senders: None,
            batch_size: DEFAULT_BATCH_SIZE,
            shards: default_shards(),
            trace: TraceConfig::default(),
        }
    }

    /// Start building a spec with the daily-census defaults, validating
    /// the whole definition against a world at
    /// [`build`](MeasurementSpecBuilder::build). Misuse that previously
    /// panicked deep inside the orchestrator (unicast platform,
    /// unattributable worker count) is rejected here, before any thread is
    /// spawned.
    pub fn builder(id: u32, platform: PlatformId) -> MeasurementSpecBuilder {
        MeasurementSpecBuilder {
            spec: MeasurementSpec::census(id, platform, Protocol::Icmp, Arc::new(Vec::new()), 0),
        }
    }

    /// Whether `worker` transmits probes under this spec.
    pub fn is_sender(&self, worker: u16) -> bool {
        self.senders.as_ref().is_none_or(|s| s.contains(&worker))
    }

    /// Window span between the first and last probe a target receives.
    pub fn span_ms(&self, n_workers: usize) -> u64 {
        self.offset_ms * (n_workers.saturating_sub(1)) as u64
    }

    /// Total probes this measurement will send.
    pub fn probe_budget(&self, n_workers: usize) -> u64 {
        self.targets.len() as u64 * n_workers as u64
    }
}

/// Builder for a [`MeasurementSpec`], created by
/// [`MeasurementSpec::builder`]. Starts from the daily-census defaults
/// (ICMP, 10 k targets/s, 1 s offsets, per-worker encoding, no faults) and
/// validates the complete definition at [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct MeasurementSpecBuilder {
    spec: MeasurementSpec,
}

impl MeasurementSpecBuilder {
    /// Set the probing protocol.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.spec.protocol = protocol;
        self
    }

    /// Set the target addresses.
    pub fn targets(mut self, targets: Arc<Vec<IpAddr>>) -> Self {
        self.spec.targets = targets;
        self
    }

    /// Set the hitlist streaming rate (targets per second).
    pub fn rate_per_s(mut self, rate: u32) -> Self {
        self.spec.rate_per_s = rate;
        self
    }

    /// Set the inter-worker probe offset in milliseconds.
    pub fn offset_ms(mut self, offset: u64) -> Self {
        self.spec.offset_ms = offset;
        self
    }

    /// Set the probe encoding.
    pub fn encoding(mut self, encoding: ProbeEncoding) -> Self {
        self.spec.encoding = encoding;
        self
    }

    /// Set the simulated day.
    pub fn day(mut self, day: u32) -> Self {
        self.spec.day = day;
        self
    }

    /// Set the fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.spec.faults = faults;
        self
    }

    /// Restrict probing to these workers (all workers still capture).
    pub fn senders(mut self, senders: Vec<u16>) -> Self {
        self.spec.senders = Some(senders);
        self
    }

    /// Set the probe-batch size (orders per channel send; default
    /// [`DEFAULT_BATCH_SIZE`]). Outputs are invariant in this knob; it only
    /// trades channel overhead against the per-worker in-flight window.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.spec.batch_size = batch_size;
        self
    }

    /// Set the shard count for the hitlist stream (default:
    /// [`default_shards`]). Outputs are invariant in this knob; it only
    /// sets how many slices of the hitlist stream in parallel.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Set the flight-recorder configuration (default: disabled).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.spec.trace = trace;
        self
    }

    /// Validate the definition against `world` and produce the spec.
    ///
    /// # Errors
    ///
    /// * [`MeasurementError::NotAnycast`] — the platform is a unicast VP
    ///   platform;
    /// * [`MeasurementError::WorkerCount`] — worker count outside 1..=64;
    /// * [`MeasurementError::ReservedId`] — the id lies in the precheck id
    ///   space ([`PRECHECK_ID_BIT`]);
    /// * [`MeasurementError::SenderOutOfRange`] — a sender restriction
    ///   names a worker the platform does not have;
    /// * [`MeasurementError::InvalidFaultPlan`] — a fabric rate outside
    ///   [0, 1] or a fault scheduled on a nonexistent worker;
    /// * [`MeasurementError::InvalidBatchSize`] — a batch size of zero;
    /// * [`MeasurementError::InvalidRate`] — a probe rate of zero (no
    ///   schedule window could ever open);
    /// * [`MeasurementError::InvalidShardCount`] — a shard count of zero
    ///   (zero slices cover no hitlist).
    pub fn build(self, world: &World) -> Result<MeasurementSpec, MeasurementError> {
        let spec = self.spec;
        if spec.batch_size == 0 {
            return Err(MeasurementError::InvalidBatchSize { batch_size: 0 });
        }
        if spec.rate_per_s == 0 {
            return Err(MeasurementError::InvalidRate);
        }
        if spec.shards == 0 {
            return Err(MeasurementError::InvalidShardCount);
        }
        let platform = world.platform(spec.platform);
        if !platform.is_anycast() {
            return Err(MeasurementError::NotAnycast {
                platform: spec.platform,
            });
        }
        let n_workers = platform.n_vps();
        if !(1..=64).contains(&n_workers) {
            return Err(MeasurementError::WorkerCount { n_workers });
        }
        if spec.id & PRECHECK_ID_BIT != 0 {
            return Err(MeasurementError::ReservedId { id: spec.id });
        }
        if let Some(senders) = &spec.senders {
            if let Some(&worker) = senders.iter().find(|&&w| usize::from(w) >= n_workers) {
                return Err(MeasurementError::SenderOutOfRange { worker, n_workers });
            }
        }
        if let Some(fabric) = &spec.faults.fabric {
            for (name, rate) in [
                ("drop_rate", fabric.drop_rate),
                ("dup_rate", fabric.dup_rate),
            ] {
                if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                    return Err(MeasurementError::InvalidFaultPlan {
                        detail: format!("fabric {name} {rate} outside [0, 1]"),
                    });
                }
            }
        }
        let fault_workers = spec
            .faults
            .crashes
            .iter()
            .map(|c| c.worker)
            .chain(spec.faults.reject_seal.iter().copied())
            .chain(spec.faults.order_faults.iter().map(|f| f.worker));
        for worker in fault_workers {
            if usize::from(worker) >= n_workers {
                return Err(MeasurementError::InvalidFaultPlan {
                    detail: format!(
                        "fault scheduled on worker {worker}, but the platform has only \
                         workers 0..{n_workers}"
                    ),
                });
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(offset: u64) -> MeasurementSpec {
        let mut s = MeasurementSpec::census(
            1,
            PlatformId(0),
            Protocol::Icmp,
            Arc::new(vec!["10.0.0.1".parse().unwrap(); 10]),
            0,
        );
        s.offset_ms = offset;
        s
    }

    #[test]
    fn span_is_offset_times_gaps() {
        assert_eq!(spec(1_000).span_ms(32), 31_000);
        assert_eq!(spec(0).span_ms(32), 0);
        assert_eq!(spec(780_000).span_ms(32), 24_180_000); // the 13-minute baseline
        assert_eq!(spec(1_000).span_ms(1), 0);
        assert_eq!(spec(1_000).span_ms(0), 0);
    }

    #[test]
    fn probe_budget_counts_workers() {
        assert_eq!(spec(1_000).probe_budget(32), 320);
    }
}

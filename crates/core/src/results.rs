//! Measurement results: the records workers stream back and their
//! aggregation at the CLI.

use laces_netsim::PlatformId;
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// One captured, validated reply.
///
/// This is what a Worker streams to the Orchestrator the moment a reply is
/// captured (R5: workers hold no state; R10: results leave the worker
/// immediately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Census prefix of the responding address.
    pub prefix: PrefixKey,
    /// Protocol of the reply.
    pub protocol: Protocol,
    /// Worker that captured the reply.
    pub rx_worker: u16,
    /// Worker that sent the eliciting probe (decoded from the echoed
    /// metadata; `None` under static encoding).
    pub tx_worker: Option<u16>,
    /// Probe transmit time (echoed), if recoverable.
    pub tx_time_ms: Option<u64>,
    /// Capture time.
    pub rx_time_ms: u64,
    /// CHAOS identity disclosed by the responder, if any.
    pub chaos_identity: Option<String>,
}

impl ProbeRecord {
    /// Round-trip time computed from echoed transmit time, as the real tool
    /// does (`None` when attribution is unavailable).
    pub fn rtt_ms(&self) -> Option<u64> {
        self.tx_time_ms.map(|tx| self.rx_time_ms.saturating_sub(tx))
    }
}

/// Worker lifecycle events interleaved with results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerEvent {
    /// Worker finished its order stream and drained captures.
    Done {
        /// Worker id.
        worker: u16,
        /// Probes it transmitted.
        probes_sent: u64,
    },
    /// Worker disconnected mid-measurement (outage; R5).
    Failed {
        /// Worker id.
        worker: u16,
        /// Probes it transmitted before failing.
        probes_sent: u64,
    },
}

/// Terminal state of one worker within a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerStatus {
    /// The worker processed its whole order stream and drained captures.
    Completed,
    /// The worker disconnected mid-measurement or rejected its start
    /// order; its remaining probes and its captures are lost.
    Failed,
}

/// Per-worker health entry in a [`MeasurementOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerHealth {
    /// Worker id.
    pub worker: u16,
    /// How the worker ended.
    pub status: WorkerStatus,
    /// Probes the worker transmitted.
    pub probes_sent: u64,
}

/// Aggregated outcome of one measurement, as assembled at the CLI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementOutcome {
    /// Measurement id.
    pub measurement_id: u32,
    /// Probing platform.
    pub platform: PlatformId,
    /// Protocol probed.
    pub protocol: Protocol,
    /// Number of workers that started.
    pub n_workers: usize,
    /// Total probes transmitted across workers.
    pub probes_sent: u64,
    /// Number of targets in the hitlist.
    pub n_targets: usize,
    /// Every captured reply, in canonical order (sorted, so equal runs
    /// serialise identically).
    pub records: Vec<ProbeRecord>,
    /// Workers that failed mid-measurement.
    pub failed_workers: Vec<u16>,
    /// Terminal state of every worker, sorted by worker id.
    pub worker_health: Vec<WorkerHealth>,
    /// Whether the measurement ran degraded: at least one worker failed,
    /// or an abort was requested mid-run (even one that landed after the
    /// hitlist had fully streamed — a disconnected CLI makes the run
    /// suspect regardless of how much survived). Consumers (the census
    /// pipeline) publish anyway but must carry the flag forward.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_from_echoed_time() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: Some(1),
            tx_time_ms: Some(100),
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(42));
    }

    #[test]
    fn rtt_unavailable_without_attribution() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: None,
            tx_time_ms: None,
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), None);
    }

    #[test]
    fn rtt_saturates_on_clock_skew() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Tcp,
            rx_worker: 0,
            tx_worker: Some(0),
            tx_time_ms: Some(500),
            rx_time_ms: 400,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(0));
    }
}

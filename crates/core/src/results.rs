//! Measurement results: the records workers stream back and their
//! aggregation at the CLI.

use std::sync::Arc;

use laces_netsim::PlatformId;
use laces_obs::{Degraded, DegradedReason, RunReport};
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// One captured, validated reply.
///
/// This is what a Worker streams to the Orchestrator the moment a reply is
/// captured (R5: workers hold no state; R10: results leave the worker
/// immediately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Census prefix of the responding address.
    pub prefix: PrefixKey,
    /// Protocol of the reply.
    pub protocol: Protocol,
    /// Worker that captured the reply.
    pub rx_worker: u16,
    /// Worker that sent the eliciting probe (decoded from the echoed
    /// metadata; `None` under static encoding).
    pub tx_worker: Option<u16>,
    /// Probe transmit time (echoed), if recoverable.
    pub tx_time_ms: Option<u64>,
    /// Capture time.
    pub rx_time_ms: u64,
    /// CHAOS identity disclosed by the responder, if any. `Arc<str>` so
    /// fabric duplicates and classification share one allocation.
    pub chaos_identity: Option<Arc<str>>,
}

impl ProbeRecord {
    /// Round-trip time computed from echoed transmit time, as the real tool
    /// does (`None` when attribution is unavailable).
    pub fn rtt_ms(&self) -> Option<u64> {
        self.tx_time_ms.map(|tx| self.rx_time_ms.saturating_sub(tx))
    }
}

/// What one worker observed about its own run, carried back to the
/// Orchestrator inside its terminal [`WorkerEvent`]. Every field is a sum
/// of per-probe / per-capture contributions, so the merged totals are
/// independent of thread scheduling (the obs determinism rules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerTelemetry {
    /// Probes the worker transmitted.
    pub probes_sent: u64,
    /// Replies the wire delivered back to the worker's sends.
    pub replies_delivered: u64,
    /// Sends that elicited no delivery (dead target, loss, unroutable).
    pub unanswered: u64,
    /// Deliveries the capture fabric dropped at this worker's send side.
    pub fabric_dropped: u64,
    /// Deliveries the capture fabric duplicated at this worker's send side.
    pub fabric_duplicated: u64,
    /// Validated captures the worker streamed out as records.
    pub records_streamed: u64,
    /// Captures rejected by the filter (other measurements, backscatter).
    pub captures_rejected: u64,
}

/// Why a worker failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFailure {
    /// The worker disconnected mid-measurement (outage; R5).
    Crash,
    /// The worker's start order failed authentication (R8); it never
    /// probed.
    SealRejected,
}

/// Worker lifecycle events interleaved with results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerEvent {
    /// Worker finished its order stream and drained captures.
    Done {
        /// Worker id.
        worker: u16,
        /// What the worker observed.
        telemetry: WorkerTelemetry,
    },
    /// Worker dropped out of the measurement (R5).
    Failed {
        /// Worker id.
        worker: u16,
        /// What the worker observed before failing.
        telemetry: WorkerTelemetry,
        /// Why it failed.
        cause: WorkerFailure,
    },
}

/// Terminal state of one worker within a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerStatus {
    /// The worker processed its whole order stream and drained captures.
    Completed,
    /// The worker disconnected mid-measurement or rejected its start
    /// order; its remaining probes and its captures are lost.
    Failed,
}

/// Per-worker health entry in a [`MeasurementOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerHealth {
    /// Worker id.
    pub worker: u16,
    /// How the worker ended.
    pub status: WorkerStatus,
    /// Probes the worker transmitted.
    pub probes_sent: u64,
}

/// Aggregated outcome of one measurement, as assembled at the CLI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementOutcome {
    /// Measurement id.
    pub measurement_id: u32,
    /// Probing platform.
    pub platform: PlatformId,
    /// Protocol probed.
    pub protocol: Protocol,
    /// Number of workers that started.
    pub n_workers: usize,
    /// Total probes transmitted across workers.
    pub probes_sent: u64,
    /// Number of targets in the hitlist.
    pub n_targets: usize,
    /// Every captured reply, in canonical order (sorted, so equal runs
    /// serialise identically).
    pub records: Vec<ProbeRecord>,
    /// Workers that failed mid-measurement.
    pub failed_workers: Vec<u16>,
    /// Terminal state of every worker, sorted by worker id.
    pub worker_health: Vec<WorkerHealth>,
    /// Everything the run observed about itself: per-worker and aggregate
    /// counters, the RTT distribution, stage timing on the simulated
    /// clock, and the typed degradation events (worker failures, seal
    /// rejections, mid-stream aborts). Replaces PR 1's `degraded: bool`;
    /// the bool is now derived via [`MeasurementOutcome::is_degraded`].
    /// Consumers (the census pipeline) publish degraded runs anyway but
    /// must carry the reasons forward.
    pub telemetry: RunReport,
    /// The flight recorder's causal event log for this measurement
    /// (empty and disabled unless the spec enabled tracing). Feed it to
    /// [`laces_trace::TraceReport::explain`] to justify a verdict.
    pub trace_report: laces_trace::TraceReport,
}

impl MeasurementOutcome {
    /// Whether the measurement ran degraded: at least one worker failed,
    /// or an abort was requested mid-run (even one that landed after the
    /// hitlist had fully streamed — a disconnected CLI makes the run
    /// suspect regardless of how much survived).
    pub fn is_degraded(&self) -> bool {
        self.telemetry.is_degraded()
    }

    /// The typed events that degraded this measurement.
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

impl Degraded for MeasurementOutcome {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_from_echoed_time() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: Some(1),
            tx_time_ms: Some(100),
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(42));
    }

    #[test]
    fn rtt_unavailable_without_attribution() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: None,
            tx_time_ms: None,
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), None);
    }

    #[test]
    fn rtt_saturates_on_clock_skew() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Tcp,
            rx_worker: 0,
            tx_worker: Some(0),
            tx_time_ms: Some(500),
            rx_time_ms: 400,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(0));
    }
}

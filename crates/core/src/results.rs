//! Measurement results: the records workers stream back and their
//! aggregation at the CLI.

use std::sync::Arc;

use laces_netsim::PlatformId;
use laces_obs::{Degraded, DegradedReason, RunReport};
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// One captured, validated reply.
///
/// This is what a Worker streams to the Orchestrator the moment a reply is
/// captured (R5: workers hold no state; R10: results leave the worker
/// immediately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Census prefix of the responding address.
    pub prefix: PrefixKey,
    /// Protocol of the reply.
    pub protocol: Protocol,
    /// Worker that captured the reply.
    pub rx_worker: u16,
    /// Worker that sent the eliciting probe (decoded from the echoed
    /// metadata; `None` under static encoding).
    pub tx_worker: Option<u16>,
    /// Probe transmit time (echoed), if recoverable.
    pub tx_time_ms: Option<u64>,
    /// Capture time.
    pub rx_time_ms: u64,
    /// CHAOS identity disclosed by the responder, if any. `Arc<str>` so
    /// fabric duplicates and classification share one allocation.
    pub chaos_identity: Option<Arc<str>>,
}

impl ProbeRecord {
    /// Round-trip time computed from echoed transmit time, as the real tool
    /// does (`None` when attribution is unavailable).
    pub fn rtt_ms(&self) -> Option<u64> {
        self.tx_time_ms.map(|tx| self.rx_time_ms.saturating_sub(tx))
    }
}

/// Shard-local accumulation of in-flight [`ProbeRecord`]s.
///
/// Each shard of the sharded stream pushes the records its deliveries
/// produce into its own arena — no locks, no per-record channel sends, no
/// cross-shard sharing — and the Orchestrator merges all arenas exactly
/// once at seal time into the canonical record vector. The merge
/// pre-reserves the exact total, so a census-day's millions of in-flight
/// records cost one allocation per arena growth plus one final buffer
/// instead of per-record channel traffic.
///
/// The canonical output is a *sorted multiset*, so neither the shard
/// order of the merge nor the within-arena order can show in the outcome.
#[derive(Debug, Default)]
pub struct RecordArena {
    records: Vec<ProbeRecord>,
}

impl RecordArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pre-sized for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        RecordArena {
            records: Vec::with_capacity(n),
        }
    }

    /// Append one record.
    #[inline]
    pub fn push(&mut self, record: ProbeRecord) {
        self.records.push(record);
    }

    /// Records accumulated so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merge shard arenas into one record vector (a multiset — the caller
    /// applies the canonical sort). The largest arena donates its buffer,
    /// so the merge moves only the smaller shards' records.
    pub fn merge(arenas: Vec<RecordArena>) -> Vec<ProbeRecord> {
        let total: usize = arenas.iter().map(RecordArena::len).sum();
        let base_at = arenas
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.len())
            .map(|(i, _)| i);
        let mut base = Vec::new();
        let mut rest = Vec::with_capacity(arenas.len());
        for (i, arena) in arenas.into_iter().enumerate() {
            if Some(i) == base_at {
                base = arena.records;
            } else {
                rest.push(arena.records);
            }
        }
        base.reserve_exact(total.saturating_sub(base.len()));
        for records in rest {
            base.extend(records);
        }
        base
    }
}

/// What one worker observed about its own run, carried back to the
/// Orchestrator inside its terminal [`WorkerEvent`]. Every field is a sum
/// of per-probe / per-capture contributions, so the merged totals are
/// independent of thread scheduling (the obs determinism rules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerTelemetry {
    /// Probes the worker transmitted.
    pub probes_sent: u64,
    /// Replies the wire delivered back to the worker's sends.
    pub replies_delivered: u64,
    /// Sends that elicited no delivery (dead target, loss, unroutable).
    pub unanswered: u64,
    /// Deliveries the capture fabric dropped at this worker's send side.
    pub fabric_dropped: u64,
    /// Deliveries the capture fabric duplicated at this worker's send side.
    pub fabric_duplicated: u64,
    /// Validated captures the worker streamed out as records.
    pub records_streamed: u64,
    /// Captures rejected by the filter (other measurements, backscatter).
    pub captures_rejected: u64,
}

/// Why a worker failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFailure {
    /// The worker disconnected mid-measurement (outage; R5).
    Crash,
    /// The worker's start order failed authentication (R8); it never
    /// probed.
    SealRejected,
}

/// Worker lifecycle events interleaved with results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerEvent {
    /// Worker finished its order stream and drained captures.
    Done {
        /// Worker id.
        worker: u16,
        /// What the worker observed.
        telemetry: WorkerTelemetry,
    },
    /// Worker dropped out of the measurement (R5).
    Failed {
        /// Worker id.
        worker: u16,
        /// What the worker observed before failing.
        telemetry: WorkerTelemetry,
        /// Why it failed.
        cause: WorkerFailure,
    },
}

/// Terminal state of one worker within a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerStatus {
    /// The worker processed its whole order stream and drained captures.
    Completed,
    /// The worker disconnected mid-measurement or rejected its start
    /// order; its remaining probes and its captures are lost.
    Failed,
}

/// Per-worker health entry in a [`MeasurementOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerHealth {
    /// Worker id.
    pub worker: u16,
    /// How the worker ended.
    pub status: WorkerStatus,
    /// Probes the worker transmitted.
    pub probes_sent: u64,
}

/// Aggregated outcome of one measurement, as assembled at the CLI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementOutcome {
    /// Measurement id.
    pub measurement_id: u32,
    /// Probing platform.
    pub platform: PlatformId,
    /// Protocol probed.
    pub protocol: Protocol,
    /// Number of workers that started.
    pub n_workers: usize,
    /// Total probes transmitted across workers.
    pub probes_sent: u64,
    /// Number of targets in the hitlist.
    pub n_targets: usize,
    /// Every captured reply, in canonical order (sorted, so equal runs
    /// serialise identically).
    pub records: Vec<ProbeRecord>,
    /// Workers that failed mid-measurement.
    pub failed_workers: Vec<u16>,
    /// Terminal state of every worker, sorted by worker id.
    pub worker_health: Vec<WorkerHealth>,
    /// Everything the run observed about itself: per-worker and aggregate
    /// counters, the RTT distribution, stage timing on the simulated
    /// clock, and the typed degradation events (worker failures, seal
    /// rejections, mid-stream aborts). Replaces PR 1's `degraded: bool`;
    /// the bool is now derived via [`MeasurementOutcome::is_degraded`].
    /// Consumers (the census pipeline) publish degraded runs anyway but
    /// must carry the reasons forward.
    pub telemetry: RunReport,
    /// Shard-layout diagnostics: per-shard stage timings (slice bounds,
    /// probe counts, sim-clock spans) for the sharded hitlist stream.
    /// Unlike [`telemetry`](MeasurementOutcome::telemetry), this report
    /// depends on `spec.shards` — one child stage per shard — so it is
    /// excluded from the cross-shard-count invariance contract (and from
    /// it alone; it is still bit-identical across reruns at a fixed shard
    /// count).
    pub shard_report: RunReport,
    /// The flight recorder's causal event log for this measurement
    /// (empty and disabled unless the spec enabled tracing). Feed it to
    /// [`laces_trace::TraceReport::explain`] to justify a verdict.
    pub trace_report: laces_trace::TraceReport,
}

impl MeasurementOutcome {
    /// Whether the measurement ran degraded: at least one worker failed,
    /// or an abort was requested mid-run (even one that landed after the
    /// hitlist had fully streamed — a disconnected CLI makes the run
    /// suspect regardless of how much survived).
    pub fn is_degraded(&self) -> bool {
        self.telemetry.is_degraded()
    }

    /// The typed events that degraded this measurement.
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

impl Degraded for MeasurementOutcome {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_merge_preserves_the_multiset() {
        let rec = |rx: u16, t: u64| ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: rx,
            tx_worker: Some(0),
            tx_time_ms: Some(0),
            rx_time_ms: t,
            chaos_identity: None,
        };
        let mut a = RecordArena::new();
        let mut b = RecordArena::with_capacity(4);
        let c = RecordArena::new();
        a.push(rec(0, 1));
        b.push(rec(1, 2));
        b.push(rec(1, 2)); // fabric duplicate: multiset keeps both
        b.push(rec(2, 3));
        assert_eq!(a.len(), 1);
        assert!(!b.is_empty());
        assert!(c.is_empty());
        let mut merged = RecordArena::merge(vec![a, b, c]);
        assert_eq!(merged.len(), 4);
        merged.sort_unstable_by_key(|r| (r.rx_worker, r.rx_time_ms));
        let keys: Vec<(u16, u64)> = merged.iter().map(|r| (r.rx_worker, r.rx_time_ms)).collect();
        assert_eq!(keys, vec![(0, 1), (1, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn rtt_from_echoed_time() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: Some(1),
            tx_time_ms: Some(100),
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(42));
    }

    #[test]
    fn rtt_unavailable_without_attribution() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Icmp,
            rx_worker: 3,
            tx_worker: None,
            tx_time_ms: None,
            rx_time_ms: 142,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), None);
    }

    #[test]
    fn rtt_saturates_on_clock_skew() {
        let r = ProbeRecord {
            prefix: PrefixKey::of("10.0.0.1".parse().unwrap()),
            protocol: Protocol::Tcp,
            rx_worker: 0,
            tx_worker: Some(0),
            tx_time_ms: Some(500),
            rx_time_ms: 400,
            chaos_identity: None,
        };
        assert_eq!(r.rtt_ms(), Some(0));
    }
}

//! The Worker component.
//!
//! A Worker runs at one site of the anycast measurement platform. It
//! receives a sealed start order, then a stream of probe orders from the
//! Orchestrator; for each order it transmits one probe at its scheduled
//! offset. Replies captured at its site (which may answer *other* workers'
//! probes — that is the whole point of the methodology) are validated
//! against the measurement id and streamed back as [`ProbeRecord`]s
//! immediately, so a worker holds neither the hitlist nor results (R10) and
//! its loss costs only its own captures (R5).

use std::net::IpAddr;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender, TrySendError};
use laces_netsim::wire::{CaptureFaults, FabricStats, FabricVerdict, MeasurementCtx, ProbeSource};
use laces_netsim::{Delivery, PlatformId, WireStats, World};
use laces_obs::Counter;
use laces_packet::probe::{build_probe, parse_reply, ProbeMeta};
use laces_packet::{PrefixKey, ProbeEncoding, Protocol};
use serde::{Deserialize, Serialize};

use crate::auth::{AuthKey, Sealed};
use crate::results::{ProbeRecord, WorkerEvent, WorkerFailure, WorkerTelemetry};

/// The sealed instruction that starts a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StartOrder {
    /// Measurement id to embed and filter on.
    pub measurement_id: u32,
    /// Platform this worker belongs to.
    pub platform: PlatformId,
    /// This worker's site index.
    pub worker_id: u16,
    /// Protocol to probe.
    pub protocol: Protocol,
    /// Probe encoding.
    pub encoding: ProbeEncoding,
    /// Inter-worker offset in milliseconds.
    pub offset_ms: u64,
    /// Window span (`(n_workers-1) * offset`).
    pub span_ms: u64,
    /// Simulated day.
    pub day: u32,
    /// Source address this worker probes from (the platform's anycast
    /// address for the target family).
    pub src_addr: IpAddr,
    /// Fault injection: stop after this many orders.
    pub fail_after: Option<usize>,
    /// Fault injection: capture-fabric drop/duplication model applied when
    /// this worker forwards deliveries into the fabric.
    pub fabric_faults: Option<CaptureFaults>,
}

/// One probe order: a target and the window start assigned by the
/// Orchestrator's rate-controlled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOrder {
    /// Target address.
    pub target: IpAddr,
    /// Virtual time at which worker 0 probes this target.
    pub window_start_ms: u64,
}

/// Messages a worker emits toward the Orchestrator/CLI.
#[derive(Debug, Clone)]
pub enum WorkerOut {
    /// A validated capture.
    Record(ProbeRecord),
    /// Lifecycle event.
    Event(WorkerEvent),
}

/// Errors that prevent a worker from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The start order's authentication tag did not verify (R8).
    BadAuth,
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::BadAuth => write!(f, "start order failed authentication"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Run a worker to completion.
///
/// * `orders` — probe orders from the Orchestrator; channel close ends the
///   probing phase.
/// * `captures` — replies the wire delivers to this site (fed by all
///   workers' sends); channel close (every peer finished) ends the capture
///   phase.
/// * `fabric` — capture senders toward every worker, indexed by site.
/// * `out` — stream of records and lifecycle events toward the CLI.
pub fn run_worker(
    world: &Arc<World>,
    key: AuthKey,
    start: Sealed<StartOrder>,
    orders: Receiver<ProbeOrder>,
    captures: Receiver<Delivery>,
    fabric: Vec<Sender<Delivery>>,
    out: Sender<WorkerOut>,
) -> Result<(), WorkerError> {
    let start = start.open(key).ok_or(WorkerError::BadAuth)?;
    let ctx = MeasurementCtx {
        id: start.measurement_id,
        day: start.day,
        span_ms: start.span_ms,
    };
    let source = ProbeSource::Worker {
        platform: start.platform,
        site: start.worker_id as usize,
    };

    // Worker-local telemetry: the wire and fabric stats observe sends, the
    // capture counters observe the filter. All are order-independent sums,
    // so the totals carried back to the Orchestrator are deterministic.
    let wire_stats = WireStats::new();
    let fabric_stats = FabricStats::new();
    let records_streamed = Counter::new();
    let captures_rejected = Counter::new();

    let mut failed = false;
    // A worker scheduled to crash defers all capture draining: which
    // captures a dying worker managed to flush before the crash is a
    // thread-scheduling race in the real system, and modelling it as "none"
    // is the only choice that keeps outcomes bit-identical across reruns of
    // the same fault plan. If the order stream ends before the crash point
    // is reached, the worker survives and drains everything in the final
    // phase (the capture channel is unbounded, so nothing was lost).
    let doomed = start.fail_after.is_some();

    let process_capture = |d: Delivery, out: &Sender<WorkerOut>| {
        // Validate the capture belongs to this measurement; anything else
        // (other measurements, backscatter) is dropped exactly as the real
        // capture filter drops it.
        if let Ok(info) = parse_reply(&d.packet, start.measurement_id, d.rx_time_ms) {
            let record = ProbeRecord {
                prefix: PrefixKey::of(d.packet.src),
                protocol: info.protocol,
                rx_worker: start.worker_id,
                tx_worker: info.tx_worker,
                tx_time_ms: info.tx_time_ms,
                rx_time_ms: d.rx_time_ms,
                chaos_identity: info.chaos_identity,
            };
            records_streamed.inc();
            let _ = out.send(WorkerOut::Record(record));
        } else {
            captures_rejected.inc();
        }
    };

    // Probing phase: interleave order processing with opportunistic capture
    // draining (results stream out while probing is still under way).
    let mut processed_orders = 0usize;
    for (processed, order) in orders.iter().enumerate() {
        if start.fail_after.is_some_and(|limit| processed >= limit) {
            failed = true;
            break;
        }
        processed_orders += 1;

        let tx_time = order.window_start_ms + start.offset_ms * u64::from(start.worker_id);
        let meta = ProbeMeta {
            measurement_id: start.measurement_id,
            worker_id: start.worker_id,
            tx_time_ms: tx_time,
        };
        let pkt = build_probe(
            start.src_addr,
            order.target,
            start.protocol,
            &meta,
            start.encoding,
        );
        if let Ok(Some(delivery)) = world.send_probe_observed(
            source,
            &pkt,
            tx_time,
            order.window_start_ms,
            &ctx,
            &wire_stats,
        ) {
            let verdict = start.fabric_faults.map_or(FabricVerdict::Deliver, |f| {
                f.verdict_observed(&delivery, &fabric_stats)
            });
            if verdict != FabricVerdict::Drop {
                let rx = delivery.rx_index;
                if let Some(s) = fabric.get(rx) {
                    if verdict == FabricVerdict::Duplicate {
                        forward(s, delivery.clone());
                    }
                    forward(s, delivery);
                }
            }
        }

        if !doomed {
            while let Ok(d) = captures.try_recv() {
                process_capture(d, &out);
            }
        }
    }

    // "Crash after N orders" fires once the worker has processed N orders,
    // even when the stream closed right at that point rather than
    // delivering an N+1-th order (otherwise a crash scheduled exactly at
    // the end of the hitlist would silently never happen).
    if !failed
        && start
            .fail_after
            .is_some_and(|limit| processed_orders >= limit)
    {
        failed = true;
    }

    // A failed worker vanishes: it neither probes nor captures further.
    drop(fabric);
    let telemetry = |records_streamed: u64, captures_rejected: u64| WorkerTelemetry {
        probes_sent: wire_stats.probes.get(),
        replies_delivered: wire_stats.deliveries.get(),
        unanswered: wire_stats.unanswered.get(),
        fabric_dropped: fabric_stats.dropped.get(),
        fabric_duplicated: fabric_stats.duplicated.get(),
        records_streamed,
        captures_rejected,
    };
    if failed {
        let _ = out.send(WorkerOut::Event(WorkerEvent::Failed {
            worker: start.worker_id,
            telemetry: telemetry(records_streamed.get(), captures_rejected.get()),
            cause: WorkerFailure::Crash,
        }));
        return Ok(());
    }

    // Capture phase: drain until every worker has dropped its senders.
    for d in captures.iter() {
        process_capture(d, &out);
    }
    let _ = out.send(WorkerOut::Event(WorkerEvent::Done {
        worker: start.worker_id,
        telemetry: telemetry(records_streamed.get(), captures_rejected.get()),
    }));
    Ok(())
}

/// Forward a delivery into a site's capture queue. A send can only fail if
/// the receiving worker crashed; the reply is then lost with it, like
/// packets to a dead site.
fn forward(s: &Sender<Delivery>, d: Delivery) {
    match s.try_send(d) {
        Ok(()) | Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(d)) => {
            let _ = s.send(d);
        }
    }
}

//! The Worker component.
//!
//! A Worker runs at one site of the anycast measurement platform. It
//! receives a sealed start order, then a stream of probe batches from the
//! Orchestrator; for each order it transmits one probe at its scheduled
//! offset. Replies captured at its site (which may answer *other* workers'
//! probes — that is the whole point of the methodology) are validated
//! against the measurement id and streamed back as [`ProbeRecord`]s in
//! small batches, so a worker holds neither the hitlist nor results (R10)
//! and its loss costs only its own captures (R5).
//!
//! The hot path is allocation-lean: the worker resolves its route handles
//! once into a [`ProbeSession`], builds probe bytes into a reused buffer
//! pool, and hands whole batches to [`World::send_probe_batch`] — no lock
//! acquisition and no fresh allocation per probe in steady state. Batching
//! is purely a transport concern: the probe schedule, every RNG draw, and
//! all telemetry totals are keyed on per-order coordinates, so outputs are
//! bit-identical across batch sizes.

use std::net::IpAddr;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender, TrySendError};
use laces_netsim::wire::{
    BatchProbe, CaptureFaults, FabricStats, FabricVerdict, MeasurementCtx, ProbeSource,
};
use laces_netsim::{Delivery, PlatformId, WireStats, World};
use laces_obs::Counter;
use laces_packet::probe::{build_probe_into, parse_reply, ProbeMeta};
use laces_packet::{PacketError, PrefixKey, ProbeEncoding, Protocol};
use laces_trace::{Component, FabricFaultKind, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

use crate::auth::{AuthKey, Sealed};
use crate::results::{ProbeRecord, WorkerEvent, WorkerFailure, WorkerTelemetry};

/// How many validated records a worker accumulates before flushing a
/// [`WorkerOut::Records`] batch to the Orchestrator. Purely a transport
/// knob (the aggregate record multiset is batch-independent); kept
/// internal because nothing observable depends on it.
const RECORD_FLUSH: usize = 256;

/// The sealed instruction that starts a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StartOrder {
    /// Measurement id to embed and filter on.
    pub measurement_id: u32,
    /// Platform this worker belongs to.
    pub platform: PlatformId,
    /// This worker's site index.
    pub worker_id: u16,
    /// Protocol to probe.
    pub protocol: Protocol,
    /// Probe encoding.
    pub encoding: ProbeEncoding,
    /// Inter-worker offset in milliseconds.
    pub offset_ms: u64,
    /// Window span (`(n_workers-1) * offset`).
    pub span_ms: u64,
    /// Simulated day.
    pub day: u32,
    /// Source address this worker probes from (the platform's anycast
    /// address for the target family).
    pub src_addr: IpAddr,
    /// Fault injection: stop after this many orders.
    pub fail_after: Option<usize>,
    /// Fault injection: capture-fabric drop/duplication model applied when
    /// this worker forwards deliveries into the fabric.
    pub fabric_faults: Option<CaptureFaults>,
}

/// One probe order: a target and the window start assigned by the
/// Orchestrator's rate-controlled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOrder {
    /// Target address.
    pub target: IpAddr,
    /// Virtual time at which worker 0 probes this target.
    pub window_start_ms: u64,
}

/// A batch of probe orders: one channel send from the Orchestrator carries
/// up to `spec.batch_size` orders, so streaming a hitlist of `n` targets
/// costs `ceil(n / batch_size)` sends per worker instead of `n`.
///
/// Fault semantics stay per-*order*: a crash scheduled after N orders fires
/// mid-batch exactly where it would have fired in an unbatched stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeBatch {
    /// The orders, in schedule order.
    pub orders: Vec<ProbeOrder>,
}

/// Messages a worker emits toward the Orchestrator/CLI.
#[derive(Debug, Clone)]
pub enum WorkerOut {
    /// A batch of validated captures. The Orchestrator merges batches
    /// order-independently (records are canonically re-sorted), so the
    /// flush granularity never shows in the outcome.
    Records(Vec<ProbeRecord>),
    /// Lifecycle event.
    Event(WorkerEvent),
}

/// Errors that prevent a worker from starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The start order's authentication tag did not verify (R8).
    BadAuth,
    /// The wire rejected a probe batch as malformed. Structurally
    /// unreachable for probes built by `build_probe_into`, but the error
    /// is propagated rather than discarded: a worker that somehow hands
    /// the wire garbage fails loudly and the platform degrades, instead
    /// of silently losing its probes.
    Wire(PacketError),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::BadAuth => write!(f, "start order failed authentication"),
            WorkerError::Wire(e) => write!(f, "wire rejected a probe batch: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Validate one capture and buffer the record (flushed in batches by the
/// caller). Anything that is not a reply to this measurement (other
/// measurements, backscatter) is dropped exactly as the real capture
/// filter drops it.
fn process_capture(
    d: &Delivery,
    measurement_id: u32,
    rx_worker: u16,
    records: &mut Vec<ProbeRecord>,
    records_streamed: &Counter,
    captures_rejected: &Counter,
    tracer: &Tracer,
) {
    let prefix = PrefixKey::of(d.packet.src);
    if let Ok(info) = parse_reply(&d.packet, measurement_id, d.rx_time_ms) {
        tracer.record_for(Component::Capture, prefix, || TraceEvent::Captured {
            prefix,
            rx_worker,
            rx_time_ms: d.rx_time_ms,
            accepted: true,
            chaos_identity: info.chaos_identity.as_deref().map(str::to_string),
        });
        records.push(ProbeRecord {
            prefix,
            protocol: info.protocol,
            rx_worker,
            tx_worker: info.tx_worker,
            tx_time_ms: info.tx_time_ms,
            rx_time_ms: d.rx_time_ms,
            chaos_identity: info.chaos_identity,
        });
        records_streamed.inc();
    } else {
        tracer.record_for(Component::Capture, prefix, || TraceEvent::Captured {
            prefix,
            rx_worker,
            rx_time_ms: d.rx_time_ms,
            accepted: false,
            chaos_identity: None,
        });
        captures_rejected.inc();
    }
}

/// Flush buffered records as one [`WorkerOut::Records`] batch.
fn flush_records(records: &mut Vec<ProbeRecord>, out: &Sender<WorkerOut>) {
    if !records.is_empty() {
        // laces-lint: allow(discarded-fallibility) — send fails only when the CLI aborted and closed the out channel; dropping the batch is the designed wind-down (R3: no work after abort)
        let _ = out.send(WorkerOut::Records(std::mem::take(records)));
    }
}

/// Run a worker to completion.
///
/// * `orders` — probe-order batches from the Orchestrator; channel close
///   ends the probing phase.
/// * `captures` — reply batches the wire delivers to this site (fed by all
///   workers' sends); channel close (every peer finished) ends the capture
///   phase.
/// * `fabric` — capture senders toward every worker, indexed by site.
/// * `out` — stream of record batches and lifecycle events toward the CLI.
/// * `tracer` — flight recorder for probe-lifecycle events; pass
///   [`Tracer::disabled`] to record nothing (one branch per hook).
#[allow(clippy::too_many_arguments)]
pub fn run_worker(
    world: &Arc<World>,
    key: AuthKey,
    start: Sealed<StartOrder>,
    orders: Receiver<ProbeBatch>,
    captures: Receiver<Vec<Delivery>>,
    fabric: Vec<Sender<Vec<Delivery>>>,
    out: Sender<WorkerOut>,
    tracer: Tracer,
) -> Result<(), WorkerError> {
    let start = start.open(key).ok_or(WorkerError::BadAuth)?;
    let ctx = MeasurementCtx {
        id: start.measurement_id,
        day: start.day,
        span_ms: start.span_ms,
    };
    let source = ProbeSource::Worker {
        platform: start.platform,
        site: start.worker_id as usize,
    };
    // Resolve the per-worker route handles once, at start-order time: the
    // probing loop below never touches the world's route cache lock.
    let mut session = world.probe_session(source);
    session.attach_tracer(tracer.clone());

    // Worker-local telemetry: the wire and fabric stats observe sends, the
    // capture counters observe the filter. All are order-independent sums,
    // so the totals carried back to the Orchestrator are deterministic.
    let wire_stats = WireStats::new();
    let fabric_stats = FabricStats::new();
    let records_streamed = Counter::new();
    let captures_rejected = Counter::new();

    let mut failed = false;
    // A worker scheduled to crash defers all capture draining: which
    // captures a dying worker managed to flush before the crash is a
    // thread-scheduling race in the real system, and modelling it as "none"
    // is the only choice that keeps outcomes bit-identical across reruns of
    // the same fault plan. If the order stream ends before the crash point
    // is reached, the worker survives and drains everything in the final
    // phase (the capture channel is unbounded, so nothing was lost).
    let doomed = start.fail_after.is_some();

    // Reused across batches: probe byte buffers (one per order slot),
    // the wire's delivery output, per-site fabric accumulators, and the
    // outgoing record buffer. Steady state allocates nothing per probe.
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut pending: Vec<Vec<Delivery>> = fabric.iter().map(|_| Vec::new()).collect();
    let mut records: Vec<ProbeRecord> = Vec::new();

    // Probing phase: interleave batch processing with opportunistic capture
    // draining (results stream out while probing is still under way).
    let mut processed_orders = 0usize;
    for batch in orders.iter() {
        // "Crash after N orders" counts *orders*, not batches: truncate the
        // batch at the crash point so the worker dies exactly where it
        // would have in an unbatched stream.
        let take = match start.fail_after {
            Some(limit) => {
                let remaining = limit.saturating_sub(processed_orders);
                if remaining < batch.orders.len() {
                    failed = true;
                }
                remaining.min(batch.orders.len())
            }
            None => batch.orders.len(),
        };

        if take > 0 {
            if pool.len() < take {
                pool.resize_with(take, Vec::new);
            }
            let tx_offset = start.offset_ms * u64::from(start.worker_id);
            for (order, buf) in batch.orders[..take].iter().zip(pool.iter_mut()) {
                let prefix = PrefixKey::of(order.target);
                tracer.record_for(Component::Worker, prefix, || TraceEvent::ProbeSent {
                    prefix,
                    worker: start.worker_id,
                    tx_time_ms: order.window_start_ms + tx_offset,
                });
                let meta = ProbeMeta {
                    measurement_id: start.measurement_id,
                    worker_id: start.worker_id,
                    tx_time_ms: order.window_start_ms + tx_offset,
                };
                build_probe_into(
                    start.src_addr,
                    order.target,
                    start.protocol,
                    &meta,
                    start.encoding,
                    buf,
                );
            }
            let probes: Vec<BatchProbe<'_>> = batch.orders[..take]
                .iter()
                .zip(pool.iter())
                .map(|(order, bytes)| BatchProbe {
                    dst: order.target,
                    bytes,
                    tx_time_ms: order.window_start_ms + tx_offset,
                    window_start_ms: order.window_start_ms,
                    // The threaded pipeline keeps the full byte round-trip:
                    // it is the process-shaped reference the zero-copy
                    // sharded path is validated against.
                    meta: None,
                })
                .collect();
            world
                .send_probe_batch(
                    &mut session,
                    start.src_addr,
                    start.protocol,
                    &probes,
                    &ctx,
                    &wire_stats,
                    &mut deliveries,
                )
                .map_err(WorkerError::Wire)?;
            processed_orders += take;

            for delivery in deliveries.drain(..) {
                let verdict = start.fabric_faults.map_or(FabricVerdict::Deliver, |f| {
                    f.verdict_observed(&delivery, &fabric_stats)
                });
                if verdict != FabricVerdict::Deliver {
                    // Only faults are recorded: a reply with no FabricFault
                    // event passed through the fabric untouched.
                    let prefix = PrefixKey::of(delivery.packet.src);
                    tracer.record_for(Component::Fabric, prefix, || TraceEvent::FabricFault {
                        prefix,
                        tx_worker: start.worker_id,
                        rx_worker: u16::try_from(delivery.rx_index).unwrap_or(u16::MAX),
                        rx_time_ms: delivery.rx_time_ms,
                        kind: if verdict == FabricVerdict::Drop {
                            FabricFaultKind::Dropped
                        } else {
                            FabricFaultKind::Duplicated
                        },
                    });
                }
                if verdict == FabricVerdict::Drop {
                    continue;
                }
                let rx = delivery.rx_index;
                if rx == usize::from(start.worker_id) && rx < fabric.len() && !doomed {
                    // Self-delivery: this worker is its own capture site, so
                    // skip the fabric round-trip and validate in place.
                    if verdict == FabricVerdict::Duplicate {
                        process_capture(
                            &delivery,
                            start.measurement_id,
                            start.worker_id,
                            &mut records,
                            &records_streamed,
                            &captures_rejected,
                            &tracer,
                        );
                    }
                    process_capture(
                        &delivery,
                        start.measurement_id,
                        start.worker_id,
                        &mut records,
                        &records_streamed,
                        &captures_rejected,
                        &tracer,
                    );
                } else if let Some(p) = pending.get_mut(rx) {
                    if verdict == FabricVerdict::Duplicate {
                        p.push(delivery.clone());
                    }
                    p.push(delivery);
                }
            }
            // One fabric send per (batch, receiving site) with captures.
            for (p, s) in pending.iter_mut().zip(&fabric) {
                if !p.is_empty() {
                    forward(s, std::mem::take(p));
                }
            }
        }

        if failed {
            break;
        }
        if !doomed {
            while let Ok(caps) = captures.try_recv() {
                for d in &caps {
                    process_capture(
                        d,
                        start.measurement_id,
                        start.worker_id,
                        &mut records,
                        &records_streamed,
                        &captures_rejected,
                        &tracer,
                    );
                }
            }
        }
        if records.len() >= RECORD_FLUSH {
            flush_records(&mut records, &out);
        }
    }

    // "Crash after N orders" fires once the worker has processed N orders,
    // even when the stream closed right at that point rather than
    // delivering an N+1-th order (otherwise a crash scheduled exactly at
    // the end of the hitlist would silently never happen).
    if !failed
        && start
            .fail_after
            .is_some_and(|limit| processed_orders >= limit)
    {
        failed = true;
    }

    // A failed worker vanishes: it neither probes nor captures further.
    drop(fabric);
    let telemetry = |records_streamed: u64, captures_rejected: u64| WorkerTelemetry {
        probes_sent: wire_stats.probes.get(),
        replies_delivered: wire_stats.deliveries.get(),
        unanswered: wire_stats.unanswered.get(),
        fabric_dropped: fabric_stats.dropped.get(),
        fabric_duplicated: fabric_stats.duplicated.get(),
        records_streamed,
        captures_rejected,
    };
    if failed {
        flush_records(&mut records, &out);
        // laces-lint: allow(discarded-fallibility) — lifecycle event on a channel the aborting CLI may already have closed; the failure is also visible through the worker's silence
        let _ = out.send(WorkerOut::Event(WorkerEvent::Failed {
            worker: start.worker_id,
            telemetry: telemetry(records_streamed.get(), captures_rejected.get()),
            cause: WorkerFailure::Crash,
        }));
        return Ok(());
    }

    // Capture phase: drain until every worker has dropped its senders.
    for caps in captures.iter() {
        for d in &caps {
            process_capture(
                d,
                start.measurement_id,
                start.worker_id,
                &mut records,
                &records_streamed,
                &captures_rejected,
                &tracer,
            );
        }
        if records.len() >= RECORD_FLUSH {
            flush_records(&mut records, &out);
        }
    }
    flush_records(&mut records, &out);
    // laces-lint: allow(discarded-fallibility) — lifecycle event on a channel the aborting CLI may already have closed; a lost Done only matters to a consumer that chose to stop listening
    let _ = out.send(WorkerOut::Event(WorkerEvent::Done {
        worker: start.worker_id,
        telemetry: telemetry(records_streamed.get(), captures_rejected.get()),
    }));
    Ok(())
}

/// Forward a capture batch into a site's queue. A send can only fail if
/// the receiving worker crashed; the replies are then lost with it, like
/// packets to a dead site.
fn forward(s: &Sender<Vec<Delivery>>, d: Vec<Delivery>) {
    match s.try_send(d) {
        Ok(()) | Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(d)) => {
            // laces-lint: allow(discarded-fallibility) — a failed send means the receiving worker crashed between try_send and send; its replies are lost with it, like packets to a dead site
            let _ = s.send(d);
        }
    }
}

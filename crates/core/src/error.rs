//! Typed errors for the measurement API.
//!
//! PR 1's entry points panicked on misuse (`assert!(platform.is_anycast())`)
//! — acceptable for a prototype, wrong for a library the census pipeline
//! and external callers build on. Every `run_*` entry point now returns
//! `Result<_, MeasurementError>`, and [`MeasurementSpec::builder`]
//! (crate::spec::MeasurementSpec::builder) surfaces the same variants at
//! construction time, before any thread is spawned.

use laces_netsim::PlatformId;

/// Why a measurement could not run (or a spec could not be built). These
/// are *caller* errors: the measurement path itself degrades gracefully
/// (R5) rather than erroring.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementError {
    /// The spec's platform is a unicast VP platform; measurements probe
    /// from an anycast platform (unicast platforms belong to GCD).
    NotAnycast {
        /// The offending platform.
        platform: PlatformId,
    },
    /// The platform handed to a GCD campaign is an anycast platform; GCD
    /// probes from geographically dispersed *unicast* vantage points (the
    /// mirror image of [`NotAnycast`](MeasurementError::NotAnycast)).
    NotUnicast {
        /// The offending platform.
        platform: PlatformId,
    },
    /// The platform handed to a GCD campaign has more vantage points than
    /// the probe wire format can attribute: the witnessing VP travels as a
    /// u16 worker id, so indices above `u16::MAX` would silently alias
    /// distinct VPs in records and traces. Rejected up front instead.
    PlatformTooLarge {
        /// The offending platform.
        platform: PlatformId,
        /// Its vantage-point count.
        n_vps: usize,
    },
    /// The platform's worker count cannot be attributed by the probe
    /// encodings (valid range: 1..=64).
    WorkerCount {
        /// The offending worker count.
        n_workers: usize,
    },
    /// The measurement id lies in the id space reserved for precheck
    /// passes ([`PRECHECK_ID_BIT`](crate::orchestrator::PRECHECK_ID_BIT)
    /// set): its derived precheck id would collide with another
    /// measurement's, and two measurements sharing an id would accept each
    /// other's replies.
    ReservedId {
        /// The offending measurement id.
        id: u32,
    },
    /// A sender restriction names a worker the platform does not have.
    SenderOutOfRange {
        /// The out-of-range worker.
        worker: u16,
        /// The platform's worker count.
        n_workers: usize,
    },
    /// The fault plan is internally inconsistent (a rate outside [0, 1], a
    /// fault scheduled on a worker the platform does not have).
    InvalidFaultPlan {
        /// What is wrong with the plan.
        detail: String,
    },
    /// The spec's probe-batch size is zero: a worker receiving empty
    /// batches could never make progress.
    InvalidBatchSize {
        /// The offending batch size.
        batch_size: usize,
    },
    /// The spec's probe rate is zero: a zero rate admits no schedule
    /// window, so no target could ever be dispatched. Historically this
    /// was silently clamped to 1 probe/s inside the schedule — a 10 000×
    /// slowdown the caller never asked for — and is now rejected here.
    InvalidRate,
    /// The spec's shard count is zero: the hitlist stream is partitioned
    /// across `shards` contiguous slices, and zero slices cover nothing.
    InvalidShardCount,
}

impl std::fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasurementError::NotAnycast { platform } => {
                write!(
                    f,
                    "platform {platform:?} is not an anycast platform; measurements \
                     probe from anycast platforms"
                )
            }
            MeasurementError::NotUnicast { platform } => {
                write!(
                    f,
                    "platform {platform:?} is not a unicast VP platform; GCD campaigns \
                     probe from unicast vantage points"
                )
            }
            MeasurementError::PlatformTooLarge { platform, n_vps } => {
                write!(
                    f,
                    "platform {platform:?} has {n_vps} vantage points, more than the \
                     probe format's u16 VP-id space ({} max)",
                    u16::MAX
                )
            }
            MeasurementError::WorkerCount { n_workers } => {
                write!(
                    f,
                    "worker count {n_workers} outside the attributable range 1..=64"
                )
            }
            MeasurementError::ReservedId { id } => {
                write!(
                    f,
                    "measurement id {id:#010x} lies in the reserved precheck id space \
                     (ids must be below {:#010x})",
                    crate::orchestrator::PRECHECK_ID_BIT
                )
            }
            MeasurementError::SenderOutOfRange { worker, n_workers } => {
                write!(
                    f,
                    "sender restriction names worker {worker}, but the platform has \
                     only workers 0..{n_workers}"
                )
            }
            MeasurementError::InvalidFaultPlan { detail } => {
                write!(f, "invalid fault plan: {detail}")
            }
            MeasurementError::InvalidBatchSize { batch_size } => {
                write!(f, "invalid batch size {batch_size}; must be at least 1")
            }
            MeasurementError::InvalidRate => {
                write!(
                    f,
                    "invalid probe rate 0; the schedule needs at least 1 probe/s"
                )
            }
            MeasurementError::InvalidShardCount => {
                write!(
                    f,
                    "invalid shard count 0; the stream needs at least 1 shard"
                )
            }
        }
    }
}

impl std::error::Error for MeasurementError {}

#[allow(deprecated)]
impl From<crate::orchestrator::ReservedIdError> for MeasurementError {
    fn from(e: crate::orchestrator::ReservedIdError) -> Self {
        MeasurementError::ReservedId { id: e.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = MeasurementError::ReservedId { id: 0x8000_0001 };
        assert!(e.to_string().contains("0x80000001"));
        assert!(e.to_string().contains("reserved"));
        let e = MeasurementError::WorkerCount { n_workers: 65 };
        assert!(e.to_string().contains("65"));
        let e = MeasurementError::PlatformTooLarge {
            platform: PlatformId(3),
            n_vps: 70_000,
        };
        assert!(e.to_string().contains("70000"));
        let e = MeasurementError::SenderOutOfRange {
            worker: 9,
            n_workers: 4,
        };
        assert!(e.to_string().contains("worker 9"));
    }

    #[test]
    #[allow(deprecated)]
    fn reserved_id_error_folds_in() {
        let old = crate::orchestrator::ReservedIdError(0x8000_0007);
        let new: MeasurementError = old.into();
        assert_eq!(new, MeasurementError::ReservedId { id: 0x8000_0007 });
    }
}

//! The Orchestrator component.
//!
//! The Orchestrator is the central controller: it seals start orders for
//! every Worker, streams the hitlist to them at the configured rate
//! (buffering it so workers never hold it, R10), collects the result
//! stream, and survives worker failures by completing the measurement with
//! the remaining workers (R5).
//!
//! In the real system the components are separate processes connected by
//! authenticated gRPC streams; here each Worker is an OS thread and the
//! streams are `crossbeam` channels, which preserves the concurrency
//! structure (streaming, backpressure, failure isolation) while staying
//! inside one deterministic process.

use std::sync::Arc;

use crossbeam::channel;
use laces_netsim::{platform as plat, World};
use laces_packet::IpVersion;

use crate::auth::{AuthKey, Sealed};
use crate::rate::window_start_ms;
use crate::results::{MeasurementOutcome, WorkerEvent};
use crate::spec::MeasurementSpec;
use crate::worker::{run_worker, ProbeOrder, StartOrder, WorkerOut};

/// How many orders may queue per worker before the hitlist stream blocks
/// (the paper's Orchestrator buffers the hitlist and streams it; workers
/// keep only a small in-flight window).
const ORDER_QUEUE: usize = 4_096;

/// Run a measurement to completion and aggregate the result stream.
///
/// Panics if the spec's platform is not an anycast platform or has more
/// workers than the probe encodings can attribute (64).
pub fn run_measurement(world: &Arc<World>, spec: &MeasurementSpec) -> MeasurementOutcome {
    run_measurement_abortable(world, spec, &AbortHandle::new())
}

/// A cancellation handle for a running measurement (R5: "Disconnecting the
/// CLI can be used to cancel incorrect measurements"). Cloneable; setting
/// it stops the Orchestrator's hitlist stream, after which workers finish
/// their in-flight probes, drain captures, and report normally — no
/// unnecessary probes are sent (R3).
#[derive(Debug, Clone, Default)]
pub struct AbortHandle(Arc<std::sync::atomic::AtomicBool>);

impl AbortHandle {
    /// A fresh, un-triggered handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancel the measurement (idempotent).
    pub fn abort(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_aborted(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// [`run_measurement`] with a cancellation handle.
pub fn run_measurement_abortable(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    abort: &AbortHandle,
) -> MeasurementOutcome {
    let platform = world.platform(spec.platform);
    assert!(
        platform.is_anycast(),
        "measurements probe from an anycast platform"
    );
    let n_workers = platform.n_vps();
    assert!(
        n_workers >= 1 && n_workers <= 64,
        "worker count {n_workers} out of range"
    );

    let key = AuthKey::derive(world.cfg.seed ^ u64::from(spec.id));
    let span_ms = spec.span_ms(n_workers);

    // Family of the measurement follows the first target (hitlists are
    // single-family); the platform announces both an IPv4 and IPv6 prefix.
    let family = spec
        .targets
        .first()
        .map(|a| IpVersion::of(*a))
        .unwrap_or(IpVersion::V4);
    let src_addr = match family {
        IpVersion::V4 => plat::anycast_src_v4(spec.platform),
        IpVersion::V6 => plat::anycast_src_v6(spec.platform),
    };

    // Channels: per-worker bounded order queues; unbounded capture fabric
    // (replies in flight; unbounded rules out cyclic backpressure deadlock);
    // one shared result stream.
    let mut order_txs = Vec::with_capacity(n_workers);
    let mut order_rxs = Vec::with_capacity(n_workers);
    let mut cap_txs = Vec::with_capacity(n_workers);
    let mut cap_rxs = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (ot, or) = channel::bounded::<ProbeOrder>(ORDER_QUEUE);
        order_txs.push(ot);
        order_rxs.push(or);
        let (ct, cr) = channel::unbounded();
        cap_txs.push(ct);
        cap_rxs.push(cr);
    }
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    let mut records = Vec::new();
    let mut probes_sent = 0u64;
    let mut failed_workers = Vec::new();

    std::thread::scope(|scope| {
        for (w, (orders, captures)) in order_rxs.into_iter().zip(cap_rxs).enumerate() {
            let start = StartOrder {
                measurement_id: spec.id,
                platform: spec.platform,
                worker_id: w as u16,
                protocol: spec.protocol,
                encoding: spec.encoding,
                offset_ms: spec.offset_ms,
                span_ms,
                day: spec.day,
                src_addr,
                fail_after: spec
                    .fail
                    .and_then(|f| (usize::from(f.worker) == w).then_some(f.after_orders)),
            };
            let sealed = Sealed::seal(key, start);
            let fabric = cap_txs.clone();
            let out = out_tx.clone();
            let world = Arc::clone(world);
            scope.spawn(move || {
                run_worker(&world, key, sealed, orders, captures, fabric, out)
                    .expect("start order seals under the same key");
            });
        }
        // The orchestrator keeps no capture senders or result senders.
        drop(cap_txs);
        drop(out_tx);

        // Stream the hitlist at the configured rate. Each target is ordered
        // to every worker; a worker that died has a closed queue and is
        // skipped (R5: measurement continues with the remaining workers).
        let abort = abort.clone();
        scope.spawn(move || {
            for (i, &target) in spec.targets.iter().enumerate() {
                if abort.is_aborted() {
                    // CLI disconnected: stop streaming; workers wind down.
                    break;
                }
                let order = ProbeOrder {
                    target,
                    window_start_ms: window_start_ms(i, spec.rate_per_s),
                };
                for (w, tx) in order_txs.iter().enumerate() {
                    // Non-sender workers (single-VP precheck mode) receive
                    // no orders but still capture replies.
                    if spec.is_sender(w as u16) {
                        let _ = tx.send(order);
                    }
                }
            }
            // Dropping the senders closes every worker's order stream.
        });

        // Aggregate the live result stream (this is the CLI's sink file).
        for msg in out_rx.iter() {
            match msg {
                WorkerOut::Record(r) => records.push(r),
                WorkerOut::Event(WorkerEvent::Done { probes_sent: p, .. }) => probes_sent += p,
                WorkerOut::Event(WorkerEvent::Failed {
                    worker,
                    probes_sent: p,
                }) => {
                    probes_sent += p;
                    failed_workers.push(worker);
                }
            }
        }
    });

    failed_workers.sort_unstable();
    MeasurementOutcome {
        measurement_id: spec.id,
        platform: spec.platform,
        protocol: spec.protocol,
        n_workers,
        probes_sent,
        n_targets: spec.targets.len(),
        records,
        failed_workers,
    }
}

/// Result of a prechecked measurement (§6 future work: "check
/// responsiveness from a single VP before probing from all VPs").
#[derive(Debug, Clone)]
pub struct PrecheckedOutcome {
    /// The full measurement over responsive targets only.
    pub outcome: MeasurementOutcome,
    /// Probes spent by the single-worker precheck pass.
    pub precheck_probes: u64,
    /// Targets that answered the precheck and were probed fully.
    pub responsive_targets: usize,
    /// Targets skipped as unresponsive.
    pub skipped_targets: usize,
}

impl PrecheckedOutcome {
    /// Total probes across both phases.
    pub fn total_probes(&self) -> u64 {
        self.precheck_probes + self.outcome.probes_sent
    }
}

/// Run a measurement with a single-worker responsiveness precheck: worker
/// `precheck_worker` probes the full hitlist alone (all workers capture);
/// only targets that answered are then probed by the full platform.
///
/// On a hitlist with unresponsive share `u`, this saves roughly
/// `u × (n_workers - 1) / n_workers` of the probe budget at the cost of
/// missing targets that lose the single precheck probe.
pub fn run_with_precheck(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    precheck_worker: u16,
) -> PrecheckedOutcome {
    let mut pre = spec.clone();
    pre.id = spec.id ^ 0x4000_0000;
    pre.senders = Some(vec![precheck_worker]);
    let pre_outcome = run_measurement(world, &pre);

    let responsive: std::collections::BTreeSet<laces_packet::PrefixKey> =
        pre_outcome.records.iter().map(|r| r.prefix).collect();
    let filtered: Vec<std::net::IpAddr> = spec
        .targets
        .iter()
        .copied()
        .filter(|a| responsive.contains(&laces_packet::PrefixKey::of(*a)))
        .collect();
    let skipped = spec.targets.len() - filtered.len();

    let mut full = spec.clone();
    full.targets = Arc::new(filtered);
    let outcome = run_measurement(world, &full);
    PrecheckedOutcome {
        responsive_targets: outcome.n_targets,
        skipped_targets: skipped,
        precheck_probes: pre_outcome.probes_sent,
        outcome,
    }
}

//! The Orchestrator component.
//!
//! The Orchestrator is the central controller: it seals start orders for
//! every Worker, streams the hitlist to them at the configured rate
//! (buffering it so workers never hold it, R10), collects the result
//! stream, and survives worker failures by completing the measurement with
//! the remaining workers (R5).
//!
//! Two pipelines implement the same contract:
//!
//! * **Sharded** ([`run_measurement`]) — the default. The hitlist is split
//!   into `spec.shards` deterministic contiguous slices; each shard runs
//!   the stream → probe → capture chain *inline* with its own per-worker
//!   [`ProbeSession`]s, batch accumulators and [`RecordArena`], and the
//!   arenas are merged exactly once at seal time. No channels, no
//!   cross-shard locks on the hot path.
//! * **Threaded** ([`run_measurement_threaded`]) — the process-shaped
//!   reference: each Worker is an OS thread and the streams are
//!   `crossbeam` channels, which mirrors the real system's concurrency
//!   structure (streaming, backpressure, failure isolation).
//!
//! Both produce bit-identical outcomes for abort-free fault plans, and the
//! sharded pipeline additionally produces byte-identical records,
//! classification inputs, telemetry and trace exports across shard counts:
//! every per-order decision (rate window, fault cutoffs, RNG draws, trace
//! sampling) is a pure function of the order's *global hitlist index* and
//! per-probe coordinates, never of shard layout or thread interleaving,
//! and records are canonically re-sorted at seal time. The only
//! shard-dependent outputs are quarantined in
//! [`MeasurementOutcome::shard_report`] and the opt-in
//! [`TraceEvent::ShardSpan`] events.
//!
//! Every run assembles a [`RunReport`]: aggregate and per-worker counters,
//! the RTT distribution, a stage timing on the simulated clock, and the
//! typed degradation events. For abort-free fault plans the report is
//! bit-identical across reruns (see `laces-obs` for the rules that make
//! that hold).

use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use laces_netsim::wire::{BatchProbe, FabricVerdict, MeasurementCtx, ProbeSource};
use laces_netsim::{platform as plat, Delivery, FabricStats, ProbeSession, WireStats, World};
use laces_obs::{
    metrics, names, Counter, DegradedReason, Histogram, RunReport, ShardStages, SimClock,
    StageTimer,
};
use laces_packet::probe::{attribute_prepared, parse_reply, ProbeMeta};
use laces_packet::{IpVersion, PrefixKey};
use laces_trace::{Component, FabricFaultKind, OrderFaultCause, TraceEvent, Tracer};

use crate::auth::{AuthKey, Sealed};
use crate::error::MeasurementError;
use crate::rate::window_start_ms;
use crate::results::{
    MeasurementOutcome, ProbeRecord, RecordArena, WorkerEvent, WorkerFailure, WorkerHealth,
    WorkerStatus, WorkerTelemetry,
};
use crate::spec::MeasurementSpec;
use crate::worker::{run_worker, ProbeBatch, ProbeOrder, StartOrder, WorkerOut};

/// How many orders may queue per worker before the hitlist stream blocks
/// (the paper's Orchestrator buffers the hitlist and streams it; workers
/// keep only a small in-flight window). Threaded pipeline only.
const ORDER_QUEUE: usize = 4_096;

/// Measurement ids with this bit set are reserved for the internal
/// precheck pass of [`run_with_precheck`]; user measurements must stay
/// below it. The explicit partition guarantees a precheck can never share
/// an id with any user measurement (two measurements sharing an id would
/// accept each other's replies).
pub const PRECHECK_ID_BIT: u32 = 0x8000_0000;

/// Worker index → wire id. Worker counts are validated to `1..=64` before
/// any conversion, so this can never truncate; the fallback value only
/// satisfies the type without an `as`-cast on an identifier (laces-lint
/// R7 keeps id conversions checked).
fn worker_wire_id(w: usize) -> u16 {
    u16::try_from(w).unwrap_or(u16::MAX)
}

/// Run a measurement to completion and aggregate the result stream.
///
/// # Errors
///
/// [`MeasurementError::NotAnycast`] when the spec's platform is a unicast
/// VP platform, [`MeasurementError::WorkerCount`] when the platform's
/// worker count cannot be attributed by the probe encodings (1..=64),
/// [`MeasurementError::InvalidRate`] / [`MeasurementError::InvalidShardCount`]
/// when a hand-built spec bypassed the builder with a zero rate or zero
/// shard count.
pub fn run_measurement(
    world: &Arc<World>,
    spec: &MeasurementSpec,
) -> Result<MeasurementOutcome, MeasurementError> {
    run_measurement_abortable(world, spec, &AbortHandle::new())
}

/// A cancellation handle for a running measurement (R5: "Disconnecting the
/// CLI can be used to cancel incorrect measurements"). Cloneable; setting
/// it stops the Orchestrator's hitlist stream, after which workers finish
/// their in-flight probes, drain captures, and report normally — no
/// unnecessary probes are sent (R3).
#[derive(Debug, Clone, Default)]
pub struct AbortHandle(Arc<std::sync::atomic::AtomicBool>);

impl AbortHandle {
    /// A fresh, un-triggered handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancel the measurement (idempotent).
    pub fn abort(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_aborted(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Merge one worker's telemetry into the run report under the per-worker
/// namespace and the aggregate counters.
fn merge_worker_telemetry(report: &mut RunReport, worker: u16, t: &WorkerTelemetry) {
    let w = usize::from(worker);
    report.inc(
        &names::per_worker(names::worker::PROBES_SENT, w),
        t.probes_sent,
    );
    report.inc(
        &names::per_worker(names::worker::RECORDS_STREAMED, w),
        t.records_streamed,
    );
    report.inc(
        &names::per_worker(names::worker::CAPTURES_REJECTED, w),
        t.captures_rejected,
    );
    report.inc(names::worker::PROBES_SENT, t.probes_sent);
    report.inc(names::worker::RECORDS_STREAMED, t.records_streamed);
    report.inc(names::worker::CAPTURES_REJECTED, t.captures_rejected);
    report.inc(names::fabric::REPLIES_DELIVERED, t.replies_delivered);
    report.inc(names::fabric::UNANSWERED, t.unanswered);
    report.inc(names::fabric::DROPPED, t.fabric_dropped);
    report.inc(names::fabric::DUPLICATED, t.fabric_duplicated);
}

/// Validate the spec against the platform and return the worker count.
fn validated_workers(world: &World, spec: &MeasurementSpec) -> Result<usize, MeasurementError> {
    let platform = world.platform(spec.platform);
    if !platform.is_anycast() {
        return Err(MeasurementError::NotAnycast {
            platform: spec.platform,
        });
    }
    let n_workers = platform.n_vps();
    if !(1..=64).contains(&n_workers) {
        return Err(MeasurementError::WorkerCount { n_workers });
    }
    // The builder rejects these up front; hand-built specs that bypassed it
    // are rejected here rather than silently repaired (the old 0 → 1
    // rate clamp turned misconfigured censuses into 10 000× slower ones).
    if spec.rate_per_s == 0 {
        return Err(MeasurementError::InvalidRate);
    }
    if spec.shards == 0 {
        return Err(MeasurementError::InvalidShardCount);
    }
    Ok(n_workers)
}

/// The run-level gauges every pipeline records before streaming.
fn base_telemetry(spec: &MeasurementSpec, n_workers: usize, span_ms: u64) -> RunReport {
    let mut telemetry = RunReport::new();
    telemetry.set_gauge(names::orchestrator::N_WORKERS, n_workers as u64);
    telemetry.set_gauge(names::orchestrator::N_TARGETS, spec.targets.len() as u64);
    telemetry.set_gauge(names::orchestrator::SPAN_MS, span_ms);
    telemetry.set_gauge(names::orchestrator::RATE_PER_S, u64::from(spec.rate_per_s));
    telemetry.set_gauge(
        names::orchestrator::PROBE_BUDGET,
        spec.probe_budget(if spec.senders.is_some() {
            spec.senders.as_ref().map_or(0, |s| s.len())
        } else {
            n_workers
        }),
    );
    if let Some(fabric) = &spec.faults.fabric {
        // Planned fabric fault rates, in permille, next to the observed
        // fabric.dropped / fabric.duplicated counters.
        telemetry.set_gauge(
            names::fabric::PLANNED_DROP_PERMILLE,
            (fabric.drop_rate * 1000.0) as u64,
        );
        telemetry.set_gauge(
            names::fabric::PLANNED_DUP_PERMILLE,
            (fabric.dup_rate * 1000.0) as u64,
        );
    }
    telemetry
}

/// The complete (and cheap) measurement over an empty hitlist: spawning a
/// platform of workers — or shards — to stream zero orders would only burn
/// threads. Prechecks over fully-unresponsive target sets hit this path.
/// The fault plan still applies where it would with real workers: start
/// orders are authenticated before any probing, so seal rejections fail
/// their workers even here, and a crash scheduled after zero orders fires
/// with zero orders delivered; later crashes and order-channel faults need
/// deliveries that never happen.
fn empty_hitlist_outcome(
    spec: &MeasurementSpec,
    n_workers: usize,
    mut telemetry: RunReport,
    tracer: &Tracer,
) -> MeasurementOutcome {
    let worker_health: Vec<WorkerHealth> = (0..n_workers)
        .map(|w| {
            let w = worker_wire_id(w);
            let status = if spec.faults.rejects_seal(w) {
                telemetry.inc(names::orchestrator::SEAL_REJECTIONS, 1);
                telemetry.add_degraded(DegradedReason::SealRejected { worker: w });
                tracer.record(Component::Control, || TraceEvent::WorkerFault {
                    worker: w,
                    cause: "seal rejected".into(),
                    after_probes: 0,
                });
                WorkerStatus::Failed
            } else if spec.faults.crash_after(w) == Some(0) {
                telemetry.add_degraded(DegradedReason::WorkerCrashed { worker: w });
                tracer.record(Component::Control, || TraceEvent::WorkerFault {
                    worker: w,
                    cause: "crash".into(),
                    after_probes: 0,
                });
                WorkerStatus::Failed
            } else {
                WorkerStatus::Completed
            };
            WorkerHealth {
                worker: w,
                status,
                probes_sent: 0,
            }
        })
        .collect();
    let failed_workers: Vec<u16> = worker_health
        .iter()
        .filter(|h| h.status == WorkerStatus::Failed)
        .map(|h| h.worker)
        .collect();
    MeasurementOutcome {
        measurement_id: spec.id,
        platform: spec.platform,
        protocol: spec.protocol,
        n_workers,
        probes_sent: 0,
        n_targets: 0,
        records: Vec::new(),
        failed_workers,
        worker_health,
        telemetry,
        shard_report: RunReport::new(),
        trace_report: tracer.snapshot(""),
    }
}

/// The anycast source address for the spec's target family. The family of
/// the measurement follows the first target (hitlists are single-family);
/// the platform announces both an IPv4 and IPv6 prefix.
fn platform_src_addr(spec: &MeasurementSpec) -> IpAddr {
    let family = spec
        .targets
        .first()
        .map(|a| IpVersion::of(*a))
        .unwrap_or(IpVersion::V4);
    match family {
        IpVersion::V4 => plat::anycast_src_v4(spec.platform),
        IpVersion::V6 => plat::anycast_src_v6(spec.platform),
    }
}

/// Everything a pipeline hands to the shared epilogue.
struct RunTotals {
    records: Vec<ProbeRecord>,
    probes_sent: u64,
    failed_workers: Vec<u16>,
    worker_health: Vec<WorkerHealth>,
    telemetry: RunReport,
    shard_report: RunReport,
    orders_streamed: u64,
    rate_limiter_stalls: u64,
}

/// The shared measurement epilogue: canonical sorts, stream counters,
/// abort accounting, the RTT distribution and the stage span — identical
/// for both pipelines so their outcomes stay comparable field by field.
fn finalize_outcome(
    spec: &MeasurementSpec,
    n_workers: usize,
    span_ms: u64,
    abort: &AbortHandle,
    tracer: &Tracer,
    totals: RunTotals,
) -> MeasurementOutcome {
    let RunTotals {
        mut records,
        probes_sent,
        mut failed_workers,
        worker_health: mut health,
        mut telemetry,
        shard_report,
        orders_streamed,
        rate_limiter_stalls,
    } = totals;
    failed_workers.sort_unstable();
    health.sort_unstable_by_key(|h| h.worker);
    // Canonical record order: shards (or worker threads) race to the
    // result stream, so the arrival order is scheduler noise. Sorting
    // makes equal runs serialise identically (fault plans are replayable
    // bit-for-bit).
    sort_canonical(&mut records);

    telemetry.inc(names::orchestrator::ORDERS_STREAMED, orders_streamed);
    telemetry.inc(
        names::orchestrator::RATE_LIMITER_STALLS,
        rate_limiter_stalls,
    );
    telemetry.inc(names::orchestrator::RECORDS_COLLECTED, records.len() as u64);
    if abort.is_aborted() {
        telemetry.inc(names::orchestrator::ABORTS, 1);
        telemetry.add_degraded(DegradedReason::Aborted);
    }
    // The RTT distribution is computed from the canonical record list (a
    // multiset — order-independent by construction).
    let mut rtts = Histogram::new(&metrics::RTT_BUCKETS_MS);
    for r in &records {
        if let Some(rtt) = r.rtt_ms() {
            rtts.observe(rtt);
        }
    }
    telemetry.record_histogram(names::worker::RTT_MS, rtts.snapshot());
    // Stage timing on the simulated clock: the probing phase spans the
    // rate-limited hitlist stream plus the last worker's offset window
    // (R6's quantity, per measurement).
    let mut clock = SimClock::new();
    let mut stage = StageTimer::start(format!("measurement:{:?}", spec.protocol), &clock);
    stage.count("targets", spec.targets.len() as u64);
    stage.count("probes_sent", probes_sent);
    let sim_ms = window_start_ms(spec.targets.len().saturating_sub(1), spec.rate_per_s) + span_ms;
    clock.advance(sim_ms);
    telemetry.push_stage(stage.finish(&clock));
    tracer.record(Component::Control, || TraceEvent::StageSpan {
        name: format!("measurement:{:?}", spec.protocol),
        start_ms: 0,
        sim_ms,
    });

    MeasurementOutcome {
        measurement_id: spec.id,
        platform: spec.platform,
        protocol: spec.protocol,
        n_workers,
        probes_sent,
        n_targets: spec.targets.len(),
        records,
        failed_workers,
        worker_health: health,
        telemetry,
        shard_report,
        trace_report: tracer.snapshot(""),
    }
}

/// The canonical record sort shared by both pipelines.
pub(crate) fn sort_canonical(records: &mut [ProbeRecord]) {
    records.sort_unstable_by(|a, b| {
        (
            a.prefix,
            a.tx_worker,
            a.rx_worker,
            a.tx_time_ms,
            a.rx_time_ms,
        )
            .cmp(&(
                b.prefix,
                b.tx_worker,
                b.rx_worker,
                b.tx_time_ms,
                b.rx_time_ms,
            ))
    });
}

// ---------------------------------------------------------------------------
// Sharded pipeline
// ---------------------------------------------------------------------------

/// How a shard disposes of a delivery addressed to worker `rx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaptureMode {
    /// The worker cannot fail: validate the capture inline.
    Live,
    /// The worker is scheduled to crash: whether its captures survive
    /// depends on whether the crash point is actually reached, which is
    /// only known once the stream ends. Buffer them; a surviving worker
    /// drains the buffer in the final phase, a crashed one loses it —
    /// exactly the threaded pipeline's deferred-drain semantics.
    Deferred,
    /// The worker's start order failed authentication: it never runs, and
    /// deliveries to it vanish like packets to a dead site.
    Lost,
}

/// Per-worker fault cutoffs, precomputed on *global hitlist indices* so
/// every shard applies identical per-order semantics to its slice. The
/// k-th order a worker receives is always the k-th index of its eligible
/// range, so "delay N", "close after N" and "crash after N orders" are all
/// pure index arithmetic — canonical order, not per-shard arrival order.
#[derive(Debug, Clone)]
struct WorkerPlan {
    /// Whether the worker transmits probes (sender restriction).
    sender: bool,
    /// The worker's start order failed authentication (R8).
    seal_rejected: bool,
    /// Crash-after-N-orders limit, if scheduled.
    crash_limit: Option<usize>,
    /// Global indices `i < delay` are delay-faulted (order lost).
    delay: usize,
    /// Global indices `i >= close_at` are closed-channel-faulted.
    close_at: usize,
    /// Global indices `i >= probe_end` are issued but never probed (the
    /// worker is past its crash point or never started).
    probe_end: usize,
    /// Capture disposition for deliveries addressed to this worker.
    capture: CaptureMode,
}

impl WorkerPlan {
    fn of(spec: &MeasurementSpec, world: &World, wid: u16, src_addr: IpAddr, span_ms: u64) -> Self {
        let sender = spec.is_sender(wid);
        // Authentication is exercised for real, exactly as the threaded
        // pipeline does: seal a start order (under a corrupted key when the
        // fault plan says so) and try to open it with the worker's key.
        let key = AuthKey::derive(world.cfg.seed ^ u64::from(spec.id));
        let seal_key = if spec.faults.rejects_seal(wid) {
            AuthKey::derive(world.cfg.seed ^ u64::from(spec.id) ^ 0x0BAD_5EA1)
        } else {
            key
        };
        let start = StartOrder {
            measurement_id: spec.id,
            platform: spec.platform,
            worker_id: wid,
            protocol: spec.protocol,
            encoding: spec.encoding,
            offset_ms: spec.offset_ms,
            span_ms,
            day: spec.day,
            src_addr,
            fail_after: spec.faults.crash_after(wid),
            fabric_faults: spec.faults.fabric,
        };
        let seal_rejected = Sealed::seal(seal_key, start).open(key).is_none();
        let crash_limit = if seal_rejected {
            None
        } else {
            spec.faults.crash_after(wid)
        };
        let (delay, close_after) = match spec.faults.order_fault(wid) {
            Some(f) => (f.delay_orders, f.close_after),
            None => (0, None),
        };
        let close_at = close_after.map_or(usize::MAX, |c| delay.saturating_add(c));
        let probe_end = if seal_rejected || !sender {
            0
        } else {
            crash_limit.map_or(usize::MAX, |l| delay.saturating_add(l))
        };
        let capture = if seal_rejected {
            CaptureMode::Lost
        } else if spec.faults.crash_after(wid).is_some() {
            CaptureMode::Deferred
        } else {
            CaptureMode::Live
        };
        WorkerPlan {
            sender,
            seal_rejected,
            crash_limit,
            delay,
            close_at,
            probe_end,
            capture,
        }
    }
}

/// Everything a shard borrows from the run, shared read-only across
/// shards.
struct ShardCtx<'a> {
    world: &'a World,
    spec: &'a MeasurementSpec,
    plans: &'a [WorkerPlan],
    src_addr: IpAddr,
    ctx: MeasurementCtx,
    tracer: &'a Tracer,
    abort: &'a AbortHandle,
    accepted: &'a AtomicUsize,
}

/// Validated-capture accumulation: shard-local record arena plus the
/// per-worker rx-side counters, wired to the shared abort trigger.
struct CaptureSink<'a> {
    measurement_id: u32,
    arena: RecordArena,
    records_streamed: Vec<u64>,
    captures_rejected: Vec<u64>,
    abort_after: Option<usize>,
    accepted: &'a AtomicUsize,
    abort: &'a AbortHandle,
    tracer: &'a Tracer,
}

impl<'a> CaptureSink<'a> {
    fn new(cx: &ShardCtx<'a>, n_workers: usize) -> Self {
        CaptureSink {
            measurement_id: cx.spec.id,
            arena: RecordArena::new(),
            records_streamed: vec![0; n_workers],
            captures_rejected: vec![0; n_workers],
            abort_after: cx.spec.faults.abort_after_records,
            accepted: cx.accepted,
            abort: cx.abort,
            tracer: cx.tracer,
        }
    }

    /// Validate one capture at worker `rx` and accumulate the record —
    /// the inline analogue of the threaded worker's capture filter.
    fn capture(&mut self, d: &Delivery, rx: usize) {
        let rx_worker = worker_wire_id(rx);
        let prefix = PrefixKey::of(d.packet.src);
        // Fast-path deliveries carry pre-parsed attribution; resolving it
        // is bit-identical to parsing the reply bytes (see
        // `attribute_prepared`), so both arms validate the same way.
        let parsed = match &d.reply {
            Some(p) => attribute_prepared(d.packet.protocol, p, self.measurement_id, d.rx_time_ms),
            None => parse_reply(&d.packet, self.measurement_id, d.rx_time_ms),
        };
        if let Ok(info) = parsed {
            self.tracer
                .record_for(Component::Capture, prefix, || TraceEvent::Captured {
                    prefix,
                    rx_worker,
                    rx_time_ms: d.rx_time_ms,
                    accepted: true,
                    chaos_identity: info.chaos_identity.as_deref().map(str::to_string),
                });
            self.arena.push(ProbeRecord {
                prefix,
                protocol: info.protocol,
                rx_worker,
                tx_worker: info.tx_worker,
                tx_time_ms: info.tx_time_ms,
                rx_time_ms: d.rx_time_ms,
                chaos_identity: info.chaos_identity,
            });
            self.records_streamed[rx] += 1;
            if let Some(limit) = self.abort_after {
                // Mid-stream abort fault: the CLI disconnects once `limit`
                // records were accepted run-wide, but everything collected
                // so far is kept.
                if self.accepted.fetch_add(1, Ordering::AcqRel) + 1 >= limit {
                    self.abort.abort();
                }
            }
        } else {
            self.tracer
                .record_for(Component::Capture, prefix, || TraceEvent::Captured {
                    prefix,
                    rx_worker,
                    rx_time_ms: d.rx_time_ms,
                    accepted: false,
                    chaos_identity: None,
                });
            self.captures_rejected[rx] += 1;
        }
    }
}

/// Per-(shard, worker) transmit state: the resolved route session, wire
/// and fabric stats, and the batch
/// accumulator. `batch[..probed]` is the prefix that is actually
/// transmitted (orders past the worker's crash point are issued and
/// counted but never probed — matching a worker that died with orders
/// still queued).
struct ShardWorker {
    wid: u16,
    session: Option<ProbeSession>,
    wire: WireStats,
    fabric: FabricStats,
    batch: Vec<ProbeOrder>,
    probed: usize,
}

/// What one shard reports back to the merge.
struct ShardOutput {
    index: usize,
    lo: usize,
    hi: usize,
    arena: RecordArena,
    /// Per-worker tx-side telemetry (rx-side fields zero).
    tx: Vec<WorkerTelemetry>,
    records_streamed: Vec<u64>,
    captures_rejected: Vec<u64>,
    /// Deliveries buffered for crash-scheduled workers, per worker.
    deferred: Vec<Vec<Delivery>>,
    /// Eligible orders issued per worker (the crash-limit denominator).
    issued: Vec<u64>,
    orders_streamed: u64,
    rate_limiter_stalls: u64,
    probes_sent: u64,
}

/// The contiguous slice of shard `s` out of `shards` over `n` targets:
/// sizes differ by at most one, earlier shards take the remainder.
fn shard_bounds(n: usize, shards: usize, s: usize) -> (usize, usize) {
    let base = n / shards;
    let rem = n % shards;
    let lo = s * base + s.min(rem);
    let hi = lo + base + usize::from(s < rem);
    (lo, hi)
}

/// Run one shard of the hitlist stream inline: per-order fault semantics,
/// batch accumulation, wire transmission, fabric verdicts and capture
/// validation, all against the shard's own sessions and arenas.
fn run_shard(cx: &ShardCtx<'_>, index: usize, lo: usize, hi: usize) -> ShardOutput {
    let spec = cx.spec;
    let n_workers = cx.plans.len();
    let mut workers: Vec<ShardWorker> = (0..n_workers)
        .map(|w| {
            let plan = &cx.plans[w];
            let session = if plan.sender && !plan.seal_rejected {
                let mut s = cx.world.probe_session(ProbeSource::Worker {
                    platform: spec.platform,
                    site: w,
                });
                s.attach_tracer(cx.tracer.clone());
                Some(s)
            } else {
                None
            };
            ShardWorker {
                wid: worker_wire_id(w),
                session,
                wire: WireStats::new(),
                fabric: FabricStats::new(),
                batch: Vec::new(),
                probed: 0,
            }
        })
        .collect();
    let mut sink = CaptureSink::new(cx, n_workers);
    let mut deferred: Vec<Vec<Delivery>> = (0..n_workers).map(|_| Vec::new()).collect();
    let mut issued = vec![0u64; n_workers];
    let mut orders_streamed = 0u64;
    let mut deliveries: Vec<Delivery> = Vec::new();

    // One closure-free flush path, shared by the batch-boundary and tail
    // flushes: count the whole batch as issued (orders past a crash point
    // were still streamed), transmit the probed prefix, apply fabric
    // verdicts and dispose of the deliveries per the rx worker's capture
    // mode.
    macro_rules! flush {
        ($w:expr) => {{
            let w: usize = $w;
            let ws = &mut workers[w];
            if !ws.batch.is_empty() {
                orders_streamed += ws.batch.len() as u64;
                issued[w] += ws.batch.len() as u64;
                let take = ws.probed;
                if take > 0 {
                    let tx_offset = spec.offset_ms * u64::from(ws.wid);
                    for order in &ws.batch[..take] {
                        let prefix = PrefixKey::of(order.target);
                        let wid = ws.wid;
                        cx.tracer
                            .record_for(Component::Worker, prefix, || TraceEvent::ProbeSent {
                                prefix,
                                worker: wid,
                                tx_time_ms: order.window_start_ms + tx_offset,
                            });
                    }
                    // Zero-copy fast path: the probe's metadata rides the
                    // batch instead of serialized bytes, so neither probe
                    // nor reply packets are materialized — the wire hands
                    // back pre-attributed deliveries with the identical
                    // record outcome.
                    let probes: Vec<BatchProbe<'_>> = ws.batch[..take]
                        .iter()
                        .map(|order| BatchProbe {
                            dst: order.target,
                            bytes: &[],
                            tx_time_ms: order.window_start_ms + tx_offset,
                            window_start_ms: order.window_start_ms,
                            meta: Some((
                                ProbeMeta {
                                    measurement_id: spec.id,
                                    worker_id: ws.wid,
                                    tx_time_ms: order.window_start_ms + tx_offset,
                                },
                                spec.encoding,
                            )),
                        })
                        .collect();
                    if let Some(session) = ws.session.as_mut() {
                        // laces-lint: allow(discarded-fallibility) — the zero-copy path sends metadata with empty byte slices; the wire's only error source is parsing probe bytes, which this path never does
                        let _ = cx.world.send_probe_batch(
                            session,
                            cx.src_addr,
                            spec.protocol,
                            &probes,
                            &cx.ctx,
                            &ws.wire,
                            &mut deliveries,
                        );
                    }
                    for d in deliveries.drain(..) {
                        let verdict = spec.faults.fabric.map_or(FabricVerdict::Deliver, |f| {
                            f.verdict_observed(&d, &ws.fabric)
                        });
                        if verdict != FabricVerdict::Deliver {
                            // Only faults are recorded: a reply with no
                            // FabricFault event passed through untouched.
                            let prefix = PrefixKey::of(d.packet.src);
                            let tx_worker = ws.wid;
                            cx.tracer.record_for(Component::Fabric, prefix, || {
                                TraceEvent::FabricFault {
                                    prefix,
                                    tx_worker,
                                    rx_worker: worker_wire_id(d.rx_index),
                                    rx_time_ms: d.rx_time_ms,
                                    kind: if verdict == FabricVerdict::Drop {
                                        FabricFaultKind::Dropped
                                    } else {
                                        FabricFaultKind::Duplicated
                                    },
                                }
                            });
                        }
                        if verdict == FabricVerdict::Drop {
                            continue;
                        }
                        let rx = d.rx_index;
                        match cx.plans.get(rx).map(|p| p.capture) {
                            Some(CaptureMode::Live) => {
                                if verdict == FabricVerdict::Duplicate {
                                    sink.capture(&d, rx);
                                }
                                sink.capture(&d, rx);
                            }
                            Some(CaptureMode::Deferred) => {
                                if verdict == FabricVerdict::Duplicate {
                                    deferred[rx].push(d.clone());
                                }
                                deferred[rx].push(d);
                            }
                            Some(CaptureMode::Lost) | None => {}
                        }
                    }
                }
                workers[w].batch.clear();
                workers[w].probed = 0;
            }
        }};
    }

    // Stream the shard's slice at the schedule's global rate windows.
    // `last_window` is seeded from the last index *before* the slice, so
    // summing per-shard stall counts reproduces the single-streamer count
    // of window transitions exactly.
    let mut last_window = if lo == 0 {
        0
    } else {
        window_start_ms(lo - 1, spec.rate_per_s)
    };
    let mut aborted = false;
    for i in lo..hi {
        if cx.abort.is_aborted() {
            // CLI disconnected: stop streaming; accumulated but unsent
            // batches are dropped — the abort cuts the stream at a batch
            // boundary (R3: no unnecessary probes).
            aborted = true;
            break;
        }
        let target = spec.targets[i];
        let window = window_start_ms(i, spec.rate_per_s);
        if window > last_window {
            orders_streamed += 0; // (stalls counted below; keep shape flat)
            last_window = window;
        }
        let prefix = PrefixKey::of(target);
        for w in 0..n_workers {
            let plan = &cx.plans[w];
            // Non-sender workers (single-VP precheck mode) receive no
            // orders but still capture replies.
            if !plan.sender {
                continue;
            }
            let wid = workers[w].wid;
            if i < plan.delay {
                // The channel came up late; early orders are lost in the
                // disconnected stream.
                cx.tracer
                    .record_for(Component::Orchestrator, prefix, || TraceEvent::OrderFault {
                        prefix,
                        worker: wid,
                        cause: OrderFaultCause::Delayed,
                    });
                continue;
            }
            if i >= plan.close_at {
                // Channel closed by the fault plan; the worker completes
                // with what it received.
                cx.tracer
                    .record_for(Component::Orchestrator, prefix, || TraceEvent::OrderFault {
                        prefix,
                        worker: wid,
                        cause: OrderFaultCause::ChannelClosed,
                    });
                continue;
            }
            cx.tracer.record_for(Component::Orchestrator, prefix, || {
                TraceEvent::OrderIssued {
                    prefix,
                    worker: wid,
                    window_start_ms: window,
                }
            });
            let ws = &mut workers[w];
            ws.batch.push(ProbeOrder {
                target,
                window_start_ms: window,
            });
            if i < plan.probe_end {
                ws.probed += 1;
            }
            if ws.batch.len() >= spec.batch_size {
                flush!(w);
            }
        }
    }
    // End of slice: flush the partial tail batches (unless aborted — the
    // threaded streamer drops accumulated batches on abort too).
    if !aborted {
        for w in 0..n_workers {
            flush!(w);
        }
    }

    // Stall counting is a pure function of the slice bounds: the number of
    // indices in [lo, hi) whose window opens strictly later than their
    // predecessor's. Recomputing it here (rather than inside the loop)
    // keeps the count exact even when an abort cut the loop short — the
    // threaded pipeline's count under abort is scheduler noise anyway, and
    // fault-free runs are what the invariance contract pins.
    let mut rate_limiter_stalls = 0u64;
    let mut prev = if lo == 0 {
        0
    } else {
        window_start_ms(lo - 1, spec.rate_per_s)
    };
    let streamed_hi = if aborted { lo } else { hi };
    for i in lo..streamed_hi {
        let w = window_start_ms(i, spec.rate_per_s);
        if w > prev {
            rate_limiter_stalls += 1;
            prev = w;
        }
    }
    let _ = last_window;

    let tx: Vec<WorkerTelemetry> = workers
        .iter()
        .map(|ws| WorkerTelemetry {
            probes_sent: ws.wire.probes.get(),
            replies_delivered: ws.wire.deliveries.get(),
            unanswered: ws.wire.unanswered.get(),
            fabric_dropped: ws.fabric.dropped.get(),
            fabric_duplicated: ws.fabric.duplicated.get(),
            records_streamed: 0,
            captures_rejected: 0,
        })
        .collect();
    let probes_sent = tx.iter().map(|t| t.probes_sent).sum();
    ShardOutput {
        index,
        lo,
        hi,
        arena: sink.arena,
        tx,
        records_streamed: sink.records_streamed,
        captures_rejected: sink.captures_rejected,
        deferred,
        issued,
        orders_streamed,
        rate_limiter_stalls,
        probes_sent,
    }
}

/// [`run_measurement`] with a cancellation handle — the sharded inline
/// pipeline.
///
/// # Errors
///
/// As [`run_measurement`].
pub fn run_measurement_abortable(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    abort: &AbortHandle,
) -> Result<MeasurementOutcome, MeasurementError> {
    let n_workers = validated_workers(world, spec)?;
    let span_ms = spec.span_ms(n_workers);
    let tracer = Tracer::new(spec.trace);
    let mut telemetry = base_telemetry(spec, n_workers, span_ms);

    if spec.targets.is_empty() {
        return Ok(empty_hitlist_outcome(spec, n_workers, telemetry, &tracer));
    }

    let src_addr = platform_src_addr(spec);
    let plans: Vec<WorkerPlan> = (0..n_workers)
        .map(|w| WorkerPlan::of(spec, world, worker_wire_id(w), src_addr, span_ms))
        .collect();
    let n = spec.targets.len();
    let shards = spec.shards.min(n).max(1);
    let accepted = AtomicUsize::new(0);
    let cx = ShardCtx {
        world,
        spec,
        plans: &plans,
        src_addr,
        ctx: MeasurementCtx {
            id: spec.id,
            day: spec.day,
            span_ms,
        },
        tracer: &tracer,
        abort,
        accepted: &accepted,
    };

    let mut outs: Vec<ShardOutput> = Vec::with_capacity(shards);
    let mut lost_shards = 0u64;
    if shards == 1 {
        // The single-shard census runs entirely on the calling thread: no
        // spawn, no join, no synchronisation at all.
        outs.push(run_shard(&cx, 0, 0, n));
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let cx = &cx;
                    let (lo, hi) = shard_bounds(n, shards, s);
                    scope.spawn(move || run_shard(cx, s, lo, hi))
                })
                .collect();
            for (s, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(o) => outs.push(o),
                    Err(_) => {
                        // A panicked shard is a bug, not a modelled fault;
                        // degrade loudly instead of poisoning the scope.
                        lost_shards += 1;
                        telemetry.add_degraded(DegradedReason::Stage {
                            stage: format!("shard.{s:03}"),
                            detail: "shard thread panicked; its slice is missing".into(),
                        });
                    }
                }
            }
        });
    }
    if lost_shards > 0 {
        telemetry.inc(names::orchestrator::SHARD_FAILURES, lost_shards);
    }

    // Crash determination in canonical order: "crash after N orders"
    // counts the orders actually issued to the worker across all shards —
    // global eligible-index arithmetic, not per-shard arrival order.
    let mut delivered = vec![0u64; n_workers];
    for o in &outs {
        for (w, n) in o.issued.iter().enumerate() {
            delivered[w] += n;
        }
    }
    let crash_fires: Vec<bool> = plans
        .iter()
        .enumerate()
        .map(|(w, p)| {
            p.crash_limit
                .is_some_and(|l| delivered[w] >= u64::try_from(l).unwrap_or(u64::MAX))
        })
        .collect();

    // Deferred-capture resolution: a crash-scheduled worker that survived
    // (the stream ended before its crash point) drains its buffered
    // deliveries now, exactly like the threaded worker's final capture
    // phase; a crashed worker loses them with its site.
    let mut late = CaptureSink::new(&cx, n_workers);
    for o in &mut outs {
        for (rx, &crashed) in crash_fires.iter().enumerate() {
            if crashed {
                o.deferred[rx].clear();
                continue;
            }
            let dels = std::mem::take(&mut o.deferred[rx]);
            for d in &dels {
                late.capture(d, rx);
            }
        }
    }

    // Per-worker terminal accounting, in worker order. (The threaded
    // pipeline merges in arrival order; every merge operation is
    // order-independent, so the reports agree.)
    let mut probes_sent = 0u64;
    let mut failed_workers: Vec<u16> = Vec::new();
    let mut worker_health: Vec<WorkerHealth> = Vec::with_capacity(n_workers);
    for (w, plan) in plans.iter().enumerate() {
        let wid = worker_wire_id(w);
        let mut t = WorkerTelemetry::default();
        for o in &outs {
            t.probes_sent += o.tx[w].probes_sent;
            t.replies_delivered += o.tx[w].replies_delivered;
            t.unanswered += o.tx[w].unanswered;
            t.fabric_dropped += o.tx[w].fabric_dropped;
            t.fabric_duplicated += o.tx[w].fabric_duplicated;
            t.records_streamed += o.records_streamed[w];
            t.captures_rejected += o.captures_rejected[w];
        }
        t.records_streamed += late.records_streamed[w];
        t.captures_rejected += late.captures_rejected[w];
        probes_sent += t.probes_sent;
        merge_worker_telemetry(&mut telemetry, wid, &t);
        if plan.seal_rejected {
            tracer.record(Component::Control, || TraceEvent::WorkerFault {
                worker: wid,
                cause: "seal rejected".into(),
                after_probes: t.probes_sent,
            });
            telemetry.inc(names::orchestrator::SEAL_REJECTIONS, 1);
            telemetry.add_degraded(DegradedReason::SealRejected { worker: wid });
            failed_workers.push(wid);
            worker_health.push(WorkerHealth {
                worker: wid,
                status: WorkerStatus::Failed,
                probes_sent: t.probes_sent,
            });
        } else if crash_fires[w] {
            tracer.record(Component::Control, || TraceEvent::WorkerFault {
                worker: wid,
                cause: "crash".into(),
                after_probes: t.probes_sent,
            });
            telemetry.add_degraded(DegradedReason::WorkerCrashed { worker: wid });
            failed_workers.push(wid);
            worker_health.push(WorkerHealth {
                worker: wid,
                status: WorkerStatus::Failed,
                probes_sent: t.probes_sent,
            });
        } else {
            worker_health.push(WorkerHealth {
                worker: wid,
                status: WorkerStatus::Completed,
                probes_sent: t.probes_sent,
            });
        }
    }

    // Shard-layout diagnostics live in their own report: per-shard stage
    // timers plus the shard count, quarantined from the canonical
    // telemetry so the invariance contract stays byte-exact.
    let mut shard_report = RunReport::new();
    shard_report.set_gauge(names::orchestrator::SHARDS, shards as u64);
    let mut stages = ShardStages::new();
    for o in &outs {
        if o.hi == o.lo {
            continue;
        }
        let start_ms = window_start_ms(o.lo, spec.rate_per_s);
        let end_ms = window_start_ms(o.hi - 1, spec.rate_per_s).saturating_add(span_ms);
        stages.record(
            o.index,
            start_ms,
            end_ms.saturating_sub(start_ms),
            &[
                ("targets", (o.hi - o.lo) as u64),
                ("orders_streamed", o.orders_streamed),
                ("probes_sent", o.probes_sent),
            ],
        );
        if spec.trace.shard_spans {
            let shard = worker_wire_id(o.index);
            let (lo64, n64) = (o.lo as u64, (o.hi - o.lo) as u64);
            tracer.record(Component::Control, || TraceEvent::ShardSpan {
                shard,
                start_index: lo64,
                n_targets: n64,
                start_ms,
                sim_ms: end_ms.saturating_sub(start_ms),
            });
        }
    }
    shard_report.push_stage(stages.finish("stream:sharded"));

    let orders_streamed: u64 = outs.iter().map(|o| o.orders_streamed).sum();
    let rate_limiter_stalls: u64 = outs.iter().map(|o| o.rate_limiter_stalls).sum();
    let mut arenas: Vec<RecordArena> = outs.into_iter().map(|o| o.arena).collect();
    arenas.push(late.arena);
    let records = RecordArena::merge(arenas);

    Ok(finalize_outcome(
        spec,
        n_workers,
        span_ms,
        abort,
        &tracer,
        RunTotals {
            records,
            probes_sent,
            failed_workers,
            worker_health,
            telemetry,
            shard_report,
            orders_streamed,
            rate_limiter_stalls,
        },
    ))
}

// ---------------------------------------------------------------------------
// Threaded pipeline (reference)
// ---------------------------------------------------------------------------

/// Run a measurement on the threaded reference pipeline: one OS thread per
/// worker, `crossbeam` channels for the order stream, capture fabric and
/// result stream — the process-shaped concurrency structure of the real
/// system. Produces outcomes bit-identical to [`run_measurement`] for
/// abort-free fault plans (modulo [`MeasurementOutcome::shard_report`],
/// which it leaves empty); kept as the semantic reference and the
/// benchmark baseline the sharded pipeline is measured against.
///
/// # Errors
///
/// As [`run_measurement`].
pub fn run_measurement_threaded(
    world: &Arc<World>,
    spec: &MeasurementSpec,
) -> Result<MeasurementOutcome, MeasurementError> {
    run_measurement_threaded_abortable(world, spec, &AbortHandle::new())
}

/// [`run_measurement_threaded`] with a cancellation handle.
///
/// # Errors
///
/// As [`run_measurement`].
pub fn run_measurement_threaded_abortable(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    abort: &AbortHandle,
) -> Result<MeasurementOutcome, MeasurementError> {
    let n_workers = validated_workers(world, spec)?;
    let span_ms = spec.span_ms(n_workers);
    let tracer = Tracer::new(spec.trace);
    let mut telemetry = base_telemetry(spec, n_workers, span_ms);

    if spec.targets.is_empty() {
        return Ok(empty_hitlist_outcome(spec, n_workers, telemetry, &tracer));
    }

    let key = AuthKey::derive(world.cfg.seed ^ u64::from(spec.id));
    let src_addr = platform_src_addr(spec);

    // Channels: per-worker bounded order queues; unbounded capture fabric
    // (replies in flight; unbounded rules out cyclic backpressure deadlock);
    // one shared result stream.
    let mut order_txs = Vec::with_capacity(n_workers);
    let mut order_rxs = Vec::with_capacity(n_workers);
    let mut cap_txs = Vec::with_capacity(n_workers);
    let mut cap_rxs = Vec::with_capacity(n_workers);
    // The queue bound is denominated in *orders*: batching the stream must
    // not multiply the per-worker in-flight window by the batch size.
    let batch_queue = (ORDER_QUEUE / spec.batch_size.max(1)).max(1);
    for _ in 0..n_workers {
        let (ot, or) = channel::bounded::<ProbeBatch>(batch_queue);
        order_txs.push(ot);
        order_rxs.push(or);
        let (ct, cr) = channel::unbounded();
        cap_txs.push(ct);
        cap_rxs.push(cr);
    }
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    let mut records = Vec::new();
    let mut probes_sent = 0u64;
    let mut failed_workers = Vec::new();
    let mut worker_health: Vec<WorkerHealth> = Vec::with_capacity(n_workers);

    // Streamer-side counters, shared by reference with the stream thread
    // inside the scope. Orders-streamed is a plain sum; stalls count the
    // schedule's rate-limiter waits (the points where the next target's
    // window opens strictly later than the previous one's) — derived from
    // the deterministic schedule, not from channel backpressure, which is
    // scheduler noise.
    let orders_streamed = Counter::new();
    let order_stalls = Counter::new();

    std::thread::scope(|scope| {
        for (w, (orders, captures)) in order_rxs.into_iter().zip(cap_rxs).enumerate() {
            let wid = worker_wire_id(w);
            let start = StartOrder {
                measurement_id: spec.id,
                platform: spec.platform,
                worker_id: wid,
                protocol: spec.protocol,
                encoding: spec.encoding,
                offset_ms: spec.offset_ms,
                span_ms,
                day: spec.day,
                src_addr,
                fail_after: spec.faults.crash_after(wid),
                fabric_faults: spec.faults.fabric,
            };
            // A seal-rejection fault seals this worker's order under a key
            // derived from a corrupted seed, so the worker's own key (R8)
            // refuses it.
            let seal_key = if spec.faults.rejects_seal(wid) {
                AuthKey::derive(world.cfg.seed ^ u64::from(spec.id) ^ 0x0BAD_5EA1)
            } else {
                key
            };
            let sealed = Sealed::seal(seal_key, start);
            let fabric = cap_txs.clone();
            let out = out_tx.clone();
            let out_err = out_tx.clone();
            let world = Arc::clone(world);
            let worker_tracer = tracer.clone();
            scope.spawn(move || {
                // A worker whose start order fails authentication never
                // starts; the platform degrades to the remaining workers
                // instead of poisoning the thread scope (R5).
                if run_worker(
                    &world,
                    key,
                    sealed,
                    orders,
                    captures,
                    fabric,
                    out,
                    worker_tracer,
                )
                .is_err()
                {
                    // laces-lint: allow(discarded-fallibility) — failure event on a channel the aborting CLI may already have closed; the degradation is also recorded by the collector's own accounting
                    let _ = out_err.send(WorkerOut::Event(WorkerEvent::Failed {
                        worker: wid,
                        telemetry: WorkerTelemetry::default(),
                        cause: WorkerFailure::SealRejected,
                    }));
                }
            });
        }
        // The orchestrator keeps no capture senders or result senders.
        drop(cap_txs);
        drop(out_tx);

        // Stream the hitlist at the configured rate. Each target is ordered
        // to every worker; a worker that died has a closed queue and is
        // skipped (R5: measurement continues with the remaining workers).
        let stream_abort = abort.clone();
        let orders_streamed = &orders_streamed;
        let order_stalls = &order_stalls;
        let stream_tracer = tracer.clone();
        scope.spawn(move || {
            let mut txs: Vec<Option<_>> = order_txs.into_iter().map(Some).collect();
            let mut sent = vec![0usize; txs.len()];
            // Per-worker batch accumulators: one channel send per
            // `spec.batch_size` orders instead of one per target. Fault
            // semantics stay per-order — delays and closes are applied to
            // individual orders before they enter a batch.
            let mut pending: Vec<Vec<ProbeOrder>> = txs.iter().map(|_| Vec::new()).collect();
            let flush =
                |w: usize, pending: &mut Vec<Vec<ProbeOrder>>, tx: &channel::Sender<ProbeBatch>| {
                    if pending[w].is_empty() {
                        return;
                    }
                    let orders = std::mem::take(&mut pending[w]);
                    orders_streamed.add(orders.len() as u64);
                    // laces-lint: allow(discarded-fallibility) — a closed order queue means the worker died; skipping it is R5 graceful degradation (the measurement continues with the remaining workers)
                    let _ = tx.send(ProbeBatch { orders });
                };
            let mut aborted = false;
            let mut last_window = 0u64;
            for (i, &target) in spec.targets.iter().enumerate() {
                if stream_abort.is_aborted() {
                    // CLI disconnected: stop streaming; workers wind down.
                    // Accumulated but unsent batches are dropped — the
                    // abort cuts the stream at a batch boundary (R3: no
                    // unnecessary probes).
                    aborted = true;
                    break;
                }
                let window = window_start_ms(i, spec.rate_per_s);
                if window > last_window {
                    order_stalls.inc();
                    last_window = window;
                }
                let order = ProbeOrder {
                    target,
                    window_start_ms: window,
                };
                let prefix = PrefixKey::of(target);
                for w in 0..txs.len() {
                    let wid = worker_wire_id(w);
                    // Non-sender workers (single-VP precheck mode) receive
                    // no orders but still capture replies.
                    if !spec.is_sender(wid) {
                        continue;
                    }
                    if let Some(f) = spec.faults.order_fault(wid) {
                        if i < f.delay_orders {
                            // The channel came up late; early orders are
                            // lost in the disconnected stream.
                            stream_tracer.record_for(Component::Orchestrator, prefix, || {
                                TraceEvent::OrderFault {
                                    prefix,
                                    worker: wid,
                                    cause: OrderFaultCause::Delayed,
                                }
                            });
                            continue;
                        }
                        if f.close_after.is_some_and(|c| sent[w] >= c) {
                            // Dropping the sender closes the worker's order
                            // stream; it completes with what it received —
                            // including a final partial batch.
                            if let Some(tx) = txs[w].take() {
                                flush(w, &mut pending, &tx);
                            }
                            stream_tracer.record_for(Component::Orchestrator, prefix, || {
                                TraceEvent::OrderFault {
                                    prefix,
                                    worker: wid,
                                    cause: OrderFaultCause::ChannelClosed,
                                }
                            });
                            continue;
                        }
                    }
                    if let Some(tx) = &txs[w] {
                        stream_tracer.record_for(Component::Orchestrator, prefix, || {
                            TraceEvent::OrderIssued {
                                prefix,
                                worker: wid,
                                window_start_ms: window,
                            }
                        });
                        pending[w].push(order);
                        sent[w] += 1;
                        if pending[w].len() >= spec.batch_size {
                            flush(w, &mut pending, tx);
                        }
                    }
                }
            }
            // End of hitlist: flush the partial tail batches.
            if !aborted {
                for (w, tx) in txs.iter().enumerate() {
                    if let Some(tx) = tx {
                        flush(w, &mut pending, tx);
                    }
                }
            }
            // Dropping the senders closes every worker's order stream.
        });

        // Aggregate the live result stream (this is the CLI's sink file).
        for msg in out_rx.iter() {
            match msg {
                WorkerOut::Records(batch) => {
                    records.extend(batch);
                    if spec
                        .faults
                        .abort_after_records
                        .is_some_and(|n| records.len() >= n)
                    {
                        // Mid-stream abort fault: the CLI disconnects, but
                        // everything collected so far is kept.
                        abort.abort();
                    }
                }
                WorkerOut::Event(WorkerEvent::Done {
                    worker,
                    telemetry: t,
                }) => {
                    probes_sent += t.probes_sent;
                    merge_worker_telemetry(&mut telemetry, worker, &t);
                    worker_health.push(WorkerHealth {
                        worker,
                        status: WorkerStatus::Completed,
                        probes_sent: t.probes_sent,
                    });
                }
                WorkerOut::Event(WorkerEvent::Failed {
                    worker,
                    telemetry: t,
                    cause,
                }) => {
                    probes_sent += t.probes_sent;
                    merge_worker_telemetry(&mut telemetry, worker, &t);
                    // One unsampled fault event per failed worker: probes it
                    // had not sent and captures it held are attributed to it
                    // by `TraceReport::explain`.
                    tracer.record(Component::Control, || TraceEvent::WorkerFault {
                        worker,
                        cause: match cause {
                            WorkerFailure::Crash => "crash".into(),
                            WorkerFailure::SealRejected => "seal rejected".into(),
                        },
                        after_probes: t.probes_sent,
                    });
                    match cause {
                        WorkerFailure::Crash => {
                            telemetry.add_degraded(DegradedReason::WorkerCrashed { worker });
                        }
                        WorkerFailure::SealRejected => {
                            telemetry.inc(names::orchestrator::SEAL_REJECTIONS, 1);
                            telemetry.add_degraded(DegradedReason::SealRejected { worker });
                        }
                    }
                    failed_workers.push(worker);
                    worker_health.push(WorkerHealth {
                        worker,
                        status: WorkerStatus::Failed,
                        probes_sent: t.probes_sent,
                    });
                }
            }
        }
    });

    Ok(finalize_outcome(
        spec,
        n_workers,
        span_ms,
        abort,
        &tracer,
        RunTotals {
            records,
            probes_sent,
            failed_workers,
            worker_health,
            telemetry,
            shard_report: RunReport::new(),
            orders_streamed: orders_streamed.get(),
            rate_limiter_stalls: order_stalls.get(),
        },
    ))
}

/// Result of a prechecked measurement (§6 future work: "check
/// responsiveness from a single VP before probing from all VPs").
#[derive(Debug, Clone)]
pub struct PrecheckedOutcome {
    /// The full measurement over responsive targets only.
    pub outcome: MeasurementOutcome,
    /// Probes spent by the single-worker precheck pass.
    pub precheck_probes: u64,
    /// Targets that answered the precheck and were probed fully.
    pub responsive_targets: usize,
    /// Targets skipped as unresponsive.
    pub skipped_targets: usize,
}

impl PrecheckedOutcome {
    /// Total probes across both phases.
    pub fn total_probes(&self) -> u64 {
        self.precheck_probes + self.outcome.probes_sent
    }
}

/// A measurement id that lies in the id space reserved for precheck
/// passes (bit [`PRECHECK_ID_BIT`] set) and therefore cannot be prechecked:
/// its derived precheck id would collide with its own — or another
/// measurement's — precheck, and two measurements sharing an id would
/// accept each other's replies.
#[deprecated(
    since = "0.2.0",
    note = "folded into MeasurementError::ReservedId; match on that instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedIdError(pub u32);

#[allow(deprecated)]
impl std::fmt::Display for ReservedIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "measurement id {:#010x} lies in the reserved precheck id space \
             (ids must be below {PRECHECK_ID_BIT:#010x})",
            self.0
        )
    }
}

#[allow(deprecated)]
impl std::error::Error for ReservedIdError {}

/// Run a measurement with a single-worker responsiveness precheck: worker
/// `precheck_worker` probes the full hitlist alone (all workers capture);
/// only targets that answered are then probed by the full platform.
///
/// On a hitlist with unresponsive share `u`, this saves roughly
/// `u × (n_workers - 1) / n_workers` of the probe budget at the cost of
/// missing targets that lose the single precheck probe.
///
/// # Errors
///
/// [`MeasurementError::ReservedId`] when `spec.id` has [`PRECHECK_ID_BIT`]
/// set: the precheck pass needs its own measurement id (replies to the
/// precheck must not validate against the full pass), and ids with that
/// bit are reserved for it. Platform errors as [`run_measurement`].
pub fn run_with_precheck(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    precheck_worker: u16,
) -> Result<PrecheckedOutcome, MeasurementError> {
    if spec.id & PRECHECK_ID_BIT != 0 {
        return Err(MeasurementError::ReservedId { id: spec.id });
    }
    let mut pre = spec.clone();
    pre.id = spec.id | PRECHECK_ID_BIT;
    pre.senders = Some(vec![precheck_worker]);
    let pre_outcome = run_measurement(world, &pre)?;

    let responsive: std::collections::BTreeSet<laces_packet::PrefixKey> =
        pre_outcome.records.iter().map(|r| r.prefix).collect();
    let filtered: Vec<std::net::IpAddr> = spec
        .targets
        .iter()
        .copied()
        .filter(|a| responsive.contains(&laces_packet::PrefixKey::of(*a)))
        .collect();
    let skipped = spec.targets.len() - filtered.len();

    let mut full = spec.clone();
    full.targets = Arc::new(filtered);
    let outcome = run_measurement(world, &full)?;
    Ok(PrecheckedOutcome {
        responsive_targets: outcome.n_targets,
        skipped_targets: skipped,
        precheck_probes: pre_outcome.probes_sent,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_partition_contiguously() {
        for (n, shards) in [(10, 3), (7, 7), (25_419, 16), (5, 1), (3, 16)] {
            let shards = shards.min(n).max(1);
            let mut next = 0;
            for s in 0..shards {
                let (lo, hi) = shard_bounds(n, shards, s);
                assert_eq!(lo, next, "n={n} shards={shards} s={s}");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, n, "slices must cover the hitlist exactly");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..shards)
                .map(|s| {
                    let (lo, hi) = shard_bounds(n, shards, s);
                    hi - lo
                })
                .collect();
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            assert!(max - min <= 1, "n={n} shards={shards} sizes={sizes:?}");
        }
    }

    #[test]
    fn worker_wire_ids_are_exact_in_range() {
        assert_eq!(worker_wire_id(0), 0);
        assert_eq!(worker_wire_id(63), 63);
    }
}

//! The Orchestrator component.
//!
//! The Orchestrator is the central controller: it seals start orders for
//! every Worker, streams the hitlist to them at the configured rate
//! (buffering it so workers never hold it, R10), collects the result
//! stream, and survives worker failures by completing the measurement with
//! the remaining workers (R5).
//!
//! In the real system the components are separate processes connected by
//! authenticated gRPC streams; here each Worker is an OS thread and the
//! streams are `crossbeam` channels, which preserves the concurrency
//! structure (streaming, backpressure, failure isolation) while staying
//! inside one deterministic process.
//!
//! Every run assembles a [`RunReport`]: aggregate and per-worker counters,
//! the RTT distribution, a stage timing on the simulated clock, and the
//! typed degradation events. For abort-free fault plans the report is
//! bit-identical across reruns (see `laces-obs` for the rules that make
//! that hold).

use std::sync::Arc;

use crossbeam::channel;
use laces_netsim::{platform as plat, World};
use laces_obs::{metrics, Counter, DegradedReason, Histogram, RunReport, SimClock, StageTimer};
use laces_packet::{IpVersion, PrefixKey};
use laces_trace::{Component, OrderFaultCause, TraceEvent, Tracer};

use crate::auth::{AuthKey, Sealed};
use crate::error::MeasurementError;
use crate::rate::window_start_ms;
use crate::results::{
    MeasurementOutcome, WorkerEvent, WorkerFailure, WorkerHealth, WorkerStatus, WorkerTelemetry,
};
use crate::spec::MeasurementSpec;
use crate::worker::{run_worker, ProbeBatch, ProbeOrder, StartOrder, WorkerOut};

/// How many orders may queue per worker before the hitlist stream blocks
/// (the paper's Orchestrator buffers the hitlist and streams it; workers
/// keep only a small in-flight window).
const ORDER_QUEUE: usize = 4_096;

/// Measurement ids with this bit set are reserved for the internal
/// precheck pass of [`run_with_precheck`]; user measurements must stay
/// below it. The explicit partition guarantees a precheck can never share
/// an id with any user measurement (two measurements sharing an id would
/// accept each other's replies).
pub const PRECHECK_ID_BIT: u32 = 0x8000_0000;

/// Run a measurement to completion and aggregate the result stream.
///
/// # Errors
///
/// [`MeasurementError::NotAnycast`] when the spec's platform is a unicast
/// VP platform, [`MeasurementError::WorkerCount`] when the platform's
/// worker count cannot be attributed by the probe encodings (1..=64).
pub fn run_measurement(
    world: &Arc<World>,
    spec: &MeasurementSpec,
) -> Result<MeasurementOutcome, MeasurementError> {
    run_measurement_abortable(world, spec, &AbortHandle::new())
}

/// A cancellation handle for a running measurement (R5: "Disconnecting the
/// CLI can be used to cancel incorrect measurements"). Cloneable; setting
/// it stops the Orchestrator's hitlist stream, after which workers finish
/// their in-flight probes, drain captures, and report normally — no
/// unnecessary probes are sent (R3).
#[derive(Debug, Clone, Default)]
pub struct AbortHandle(Arc<std::sync::atomic::AtomicBool>);

impl AbortHandle {
    /// A fresh, un-triggered handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancel the measurement (idempotent).
    pub fn abort(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_aborted(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Merge one worker's telemetry into the run report under the per-worker
/// namespace and the aggregate counters.
fn merge_worker_telemetry(report: &mut RunReport, worker: u16, t: &WorkerTelemetry) {
    let w = format!("worker.{worker:03}");
    report.inc(&format!("{w}.probes_sent"), t.probes_sent);
    report.inc(&format!("{w}.records_streamed"), t.records_streamed);
    report.inc(&format!("{w}.captures_rejected"), t.captures_rejected);
    report.inc("worker.probes_sent", t.probes_sent);
    report.inc("worker.records_streamed", t.records_streamed);
    report.inc("worker.captures_rejected", t.captures_rejected);
    report.inc("fabric.replies_delivered", t.replies_delivered);
    report.inc("fabric.unanswered", t.unanswered);
    report.inc("fabric.dropped", t.fabric_dropped);
    report.inc("fabric.duplicated", t.fabric_duplicated);
}

/// [`run_measurement`] with a cancellation handle.
///
/// # Errors
///
/// As [`run_measurement`].
pub fn run_measurement_abortable(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    abort: &AbortHandle,
) -> Result<MeasurementOutcome, MeasurementError> {
    let platform = world.platform(spec.platform);
    if !platform.is_anycast() {
        return Err(MeasurementError::NotAnycast {
            platform: spec.platform,
        });
    }
    let n_workers = platform.n_vps();
    if !(1..=64).contains(&n_workers) {
        return Err(MeasurementError::WorkerCount { n_workers });
    }

    let span_ms = spec.span_ms(n_workers);
    let tracer = Tracer::new(spec.trace);
    let mut telemetry = RunReport::new();
    telemetry.set_gauge("orchestrator.n_workers", n_workers as u64);
    telemetry.set_gauge("orchestrator.n_targets", spec.targets.len() as u64);
    telemetry.set_gauge("orchestrator.span_ms", span_ms);
    telemetry.set_gauge("orchestrator.rate_per_s", u64::from(spec.rate_per_s));
    telemetry.set_gauge(
        "orchestrator.probe_budget",
        spec.probe_budget(if spec.senders.is_some() {
            spec.senders.as_ref().map_or(0, |s| s.len())
        } else {
            n_workers
        }),
    );
    if let Some(fabric) = &spec.faults.fabric {
        // Planned fabric fault rates, in permille, next to the observed
        // fabric.dropped / fabric.duplicated counters.
        telemetry.set_gauge(
            "fabric.planned_drop_permille",
            (fabric.drop_rate * 1000.0) as u64,
        );
        telemetry.set_gauge(
            "fabric.planned_dup_permille",
            (fabric.dup_rate * 1000.0) as u64,
        );
    }

    // An empty hitlist is a complete (and cheap) measurement: spawning a
    // platform of workers to stream zero orders would only burn threads.
    // Prechecks over fully-unresponsive target sets hit this path. The
    // fault plan still applies where it would with real workers: start
    // orders are authenticated before any probing, so seal rejections fail
    // their workers even here, and a crash scheduled after zero orders
    // fires with zero orders delivered; later crashes and order-channel
    // faults need deliveries that never happen.
    if spec.targets.is_empty() {
        let worker_health: Vec<WorkerHealth> = (0..n_workers)
            .map(|w| {
                let w = w as u16;
                let status = if spec.faults.rejects_seal(w) {
                    telemetry.inc("orchestrator.seal_rejections", 1);
                    telemetry.add_degraded(DegradedReason::SealRejected { worker: w });
                    tracer.record(Component::Control, || TraceEvent::WorkerFault {
                        worker: w,
                        cause: "seal rejected".into(),
                        after_probes: 0,
                    });
                    WorkerStatus::Failed
                } else if spec.faults.crash_after(w) == Some(0) {
                    telemetry.add_degraded(DegradedReason::WorkerCrashed { worker: w });
                    tracer.record(Component::Control, || TraceEvent::WorkerFault {
                        worker: w,
                        cause: "crash".into(),
                        after_probes: 0,
                    });
                    WorkerStatus::Failed
                } else {
                    WorkerStatus::Completed
                };
                WorkerHealth {
                    worker: w,
                    status,
                    probes_sent: 0,
                }
            })
            .collect();
        let failed_workers: Vec<u16> = worker_health
            .iter()
            .filter(|h| h.status == WorkerStatus::Failed)
            .map(|h| h.worker)
            .collect();
        return Ok(MeasurementOutcome {
            measurement_id: spec.id,
            platform: spec.platform,
            protocol: spec.protocol,
            n_workers,
            probes_sent: 0,
            n_targets: 0,
            records: Vec::new(),
            failed_workers,
            worker_health,
            telemetry,
            trace_report: tracer.snapshot(""),
        });
    }

    let key = AuthKey::derive(world.cfg.seed ^ u64::from(spec.id));

    // Family of the measurement follows the first target (hitlists are
    // single-family); the platform announces both an IPv4 and IPv6 prefix.
    let family = spec
        .targets
        .first()
        .map(|a| IpVersion::of(*a))
        .unwrap_or(IpVersion::V4);
    let src_addr = match family {
        IpVersion::V4 => plat::anycast_src_v4(spec.platform),
        IpVersion::V6 => plat::anycast_src_v6(spec.platform),
    };

    // Channels: per-worker bounded order queues; unbounded capture fabric
    // (replies in flight; unbounded rules out cyclic backpressure deadlock);
    // one shared result stream.
    let mut order_txs = Vec::with_capacity(n_workers);
    let mut order_rxs = Vec::with_capacity(n_workers);
    let mut cap_txs = Vec::with_capacity(n_workers);
    let mut cap_rxs = Vec::with_capacity(n_workers);
    // The queue bound is denominated in *orders*: batching the stream must
    // not multiply the per-worker in-flight window by the batch size.
    let batch_queue = (ORDER_QUEUE / spec.batch_size.max(1)).max(1);
    for _ in 0..n_workers {
        let (ot, or) = channel::bounded::<ProbeBatch>(batch_queue);
        order_txs.push(ot);
        order_rxs.push(or);
        let (ct, cr) = channel::unbounded();
        cap_txs.push(ct);
        cap_rxs.push(cr);
    }
    let (out_tx, out_rx) = channel::unbounded::<WorkerOut>();

    let mut records = Vec::new();
    let mut probes_sent = 0u64;
    let mut failed_workers = Vec::new();
    let mut worker_health: Vec<WorkerHealth> = Vec::with_capacity(n_workers);

    // Streamer-side counters, shared by reference with the stream thread
    // inside the scope. Orders-streamed is a plain sum; stalls count the
    // schedule's rate-limiter waits (the points where the next target's
    // window opens strictly later than the previous one's) — derived from
    // the deterministic schedule, not from channel backpressure, which is
    // scheduler noise.
    let orders_streamed = Counter::new();
    let order_stalls = Counter::new();

    std::thread::scope(|scope| {
        for (w, (orders, captures)) in order_rxs.into_iter().zip(cap_rxs).enumerate() {
            let start = StartOrder {
                measurement_id: spec.id,
                platform: spec.platform,
                worker_id: w as u16,
                protocol: spec.protocol,
                encoding: spec.encoding,
                offset_ms: spec.offset_ms,
                span_ms,
                day: spec.day,
                src_addr,
                fail_after: spec.faults.crash_after(w as u16),
                fabric_faults: spec.faults.fabric,
            };
            // A seal-rejection fault seals this worker's order under a key
            // derived from a corrupted seed, so the worker's own key (R8)
            // refuses it.
            let seal_key = if spec.faults.rejects_seal(w as u16) {
                AuthKey::derive(world.cfg.seed ^ u64::from(spec.id) ^ 0x0BAD_5EA1)
            } else {
                key
            };
            let sealed = Sealed::seal(seal_key, start);
            let fabric = cap_txs.clone();
            let out = out_tx.clone();
            let out_err = out_tx.clone();
            let world = Arc::clone(world);
            let worker_tracer = tracer.clone();
            scope.spawn(move || {
                // A worker whose start order fails authentication never
                // starts; the platform degrades to the remaining workers
                // instead of poisoning the thread scope (R5).
                if run_worker(
                    &world,
                    key,
                    sealed,
                    orders,
                    captures,
                    fabric,
                    out,
                    worker_tracer,
                )
                .is_err()
                {
                    let _ = out_err.send(WorkerOut::Event(WorkerEvent::Failed {
                        worker: w as u16,
                        telemetry: WorkerTelemetry::default(),
                        cause: WorkerFailure::SealRejected,
                    }));
                }
            });
        }
        // The orchestrator keeps no capture senders or result senders.
        drop(cap_txs);
        drop(out_tx);

        // Stream the hitlist at the configured rate. Each target is ordered
        // to every worker; a worker that died has a closed queue and is
        // skipped (R5: measurement continues with the remaining workers).
        let stream_abort = abort.clone();
        let orders_streamed = &orders_streamed;
        let order_stalls = &order_stalls;
        let stream_tracer = tracer.clone();
        scope.spawn(move || {
            let mut txs: Vec<Option<_>> = order_txs.into_iter().map(Some).collect();
            let mut sent = vec![0usize; txs.len()];
            // Per-worker batch accumulators: one channel send per
            // `spec.batch_size` orders instead of one per target. Fault
            // semantics stay per-order — delays and closes are applied to
            // individual orders before they enter a batch.
            let mut pending: Vec<Vec<ProbeOrder>> = txs.iter().map(|_| Vec::new()).collect();
            let flush =
                |w: usize, pending: &mut Vec<Vec<ProbeOrder>>, tx: &channel::Sender<ProbeBatch>| {
                    if pending[w].is_empty() {
                        return;
                    }
                    let orders = std::mem::take(&mut pending[w]);
                    orders_streamed.add(orders.len() as u64);
                    let _ = tx.send(ProbeBatch { orders });
                };
            let mut aborted = false;
            let mut last_window = 0u64;
            for (i, &target) in spec.targets.iter().enumerate() {
                if stream_abort.is_aborted() {
                    // CLI disconnected: stop streaming; workers wind down.
                    // Accumulated but unsent batches are dropped — the
                    // abort cuts the stream at a batch boundary (R3: no
                    // unnecessary probes).
                    aborted = true;
                    break;
                }
                let window = window_start_ms(i, spec.rate_per_s);
                if window > last_window {
                    order_stalls.inc();
                    last_window = window;
                }
                let order = ProbeOrder {
                    target,
                    window_start_ms: window,
                };
                let prefix = PrefixKey::of(target);
                for w in 0..txs.len() {
                    // Non-sender workers (single-VP precheck mode) receive
                    // no orders but still capture replies.
                    if !spec.is_sender(w as u16) {
                        continue;
                    }
                    if let Some(f) = spec.faults.order_fault(w as u16) {
                        if i < f.delay_orders {
                            // The channel came up late; early orders are
                            // lost in the disconnected stream.
                            stream_tracer.record_for(Component::Orchestrator, prefix, || {
                                TraceEvent::OrderFault {
                                    prefix,
                                    worker: w as u16,
                                    cause: OrderFaultCause::Delayed,
                                }
                            });
                            continue;
                        }
                        if f.close_after.is_some_and(|c| sent[w] >= c) {
                            // Dropping the sender closes the worker's order
                            // stream; it completes with what it received —
                            // including a final partial batch.
                            if let Some(tx) = txs[w].take() {
                                flush(w, &mut pending, &tx);
                            }
                            stream_tracer.record_for(Component::Orchestrator, prefix, || {
                                TraceEvent::OrderFault {
                                    prefix,
                                    worker: w as u16,
                                    cause: OrderFaultCause::ChannelClosed,
                                }
                            });
                            continue;
                        }
                    }
                    if let Some(tx) = &txs[w] {
                        stream_tracer.record_for(Component::Orchestrator, prefix, || {
                            TraceEvent::OrderIssued {
                                prefix,
                                worker: w as u16,
                                window_start_ms: window,
                            }
                        });
                        pending[w].push(order);
                        sent[w] += 1;
                        if pending[w].len() >= spec.batch_size {
                            flush(w, &mut pending, tx);
                        }
                    }
                }
            }
            // End of hitlist: flush the partial tail batches.
            if !aborted {
                for (w, tx) in txs.iter().enumerate() {
                    if let Some(tx) = tx {
                        flush(w, &mut pending, tx);
                    }
                }
            }
            // Dropping the senders closes every worker's order stream.
        });

        // Aggregate the live result stream (this is the CLI's sink file).
        for msg in out_rx.iter() {
            match msg {
                WorkerOut::Records(batch) => {
                    records.extend(batch);
                    if spec
                        .faults
                        .abort_after_records
                        .is_some_and(|n| records.len() >= n)
                    {
                        // Mid-stream abort fault: the CLI disconnects, but
                        // everything collected so far is kept.
                        abort.abort();
                    }
                }
                WorkerOut::Event(WorkerEvent::Done {
                    worker,
                    telemetry: t,
                }) => {
                    probes_sent += t.probes_sent;
                    merge_worker_telemetry(&mut telemetry, worker, &t);
                    worker_health.push(WorkerHealth {
                        worker,
                        status: WorkerStatus::Completed,
                        probes_sent: t.probes_sent,
                    });
                }
                WorkerOut::Event(WorkerEvent::Failed {
                    worker,
                    telemetry: t,
                    cause,
                }) => {
                    probes_sent += t.probes_sent;
                    merge_worker_telemetry(&mut telemetry, worker, &t);
                    // One unsampled fault event per failed worker: probes it
                    // had not sent and captures it held are attributed to it
                    // by `TraceReport::explain`.
                    tracer.record(Component::Control, || TraceEvent::WorkerFault {
                        worker,
                        cause: match cause {
                            WorkerFailure::Crash => "crash".into(),
                            WorkerFailure::SealRejected => "seal rejected".into(),
                        },
                        after_probes: t.probes_sent,
                    });
                    match cause {
                        WorkerFailure::Crash => {
                            telemetry.add_degraded(DegradedReason::WorkerCrashed { worker });
                        }
                        WorkerFailure::SealRejected => {
                            telemetry.inc("orchestrator.seal_rejections", 1);
                            telemetry.add_degraded(DegradedReason::SealRejected { worker });
                        }
                    }
                    failed_workers.push(worker);
                    worker_health.push(WorkerHealth {
                        worker,
                        status: WorkerStatus::Failed,
                        probes_sent: t.probes_sent,
                    });
                }
            }
        }
    });

    failed_workers.sort_unstable();
    worker_health.sort_unstable_by_key(|h| h.worker);
    // Canonical record order: workers race to the result stream, so the
    // arrival order is scheduler noise. Sorting makes equal runs serialise
    // identically (fault plans are replayable bit-for-bit).
    records.sort_unstable_by(|a, b| {
        (
            a.prefix,
            a.tx_worker,
            a.rx_worker,
            a.tx_time_ms,
            a.rx_time_ms,
        )
            .cmp(&(
                b.prefix,
                b.tx_worker,
                b.rx_worker,
                b.tx_time_ms,
                b.rx_time_ms,
            ))
    });

    telemetry.inc("orchestrator.orders_streamed", orders_streamed.get());
    telemetry.inc("orchestrator.rate_limiter_stalls", order_stalls.get());
    telemetry.inc("orchestrator.records_collected", records.len() as u64);
    if abort.is_aborted() {
        telemetry.inc("orchestrator.aborts", 1);
        telemetry.add_degraded(DegradedReason::Aborted);
    }
    // The RTT distribution is computed from the canonical record list (a
    // multiset — order-independent by construction).
    let mut rtts = Histogram::new(&metrics::RTT_BUCKETS_MS);
    for r in &records {
        if let Some(rtt) = r.rtt_ms() {
            rtts.observe(rtt);
        }
    }
    telemetry.record_histogram("worker.rtt_ms", rtts.snapshot());
    // Stage timing on the simulated clock: the probing phase spans the
    // rate-limited hitlist stream plus the last worker's offset window
    // (R6's quantity, per measurement).
    let mut clock = SimClock::new();
    let mut stage = StageTimer::start(format!("measurement:{:?}", spec.protocol), &clock);
    stage.count("targets", spec.targets.len() as u64);
    stage.count("probes_sent", probes_sent);
    let sim_ms = window_start_ms(spec.targets.len().saturating_sub(1), spec.rate_per_s) + span_ms;
    clock.advance(sim_ms);
    telemetry.push_stage(stage.finish(&clock));
    tracer.record(Component::Control, || TraceEvent::StageSpan {
        name: format!("measurement:{:?}", spec.protocol),
        start_ms: 0,
        sim_ms,
    });

    Ok(MeasurementOutcome {
        measurement_id: spec.id,
        platform: spec.platform,
        protocol: spec.protocol,
        n_workers,
        probes_sent,
        n_targets: spec.targets.len(),
        records,
        failed_workers,
        worker_health,
        telemetry,
        trace_report: tracer.snapshot(""),
    })
}

/// Result of a prechecked measurement (§6 future work: "check
/// responsiveness from a single VP before probing from all VPs").
#[derive(Debug, Clone)]
pub struct PrecheckedOutcome {
    /// The full measurement over responsive targets only.
    pub outcome: MeasurementOutcome,
    /// Probes spent by the single-worker precheck pass.
    pub precheck_probes: u64,
    /// Targets that answered the precheck and were probed fully.
    pub responsive_targets: usize,
    /// Targets skipped as unresponsive.
    pub skipped_targets: usize,
}

impl PrecheckedOutcome {
    /// Total probes across both phases.
    pub fn total_probes(&self) -> u64 {
        self.precheck_probes + self.outcome.probes_sent
    }
}

/// A measurement id that lies in the id space reserved for precheck
/// passes (bit [`PRECHECK_ID_BIT`] set) and therefore cannot be prechecked:
/// its derived precheck id would collide with its own — or another
/// measurement's — precheck, and two measurements sharing an id would
/// accept each other's replies.
#[deprecated(
    since = "0.2.0",
    note = "folded into MeasurementError::ReservedId; match on that instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedIdError(pub u32);

#[allow(deprecated)]
impl std::fmt::Display for ReservedIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "measurement id {:#010x} lies in the reserved precheck id space \
             (ids must be below {PRECHECK_ID_BIT:#010x})",
            self.0
        )
    }
}

#[allow(deprecated)]
impl std::error::Error for ReservedIdError {}

/// Run a measurement with a single-worker responsiveness precheck: worker
/// `precheck_worker` probes the full hitlist alone (all workers capture);
/// only targets that answered are then probed by the full platform.
///
/// On a hitlist with unresponsive share `u`, this saves roughly
/// `u × (n_workers - 1) / n_workers` of the probe budget at the cost of
/// missing targets that lose the single precheck probe.
///
/// # Errors
///
/// [`MeasurementError::ReservedId`] when `spec.id` has [`PRECHECK_ID_BIT`]
/// set: the precheck pass needs its own measurement id (replies to the
/// precheck must not validate against the full pass), and ids with that
/// bit are reserved for it. Platform errors as [`run_measurement`].
pub fn run_with_precheck(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    precheck_worker: u16,
) -> Result<PrecheckedOutcome, MeasurementError> {
    if spec.id & PRECHECK_ID_BIT != 0 {
        return Err(MeasurementError::ReservedId { id: spec.id });
    }
    let mut pre = spec.clone();
    pre.id = spec.id | PRECHECK_ID_BIT;
    pre.senders = Some(vec![precheck_worker]);
    let pre_outcome = run_measurement(world, &pre)?;

    let responsive: std::collections::BTreeSet<laces_packet::PrefixKey> =
        pre_outcome.records.iter().map(|r| r.prefix).collect();
    let filtered: Vec<std::net::IpAddr> = spec
        .targets
        .iter()
        .copied()
        .filter(|a| responsive.contains(&laces_packet::PrefixKey::of(*a)))
        .collect();
    let skipped = spec.targets.len() - filtered.len();

    let mut full = spec.clone();
    full.targets = Arc::new(filtered);
    let outcome = run_measurement(world, &full)?;
    Ok(PrecheckedOutcome {
        responsive_targets: outcome.n_targets,
        skipped_targets: skipped,
        precheck_probes: pre_outcome.probes_sent,
        outcome,
    })
}

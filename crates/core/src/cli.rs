//! The CLI component: measurement definitions from command-line arguments.
//!
//! The CLI is deliberately thin (paper §4.1.1): it parses a measurement
//! definition, forwards it to the Orchestrator, and sinks the result
//! stream. This module provides the argument parsing used by the example
//! binaries; the heavy lifting lives in [`crate::orchestrator`].

use laces_packet::{IpVersion, ProbeEncoding, Protocol};

/// A parsed CLI request (before target resolution).
#[derive(Debug, Clone, PartialEq)]
pub struct CliRequest {
    /// Protocol to probe.
    pub protocol: Protocol,
    /// Address family.
    pub family: IpVersion,
    /// Hitlist streaming rate (targets per second).
    pub rate_per_s: u32,
    /// Inter-worker offset, milliseconds.
    pub offset_ms: u64,
    /// Probe encoding.
    pub encoding: ProbeEncoding,
    /// Platform name (resolved against the world's platform registry).
    pub platform: String,
    /// Simulated day.
    pub day: u32,
}

impl Default for CliRequest {
    fn default() -> Self {
        CliRequest {
            protocol: Protocol::Icmp,
            family: IpVersion::V4,
            rate_per_s: 10_000,
            offset_ms: 1_000,
            encoding: ProbeEncoding::PerWorker,
            platform: "production-32".to_string(),
            day: 0,
        }
    }
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage string for the example binaries.
pub const USAGE: &str = "\
usage: laces [options]
  --protocol icmp|tcp|udp|chaos   probing protocol (default icmp)
  --ipv4 | --ipv6                 address family (default ipv4)
  --rate N                        hitlist rate, targets/second (default 10000)
  --offset MS                     inter-worker probe offset in ms (default 1000)
  --static                        send byte-identical probes from all workers
  --platform NAME                 probing platform (default production-32)
  --day N                         simulated day (default 0)
";

/// Parse CLI-style arguments into a request.
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<CliRequest, ParseError> {
    let mut req = CliRequest::default();
    let mut it = args.iter().map(|s| s.as_ref());
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| ParseError(format!("{name} requires a value")))
        };
        match arg {
            "--protocol" => {
                req.protocol = match value("--protocol")?.to_lowercase().as_str() {
                    "icmp" => Protocol::Icmp,
                    "tcp" => Protocol::Tcp,
                    "udp" | "dns" => Protocol::Udp,
                    "chaos" => Protocol::Chaos,
                    other => return Err(ParseError(format!("unknown protocol {other:?}"))),
                }
            }
            "--ipv4" => req.family = IpVersion::V4,
            "--ipv6" => req.family = IpVersion::V6,
            "--rate" => {
                req.rate_per_s = value("--rate")?
                    .parse()
                    .map_err(|_| ParseError("--rate expects an integer".into()))?;
                if req.rate_per_s == 0 {
                    return Err(ParseError("--rate must be positive".into()));
                }
            }
            "--offset" => {
                req.offset_ms = value("--offset")?
                    .parse()
                    .map_err(|_| ParseError("--offset expects an integer".into()))?
            }
            "--static" => req.encoding = ProbeEncoding::Static,
            "--platform" => req.platform = value("--platform")?,
            "--day" => {
                req.day = value("--day")?
                    .parse()
                    .map_err(|_| ParseError("--day expects an integer".into()))?
            }
            other => return Err(ParseError(format!("unknown argument {other:?}\n{USAGE}"))),
        }
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_daily_census() {
        let req = parse_args::<&str>(&[]).unwrap();
        assert_eq!(req, CliRequest::default());
        assert_eq!(req.offset_ms, 1_000);
        assert_eq!(req.protocol, Protocol::Icmp);
    }

    #[test]
    fn full_flag_set() {
        let req = parse_args(&[
            "--protocol",
            "tcp",
            "--ipv6",
            "--rate",
            "500",
            "--offset",
            "0",
            "--static",
            "--platform",
            "cctld-12",
            "--day",
            "7",
        ])
        .unwrap();
        assert_eq!(req.protocol, Protocol::Tcp);
        assert_eq!(req.family, IpVersion::V6);
        assert_eq!(req.rate_per_s, 500);
        assert_eq!(req.offset_ms, 0);
        assert_eq!(req.encoding, ProbeEncoding::Static);
        assert_eq!(req.platform, "cctld-12");
        assert_eq!(req.day, 7);
    }

    #[test]
    fn dns_aliases_udp() {
        assert_eq!(
            parse_args(&["--protocol", "dns"]).unwrap().protocol,
            Protocol::Udp
        );
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_args(&["--bogus"]).is_err());
        assert!(parse_args(&["--rate", "fast"]).is_err());
        assert!(parse_args(&["--rate", "0"]).is_err());
        assert!(parse_args(&["--rate"]).is_err());
        assert!(parse_args(&["--protocol", "quic"]).is_err());
    }
}

//! Wire formats for LACeS probes and replies.
//!
//! The LACeS measurement methodology identifies, for every response captured
//! at any worker, *which worker sent the probe that elicited it* and *when*.
//! This is achieved by encoding metadata in protocol fields that targets echo
//! back verbatim:
//!
//! * **ICMP** — the echo-request payload (echoed in the echo reply),
//! * **UDP/DNS** — the query name (echoed in the response's question
//!   section),
//! * **TCP** — the acknowledgement number of the SYN/ACK probe (echoed as
//!   the sequence number of the RST the target sends in reply).
//!
//! This crate implements full encode/decode for all of these, including
//! Internet checksums, so the simulated wire carries real bytes and the
//! worker-side capture path parses real packets.
//!
//! It also defines the census keyspace: [`Prefix24`] and [`Prefix48`], the
//! smallest prefix granularities generally propagated by BGP, at which the
//! census probes and reports.

#![forbid(unsafe_code)]

pub mod addr;
pub mod checksum;
pub mod dns;
pub mod icmp;
pub mod probe;
pub mod tcp;
pub mod udp;

pub use addr::{Cidr4, Prefix24, Prefix48, PrefixKey};
pub use probe::{IpVersion, Packet, ProbeEncoding, ProbeMeta, Protocol, ReplyInfo};

/// Errors produced when parsing packets off the (simulated) wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is shorter than the fixed header requires.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Which protocol's checksum failed.
        what: &'static str,
    },
    /// A field held a value we do not understand.
    Malformed {
        /// Description of the problem.
        what: &'static str,
    },
    /// The packet parsed but does not belong to our measurement.
    NotOurs,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            PacketError::BadChecksum { what } => write!(f, "bad {what} checksum"),
            PacketError::Malformed { what } => write!(f, "malformed packet: {what}"),
            PacketError::NotOurs => write!(f, "packet does not belong to this measurement"),
        }
    }
}

impl std::error::Error for PacketError {}

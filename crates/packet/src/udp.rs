//! UDP datagrams (carrying DNS for the census's UDP probing).

use std::net::IpAddr;

use crate::checksum;
use crate::PacketError;

/// Well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// A parsed UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Serialise a UDP datagram with checksum (pseudo-header included; the
/// checksum is mandatory for IPv6 and we always set it for IPv4 too).
pub fn build(src: IpAddr, dst: IpAddr, src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    build_into_with(src, dst, src_port, dst_port, &mut buf, |out| {
        out.extend_from_slice(payload)
    });
    buf
}

/// [`build`] into a reusable buffer, with the payload appended in place by
/// `write_payload` (so DNS queries/responses can be serialised directly after
/// the UDP header without an intermediate allocation). `out` is cleared
/// first; the length and checksum fields are patched after the payload is in.
pub fn build_into_with(
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    out: &mut Vec<u8>,
    write_payload: impl FnOnce(&mut Vec<u8>),
) {
    out.clear();
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // length, patched below
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    write_payload(out);
    let len = out.len() as u16;
    out[4..6].copy_from_slice(&len.to_be_bytes());
    let mut ck = checksum::pseudo_header_checksum(src, dst, 17, out);
    if ck == 0 {
        // RFC 768: a computed zero checksum is transmitted as all ones.
        ck = 0xFFFF;
    }
    out[6..8].copy_from_slice(&ck.to_be_bytes());
}

/// A parsed UDP datagram borrowing its payload from the packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpView<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes (borrowed).
    pub payload: &'a [u8],
}

/// Parse and checksum-verify a UDP datagram.
pub fn parse(src: IpAddr, dst: IpAddr, bytes: &[u8]) -> Result<UdpDatagram, PacketError> {
    parse_view(src, dst, bytes).map(|v| UdpDatagram {
        src_port: v.src_port,
        dst_port: v.dst_port,
        payload: v.payload.to_vec(),
    })
}

/// [`parse`] without copying the payload out of `bytes`.
pub fn parse_view<'a>(
    src: IpAddr,
    dst: IpAddr,
    bytes: &'a [u8],
) -> Result<UdpView<'a>, PacketError> {
    if bytes.len() < 8 {
        return Err(PacketError::Truncated {
            what: "UDP header",
            need: 8,
            have: bytes.len(),
        });
    }
    let len = usize::from(u16::from_be_bytes(bytes[4..6].try_into().unwrap()));
    if len != bytes.len() {
        return Err(PacketError::Malformed {
            what: "UDP length mismatch",
        });
    }
    if checksum::pseudo_header_checksum(src, dst, 17, bytes) != 0 {
        return Err(PacketError::BadChecksum { what: "UDP" });
    }
    Ok(UdpView {
        src_port: u16::from_be_bytes(bytes[0..2].try_into().unwrap()),
        dst_port: u16::from_be_bytes(bytes[2..4].try_into().unwrap()),
        payload: &bytes[8..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let dst: IpAddr = "203.0.113.5".parse().unwrap();
        let d = parse(src, dst, &build(src, dst, 4444, DNS_PORT, b"hello")).unwrap();
        assert_eq!(d.src_port, 4444);
        assert_eq!(d.dst_port, DNS_PORT);
        assert_eq!(d.payload, b"hello");
    }

    #[test]
    fn corruption_detected() {
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let dst: IpAddr = "203.0.113.5".parse().unwrap();
        let mut bytes = build(src, dst, 4444, DNS_PORT, b"hello");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            parse(src, dst, &bytes),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn length_field_must_match() {
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let dst: IpAddr = "203.0.113.5".parse().unwrap();
        let mut bytes = build(src, dst, 4444, DNS_PORT, b"hello");
        bytes.push(0);
        assert!(matches!(
            parse(src, dst, &bytes),
            Err(PacketError::Malformed { .. })
        ));
    }

    #[test]
    fn short_datagram_is_truncated() {
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        let dst: IpAddr = "203.0.113.5".parse().unwrap();
        assert!(matches!(
            parse(src, dst, &[1, 2, 3]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn v6_roundtrip() {
        let src: IpAddr = "2001:db8::1".parse().unwrap();
        let dst: IpAddr = "2001:db8::2".parse().unwrap();
        let d = parse(src, dst, &build(src, dst, 9999, DNS_PORT, b"abc")).unwrap();
        assert_eq!(d.payload, b"abc");
    }
}

//! Prefix types: the census keyspace.
//!
//! The census probes one representative address per IPv4 `/24` and IPv6
//! `/48` — the smallest prefix sizes generally propagated in BGP — and all
//! classification results are keyed by these prefixes.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

/// An IPv4 `/24` prefix. Stored as the network address with the host octet
/// forced to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The `/24` containing `addr`.
    #[inline]
    pub fn of(addr: Ipv4Addr) -> Self {
        Prefix24(u32::from(addr) & 0xFFFF_FF00)
    }

    /// Construct from a raw network address; the host octet is masked off.
    #[inline]
    pub fn from_network(net: u32) -> Self {
        Prefix24(net & 0xFFFF_FF00)
    }

    /// The network address as a `u32`.
    #[inline]
    pub fn network(self) -> u32 {
        self.0
    }

    /// The address with host octet `host` inside this prefix.
    #[inline]
    pub fn addr(self, host: u8) -> Ipv4Addr {
        Ipv4Addr::from(self.0 | u32::from(host))
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & 0xFFFF_FF00 == self.0
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", Ipv4Addr::from(self.0))
    }
}

/// An IPv6 `/48` prefix. Stored as the network address with the low 80 bits
/// forced to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix48(u128);

impl Prefix48 {
    const MASK: u128 = !((1u128 << 80) - 1);

    /// The `/48` containing `addr`.
    #[inline]
    pub fn of(addr: Ipv6Addr) -> Self {
        Prefix48(u128::from(addr) & Self::MASK)
    }

    /// Construct from a raw network value; the low 80 bits are masked off.
    #[inline]
    pub fn from_network(net: u128) -> Self {
        Prefix48(net & Self::MASK)
    }

    /// The network address as a `u128`.
    #[inline]
    pub fn network(self) -> u128 {
        self.0
    }

    /// The address with interface-id `iid` inside this prefix.
    #[inline]
    pub fn addr(self, iid: u64) -> Ipv6Addr {
        Ipv6Addr::from(self.0 | u128::from(iid))
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub fn contains(self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & Self::MASK == self.0
    }
}

impl fmt::Display for Prefix48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/48", Ipv6Addr::from(self.0))
    }
}

/// A census key: either an IPv4 `/24` or an IPv6 `/48`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrefixKey {
    /// IPv4 `/24`.
    V4(Prefix24),
    /// IPv6 `/48`.
    V6(Prefix48),
}

impl PrefixKey {
    /// The prefix containing `addr` at census granularity.
    pub fn of(addr: IpAddr) -> Self {
        match addr {
            IpAddr::V4(a) => PrefixKey::V4(Prefix24::of(a)),
            IpAddr::V6(a) => PrefixKey::V6(Prefix48::of(a)),
        }
    }

    /// Whether this is an IPv4 key.
    pub fn is_v4(&self) -> bool {
        matches!(self, PrefixKey::V4(_))
    }
}

impl fmt::Display for PrefixKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixKey::V4(p) => p.fmt(f),
            PrefixKey::V6(p) => p.fmt(f),
        }
    }
}

/// An IPv4 CIDR prefix of arbitrary length, as seen in BGP announcements.
///
/// Used for the pfx2as-style aggregation (§5.6) and the BGPTools comparison
/// (Table 7): a BGP-announced prefix covers `2^(24-len)` census `/24`s (for
/// `len <= 24`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cidr4 {
    net: u32,
    len: u8,
}

impl Cidr4 {
    /// Create a prefix, masking host bits. Panics if `len > 32`.
    pub fn new(net: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Cidr4 {
            net: net & mask,
            len,
        }
    }

    /// The network address.
    pub fn network(self) -> u32 {
        self.net
    }

    /// The prefix length.
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether the prefix length is zero (the default route).
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Whether this prefix contains the given `/24`.
    pub fn contains_24(self, p: Prefix24) -> bool {
        if self.len > 24 {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        p.network() & mask == self.net
    }

    /// Number of `/24`s covered (0 for prefixes longer than /24).
    pub fn count_24s(self) -> u32 {
        if self.len > 24 {
            0
        } else {
            1u32 << (24 - self.len)
        }
    }

    /// Iterate over all covered `/24`s.
    pub fn iter_24s(self) -> impl Iterator<Item = Prefix24> {
        let n = self.count_24s();
        let base = self.net;
        (0..n).map(move |i| Prefix24::from_network(base + (i << 8)))
    }
}

impl fmt::Display for Cidr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.net), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix24_masks_host_octet() {
        let p = Prefix24::of(Ipv4Addr::new(192, 0, 2, 77));
        assert_eq!(p.addr(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(p.addr(1), Ipv4Addr::new(192, 0, 2, 1));
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 0)));
        assert_eq!(p.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn prefix48_masks_low_bits() {
        let a: Ipv6Addr = "2001:db8:42:9999::1".parse().unwrap();
        let p = Prefix48::of(a);
        assert_eq!(p.addr(0), "2001:db8:42::".parse::<Ipv6Addr>().unwrap());
        assert!(p.contains("2001:db8:42:ffff::5".parse().unwrap()));
        assert!(!p.contains("2001:db8:43::1".parse().unwrap()));
        assert_eq!(p.to_string(), "2001:db8:42::/48");
    }

    #[test]
    fn prefix_key_dispatches_on_version() {
        let k4 = PrefixKey::of("10.1.2.3".parse().unwrap());
        let k6 = PrefixKey::of("2001:db8::1".parse().unwrap());
        assert!(k4.is_v4());
        assert!(!k6.is_v4());
        assert_ne!(k4, k6);
    }

    #[test]
    fn cidr_contains_and_counts() {
        let c = Cidr4::new(u32::from(Ipv4Addr::new(10, 0, 0, 0)), 16);
        assert_eq!(c.count_24s(), 256);
        assert!(c.contains_24(Prefix24::of(Ipv4Addr::new(10, 0, 200, 1))));
        assert!(!c.contains_24(Prefix24::of(Ipv4Addr::new(10, 1, 0, 1))));
        assert_eq!(c.iter_24s().count(), 256);

        let c24 = Cidr4::new(u32::from(Ipv4Addr::new(10, 0, 0, 0)), 24);
        assert_eq!(c24.count_24s(), 1);
        assert_eq!(
            c24.iter_24s().next().unwrap(),
            Prefix24::of(Ipv4Addr::new(10, 0, 0, 9))
        );

        let c32 = Cidr4::new(u32::from(Ipv4Addr::new(10, 0, 0, 1)), 32);
        assert_eq!(c32.count_24s(), 0);
        assert!(!c32.contains_24(Prefix24::of(Ipv4Addr::new(10, 0, 0, 1))));
    }

    #[test]
    fn cidr_display_and_masking() {
        let c = Cidr4::new(u32::from(Ipv4Addr::new(10, 1, 2, 3)), 11);
        assert_eq!(c.to_string(), "10.0.0.0/11");
        assert_eq!(c.count_24s(), 8192);
    }

    #[test]
    fn prefix_ordering_is_by_network() {
        let a = Prefix24::of(Ipv4Addr::new(10, 0, 0, 0));
        let b = Prefix24::of(Ipv4Addr::new(10, 0, 1, 0));
        assert!(a < b);
    }
}

//! ICMPv4 and ICMPv6 echo messages with LACeS probe payloads.
//!
//! The probe payload carries a magic tag, the measurement id, the sending
//! worker's id, and the transmit timestamp. Echo replies copy the payload
//! verbatim, so the capturing worker can attribute every reply to the worker
//! and instant that elicited it (§4.1.2 of the paper).

use std::net::IpAddr;

use crate::checksum;
use crate::probe::{ProbeEncoding, ProbeMeta};
use crate::PacketError;

/// ICMPv4 echo request type.
pub const V4_ECHO_REQUEST: u8 = 8;
/// ICMPv4 echo reply type.
pub const V4_ECHO_REPLY: u8 = 0;
/// ICMPv6 echo request type.
pub const V6_ECHO_REQUEST: u8 = 128;
/// ICMPv6 echo reply type.
pub const V6_ECHO_REPLY: u8 = 129;

/// Magic prefix identifying a LACeS probe payload.
pub const PAYLOAD_MAGIC: &[u8; 4] = b"LACS";
/// Payload layout version.
pub const PAYLOAD_VERSION: u8 = 1;
/// Total payload length: magic(4) + version(1) + measurement(4) + worker(2) + time(8).
pub const PAYLOAD_LEN: usize = 19;

/// Identifier used for every LACeS echo request.
pub const ECHO_IDENT: u16 = 0xACCA;

/// Worker-id sentinel written under [`ProbeEncoding::Static`]: real worker
/// ids are small, so this value unambiguously marks attribution-free probes.
pub const STATIC_WORKER_SENTINEL: u16 = 0xFFFF;

/// A parsed ICMP echo message (either family; the family is a property of
/// the enclosing [`Packet`](crate::probe::Packet), not of the ICMP body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// ICMP type octet.
    pub icmp_type: u8,
    /// Identifier field.
    pub ident: u16,
    /// Sequence number field.
    pub seq: u16,
    /// Echo payload.
    pub payload: Vec<u8>,
}

impl IcmpEcho {
    /// Whether this is an echo request (either family).
    pub fn is_request(&self) -> bool {
        self.icmp_type == V4_ECHO_REQUEST || self.icmp_type == V6_ECHO_REQUEST
    }

    /// Whether this is an echo reply (either family).
    pub fn is_reply(&self) -> bool {
        self.icmp_type == V4_ECHO_REPLY || self.icmp_type == V6_ECHO_REPLY
    }
}

/// Serialise the probe metadata into the echo payload.
pub fn encode_payload(meta: &ProbeMeta, encoding: ProbeEncoding) -> Vec<u8> {
    let mut p = Vec::with_capacity(PAYLOAD_LEN);
    encode_payload_into(meta, encoding, &mut p);
    p
}

/// Append the echo payload for `meta` to `out` (no intermediate allocation).
pub fn encode_payload_into(meta: &ProbeMeta, encoding: ProbeEncoding, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(PAYLOAD_MAGIC);
    out.push(PAYLOAD_VERSION);
    out.extend_from_slice(&meta.measurement_id.to_be_bytes());
    match encoding {
        ProbeEncoding::PerWorker => {
            out.extend_from_slice(&meta.worker_id.to_be_bytes());
            out.extend_from_slice(&meta.tx_time_ms.to_be_bytes());
        }
        ProbeEncoding::Static => {
            // §5.1.4 load-balancer experiment: every worker sends byte-for-byte
            // identical probes, so neither worker id nor timestamp may vary.
            out.extend_from_slice(&STATIC_WORKER_SENTINEL.to_be_bytes());
            out.extend_from_slice(&0u64.to_be_bytes());
        }
    }
    debug_assert_eq!(out.len() - start, PAYLOAD_LEN);
}

/// Recover probe metadata from an echoed payload.
pub fn decode_payload(payload: &[u8]) -> Result<(u32, Option<u16>, Option<u64>), PacketError> {
    if payload.len() < PAYLOAD_LEN {
        return Err(PacketError::Truncated {
            what: "LACeS payload",
            need: PAYLOAD_LEN,
            have: payload.len(),
        });
    }
    if &payload[0..4] != PAYLOAD_MAGIC {
        return Err(PacketError::NotOurs);
    }
    if payload[4] != PAYLOAD_VERSION {
        return Err(PacketError::Malformed {
            what: "unknown LACeS payload version",
        });
    }
    let measurement_id = u32::from_be_bytes(payload[5..9].try_into().unwrap());
    let worker_id = u16::from_be_bytes(payload[9..11].try_into().unwrap());
    let tx_time = u64::from_be_bytes(payload[11..19].try_into().unwrap());
    if worker_id == STATIC_WORKER_SENTINEL {
        // Static encoding: attribution information intentionally absent.
        Ok((measurement_id, None, None))
    } else {
        Ok((measurement_id, Some(worker_id), Some(tx_time)))
    }
}

/// Build an echo request carrying `meta`, checksummed for the given address
/// family (`src`/`dst` are needed for the ICMPv6 pseudo-header).
pub fn build_echo_request(
    src: IpAddr,
    dst: IpAddr,
    meta: &ProbeMeta,
    encoding: ProbeEncoding,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + PAYLOAD_LEN);
    build_echo_request_into(src, dst, meta, encoding, &mut out);
    out
}

/// [`build_echo_request`] into a reusable buffer: `out` is cleared and
/// refilled; the steady state allocates nothing.
pub fn build_echo_request_into(
    src: IpAddr,
    dst: IpAddr,
    meta: &ProbeMeta,
    encoding: ProbeEncoding,
    out: &mut Vec<u8>,
) {
    let seq = match encoding {
        // The sequence number also varies per worker, mimicking a ping train
        // (the paper's synchronized probing looks like one ping per second
        // from the target's perspective).
        ProbeEncoding::PerWorker => meta.worker_id,
        ProbeEncoding::Static => 0,
    };
    let req_type = if src.is_ipv4() {
        V4_ECHO_REQUEST
    } else {
        V6_ECHO_REQUEST
    };
    write_header(req_type, ECHO_IDENT, seq, out);
    encode_payload_into(meta, encoding, out);
    patch_checksum(src, dst, out);
}

/// Build the echo reply a responsive target produces for `request`.
///
/// Per RFC 792 / RFC 4443, the identifier, sequence number, and payload are
/// copied verbatim; only the type changes and the checksum is recomputed
/// (with source and destination swapped for the v6 pseudo-header).
pub fn build_echo_reply(req_src: IpAddr, req_dst: IpAddr, request: &IcmpEcho) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + request.payload.len());
    build_echo_reply_into(req_src, req_dst, &request.view(), &mut out);
    out
}

/// [`build_echo_reply`] into a reusable buffer from a borrowed request view.
pub fn build_echo_reply_into(
    req_src: IpAddr,
    req_dst: IpAddr,
    request: &IcmpEchoView<'_>,
    out: &mut Vec<u8>,
) {
    let reply_type = if req_src.is_ipv4() {
        V4_ECHO_REPLY
    } else {
        V6_ECHO_REPLY
    };
    write_header(reply_type, request.ident, request.seq, out);
    out.extend_from_slice(request.payload);
    patch_checksum(req_dst, req_src, out);
}

fn write_header(icmp_type: u8, ident: u16, seq: u16, out: &mut Vec<u8>) {
    out.clear();
    out.push(icmp_type);
    out.push(0); // code
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
}

fn patch_checksum(src: IpAddr, dst: IpAddr, buf: &mut [u8]) {
    let ck = if src.is_ipv4() {
        checksum::internet_checksum(buf)
    } else {
        checksum::pseudo_header_checksum(src, dst, 58, buf)
    };
    buf[2..4].copy_from_slice(&ck.to_be_bytes());
}

/// A parsed ICMP echo message borrowing its payload from the packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpEchoView<'a> {
    /// ICMP type octet.
    pub icmp_type: u8,
    /// Identifier field.
    pub ident: u16,
    /// Sequence number field.
    pub seq: u16,
    /// Echo payload (borrowed).
    pub payload: &'a [u8],
}

impl IcmpEchoView<'_> {
    /// Whether this is an echo request (either family).
    pub fn is_request(&self) -> bool {
        self.icmp_type == V4_ECHO_REQUEST || self.icmp_type == V6_ECHO_REQUEST
    }

    /// Whether this is an echo reply (either family).
    pub fn is_reply(&self) -> bool {
        self.icmp_type == V4_ECHO_REPLY || self.icmp_type == V6_ECHO_REPLY
    }
}

impl IcmpEcho {
    /// Borrow this message as an [`IcmpEchoView`].
    pub fn view(&self) -> IcmpEchoView<'_> {
        IcmpEchoView {
            icmp_type: self.icmp_type,
            ident: self.ident,
            seq: self.seq,
            payload: &self.payload,
        }
    }
}

/// Parse and checksum-verify an ICMP message.
pub fn parse(src: IpAddr, dst: IpAddr, bytes: &[u8]) -> Result<IcmpEcho, PacketError> {
    parse_view(src, dst, bytes).map(|v| IcmpEcho {
        icmp_type: v.icmp_type,
        ident: v.ident,
        seq: v.seq,
        payload: v.payload.to_vec(),
    })
}

/// [`parse`] without copying the payload out of `bytes`.
pub fn parse_view<'a>(
    src: IpAddr,
    dst: IpAddr,
    bytes: &'a [u8],
) -> Result<IcmpEchoView<'a>, PacketError> {
    if bytes.len() < 8 {
        return Err(PacketError::Truncated {
            what: "ICMP header",
            need: 8,
            have: bytes.len(),
        });
    }
    let ok = if src.is_ipv4() {
        checksum::verify(bytes)
    } else {
        checksum::pseudo_header_checksum(src, dst, 58, bytes) == 0
    };
    if !ok {
        return Err(PacketError::BadChecksum { what: "ICMP" });
    }
    let icmp_type = bytes[0];
    if bytes[1] != 0 {
        return Err(PacketError::Malformed {
            what: "nonzero ICMP code",
        });
    }
    Ok(IcmpEchoView {
        icmp_type,
        ident: u16::from_be_bytes(bytes[4..6].try_into().unwrap()),
        seq: u16::from_be_bytes(bytes[6..8].try_into().unwrap()),
        payload: &bytes[8..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC4: &str = "192.0.2.1";
    const DST4: &str = "198.51.100.7";
    const SRC6: &str = "2001:db8::1";
    const DST6: &str = "2001:db8:ffff::7";

    fn meta() -> ProbeMeta {
        ProbeMeta {
            measurement_id: 42,
            worker_id: 17,
            tx_time_ms: 1_234_567,
        }
    }

    #[test]
    fn v4_request_roundtrip() {
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        let bytes = build_echo_request(src, dst, &meta(), ProbeEncoding::PerWorker);
        let msg = parse(src, dst, &bytes).unwrap();
        assert!(msg.is_request());
        assert_eq!(msg.ident, ECHO_IDENT);
        assert_eq!(msg.seq, 17);
        let (m, w, t) = decode_payload(&msg.payload).unwrap();
        assert_eq!((m, w, t), (42, Some(17), Some(1_234_567)));
    }

    #[test]
    fn v6_request_roundtrip() {
        let src: IpAddr = SRC6.parse().unwrap();
        let dst: IpAddr = DST6.parse().unwrap();
        let bytes = build_echo_request(src, dst, &meta(), ProbeEncoding::PerWorker);
        let msg = parse(src, dst, &bytes).unwrap();
        assert!(msg.is_request());
        let (m, w, t) = decode_payload(&msg.payload).unwrap();
        assert_eq!((m, w, t), (42, Some(17), Some(1_234_567)));
    }

    #[test]
    fn reply_echoes_payload_and_flips_type() {
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        let req_bytes = build_echo_request(src, dst, &meta(), ProbeEncoding::PerWorker);
        let req = parse(src, dst, &req_bytes).unwrap();
        let reply_bytes = build_echo_reply(src, dst, &req);
        // The reply travels dst -> src.
        let reply = parse(dst, src, &reply_bytes).unwrap();
        assert!(reply.is_reply());
        assert_eq!(reply.payload, req.payload);
        assert_eq!(reply.seq, req.seq);
    }

    #[test]
    fn v6_reply_checksum_binds_addresses() {
        let src: IpAddr = SRC6.parse().unwrap();
        let dst: IpAddr = DST6.parse().unwrap();
        let req = parse(
            src,
            dst,
            &build_echo_request(src, dst, &meta(), ProbeEncoding::PerWorker),
        )
        .unwrap();
        let reply_bytes = build_echo_reply(src, dst, &req);
        assert!(parse(dst, src, &reply_bytes).is_ok());
        // Note: swapping src/dst does NOT change the one's-complement
        // pseudo-header sum (addition is commutative), but a different
        // address must fail verification.
        let other: IpAddr = "2001:db8:dead::1".parse().unwrap();
        assert!(matches!(
            parse(other, src, &reply_bytes),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn static_encoding_is_identical_across_workers() {
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        let a = build_echo_request(
            src,
            dst,
            &ProbeMeta {
                measurement_id: 9,
                worker_id: 1,
                tx_time_ms: 111,
            },
            ProbeEncoding::Static,
        );
        let b = build_echo_request(
            src,
            dst,
            &ProbeMeta {
                measurement_id: 9,
                worker_id: 30,
                tx_time_ms: 999,
            },
            ProbeEncoding::Static,
        );
        assert_eq!(a, b, "static probes must be byte-identical");
        let msg = parse(src, dst, &a).unwrap();
        let (m, w, t) = decode_payload(&msg.payload).unwrap();
        assert_eq!((m, w, t), (9, None, None));
    }

    #[test]
    fn per_worker_probes_differ_in_checksum_and_payload() {
        // §5.1.4: the regular measurement varies payload and checksum.
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        let a = build_echo_request(
            src,
            dst,
            &ProbeMeta {
                measurement_id: 9,
                worker_id: 1,
                tx_time_ms: 111,
            },
            ProbeEncoding::PerWorker,
        );
        let b = build_echo_request(
            src,
            dst,
            &ProbeMeta {
                measurement_id: 9,
                worker_id: 2,
                tx_time_ms: 112,
            },
            ProbeEncoding::PerWorker,
        );
        assert_ne!(a, b);
        assert_ne!(a[2..4], b[2..4], "checksums should differ");
    }

    #[test]
    fn corrupted_bytes_fail_checksum() {
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        let mut bytes = build_echo_request(src, dst, &meta(), ProbeEncoding::PerWorker);
        bytes[10] ^= 0xFF;
        assert!(matches!(
            parse(src, dst, &bytes),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    /// A v4 echo request's bytes must not depend on the destination: the
    /// v4 ICMP checksum has no pseudo-header. The GCD engine's batch path
    /// relies on this to serve one probe template to a whole target slice;
    /// the v6 counterpart (pseudo-header covers the addresses) must keep
    /// differing, so the engine never templates v6 batches.
    #[test]
    fn v4_echo_request_bytes_ignore_destination() {
        let src: IpAddr = SRC4.parse().unwrap();
        let a = build_echo_request(
            src,
            DST4.parse().unwrap(),
            &meta(),
            ProbeEncoding::PerWorker,
        );
        let b = build_echo_request(
            src,
            "203.0.113.250".parse().unwrap(),
            &meta(),
            ProbeEncoding::PerWorker,
        );
        assert_eq!(a, b);

        let src6: IpAddr = SRC6.parse().unwrap();
        let c = build_echo_request(
            src6,
            DST6.parse().unwrap(),
            &meta(),
            ProbeEncoding::PerWorker,
        );
        let d = build_echo_request(
            src6,
            "2001:db8:eeee::9".parse().unwrap(),
            &meta(),
            ProbeEncoding::PerWorker,
        );
        assert_ne!(c, d, "v6 checksum must cover the destination");
    }

    #[test]
    fn foreign_payload_is_not_ours() {
        let payload = b"PINGPINGPINGPINGPING";
        assert!(matches!(decode_payload(payload), Err(PacketError::NotOurs)));
    }

    #[test]
    fn short_messages_are_truncated_errors() {
        let src: IpAddr = SRC4.parse().unwrap();
        let dst: IpAddr = DST4.parse().unwrap();
        assert!(matches!(
            parse(src, dst, &[8, 0, 0]),
            Err(PacketError::Truncated { .. })
        ));
        assert!(matches!(
            decode_payload(&[1, 2, 3]),
            Err(PacketError::Truncated { .. })
        ));
    }
}

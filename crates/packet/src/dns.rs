//! Minimal DNS wire format: A/AAAA queries with probe metadata encoded in
//! the query name, and CHAOS-class TXT queries per RFC 4892.
//!
//! For UDP/DNS probing the census sends an `A` (or `AAAA`) query whose qname
//! encodes the measurement id, worker id, and transmit time; DNS servers echo
//! the question section in their response, so the reply is attributable no
//! matter which worker captures it. For CHAOS probing the qname is the fixed
//! `hostname.bind`, so attribution rides in the 16-bit message id instead
//! (which responders also echo).

use std::fmt::Write as _;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::probe::ProbeMeta;
use crate::PacketError;

/// Query type A (IPv4 host address).
pub const TYPE_A: u16 = 1;
/// Query type AAAA (IPv6 host address).
pub const TYPE_AAAA: u16 = 28;
/// Query type TXT.
pub const TYPE_TXT: u16 = 16;
/// Class IN.
pub const CLASS_IN: u16 = 1;
/// Class CHAOS.
pub const CLASS_CH: u16 = 3;

/// Zone under which probe qnames are minted. `.invalid` is reserved
/// (RFC 2606) and can never collide with a real delegation.
pub const PROBE_ZONE: &str = "census.laces.invalid";

/// The RFC 4892 CHAOS qname used to ask a server for its identity.
pub const CHAOS_QNAME: &str = "hostname.bind";

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Query name, dot-separated, without trailing dot.
    pub qname: String,
    /// Query type.
    pub qtype: u16,
    /// Query class.
    pub qclass: u16,
}

/// A resource record in the answer section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: String,
    /// RR type.
    pub rtype: u16,
    /// RR class.
    pub rclass: u16,
    /// Time to live.
    pub ttl: u32,
    /// Raw rdata.
    pub rdata: Vec<u8>,
}

impl ResourceRecord {
    /// Decode TXT rdata into its character-strings.
    pub fn txt_strings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.rdata.len() {
            let len = usize::from(self.rdata[i]);
            i += 1;
            let end = (i + len).min(self.rdata.len());
            out.push(String::from_utf8_lossy(&self.rdata[i..end]).into_owned());
            i = end;
        }
        out
    }
}

/// A parsed DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Message id.
    pub id: u16,
    /// QR bit: true for responses.
    pub is_response: bool,
    /// Question section (LACeS messages always carry exactly one question).
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// The sole question, if the message has exactly one.
    pub fn question(&self) -> Option<&Question> {
        if self.questions.len() == 1 {
            self.questions.first()
        } else {
            None
        }
    }
}

/// Mint the probe qname for `meta`:
/// `p<meas:8hex><worker:4hex><time:16hex>.census.laces.invalid`.
pub fn probe_qname(meta: &ProbeMeta) -> String {
    let mut label = String::with_capacity(29);
    label.push('p');
    let _ = write!(
        label,
        "{:08x}{:04x}{:016x}",
        meta.measurement_id, meta.worker_id, meta.tx_time_ms
    );
    format!("{label}.{PROBE_ZONE}")
}

/// Recover probe metadata from a probe qname. Returns `NotOurs` for names
/// outside the probe zone.
pub fn parse_probe_qname(qname: &str) -> Result<ProbeMeta, PacketError> {
    let suffix = format!(".{PROBE_ZONE}");
    let label = qname.strip_suffix(&suffix).ok_or(PacketError::NotOurs)?;
    let hex = label.strip_prefix('p').ok_or(PacketError::NotOurs)?;
    if hex.len() != 28 {
        return Err(PacketError::Malformed {
            what: "probe qname label length",
        });
    }
    let measurement_id =
        u32::from_str_radix(&hex[0..8], 16).map_err(|_| PacketError::Malformed {
            what: "probe qname measurement id",
        })?;
    let worker_id = u16::from_str_radix(&hex[8..12], 16).map_err(|_| PacketError::Malformed {
        what: "probe qname worker id",
    })?;
    let tx_time_ms = u64::from_str_radix(&hex[12..28], 16).map_err(|_| PacketError::Malformed {
        what: "probe qname timestamp",
    })?;
    Ok(ProbeMeta {
        measurement_id,
        worker_id,
        tx_time_ms,
    })
}

/// Build an A (or AAAA, for v6 measurements) query carrying `meta`.
pub fn build_probe_query(meta: &ProbeMeta, qtype: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    write_probe_query(meta, qtype, &mut out);
    out
}

/// Append the wire bytes of [`build_probe_query`] to `out`, minting the
/// probe qname directly into the buffer (no `String` allocation).
pub fn write_probe_query(meta: &ProbeMeta, qtype: u16, out: &mut Vec<u8>) {
    write_header(meta.worker_id, false, 1, 0, out);
    out.push(29); // label: 'p' + 28 hex chars
    out.push(b'p');
    push_hex(out, u64::from(meta.measurement_id), 8);
    push_hex(out, u64::from(meta.worker_id), 4);
    push_hex(out, meta.tx_time_ms, 16);
    write_name(out, PROBE_ZONE);
    out.extend_from_slice(&qtype.to_be_bytes());
    out.extend_from_slice(&CLASS_IN.to_be_bytes());
}

/// Build a CHAOS `hostname.bind TXT` query; attribution via the id field.
pub fn build_chaos_query(worker_id: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    write_chaos_query(worker_id, &mut out);
    out
}

/// Append the wire bytes of [`build_chaos_query`] to `out`.
pub fn write_chaos_query(worker_id: u16, out: &mut Vec<u8>) {
    write_header(worker_id, false, 1, 0, out);
    write_name(out, CHAOS_QNAME);
    out.extend_from_slice(&TYPE_TXT.to_be_bytes());
    out.extend_from_slice(&CLASS_CH.to_be_bytes());
}

/// The answer a simulated DNS server attaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsAnswerData {
    /// IN A record.
    A(Ipv4Addr),
    /// IN AAAA record.
    Aaaa(Ipv6Addr),
    /// TXT character-string (CHAOS identity).
    Txt(String),
}

impl DnsAnswerData {
    /// Borrow as the allocation-free [`DnsAnswerRef`] variant.
    pub fn borrowed(&self) -> DnsAnswerRef<'_> {
        match self {
            DnsAnswerData::A(a) => DnsAnswerRef::A(*a),
            DnsAnswerData::Aaaa(a) => DnsAnswerRef::Aaaa(*a),
            DnsAnswerData::Txt(s) => DnsAnswerRef::Txt(s),
        }
    }
}

/// Borrowed form of [`DnsAnswerData`] so responses can be written without
/// cloning the TXT identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsAnswerRef<'a> {
    /// IN A record.
    A(Ipv4Addr),
    /// IN AAAA record.
    Aaaa(Ipv6Addr),
    /// TXT character-string (CHAOS identity).
    Txt(&'a str),
}

/// Build the response to `query`, echoing its question and id.
pub fn build_response(query: &DnsMessage, answer: Option<DnsAnswerData>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    write_response(
        query,
        answer.as_ref().map(DnsAnswerData::borrowed),
        &mut out,
    );
    out
}

/// Append the wire bytes of [`build_response`] to `out` without building
/// intermediate `ResourceRecord`s.
pub fn write_response(query: &DnsMessage, answer: Option<DnsAnswerRef<'_>>, out: &mut Vec<u8>) {
    let q = query.questions.first();
    let ancount = u16::from(q.is_some() && answer.is_some());
    write_header(query.id, true, query.questions.len() as u16, ancount, out);
    for q in &query.questions {
        write_name(out, &q.qname);
        out.extend_from_slice(&q.qtype.to_be_bytes());
        out.extend_from_slice(&q.qclass.to_be_bytes());
    }
    if let (Some(q), Some(data)) = (q, answer) {
        write_name(out, &q.qname);
        let (rtype, rclass) = match data {
            DnsAnswerRef::A(_) => (TYPE_A, CLASS_IN),
            DnsAnswerRef::Aaaa(_) => (TYPE_AAAA, CLASS_IN),
            DnsAnswerRef::Txt(_) => (TYPE_TXT, q.qclass),
        };
        out.extend_from_slice(&rtype.to_be_bytes());
        out.extend_from_slice(&rclass.to_be_bytes());
        out.extend_from_slice(&60u32.to_be_bytes()); // ttl
        match data {
            DnsAnswerRef::A(a) => {
                out.extend_from_slice(&4u16.to_be_bytes());
                out.extend_from_slice(&a.octets());
            }
            DnsAnswerRef::Aaaa(a) => {
                out.extend_from_slice(&16u16.to_be_bytes());
                out.extend_from_slice(&a.octets());
            }
            DnsAnswerRef::Txt(s) => {
                // One character-string, capped at the 255-byte TXT limit.
                let bytes = &s.as_bytes()[..s.len().min(255)];
                out.extend_from_slice(&((bytes.len() + 1) as u16).to_be_bytes());
                out.push(bytes.len() as u8);
                out.extend_from_slice(bytes);
            }
        }
    }
}

fn write_header(id: u16, response: bool, qdcount: u16, ancount: u16, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.to_be_bytes());
    // Flags: QR bit plus RD for queries (cosmetic; targets ignore it).
    let flags: u16 = if response { 0x8180 } else { 0x0100 };
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&qdcount.to_be_bytes());
    out.extend_from_slice(&ancount.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // nscount
    out.extend_from_slice(&0u16.to_be_bytes()); // arcount
}

fn push_hex(out: &mut Vec<u8>, v: u64, width: u32) {
    for i in (0..width).rev() {
        let nibble = ((v >> (i * 4)) & 0xF) as u8;
        out.push(if nibble < 10 {
            b'0' + nibble
        } else {
            b'a' + (nibble - 10)
        });
    }
}

fn write_name(buf: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        debug_assert!(bytes.len() <= 63, "label too long: {label}");
        buf.push(bytes.len() as u8);
        buf.extend_from_slice(bytes);
    }
    buf.push(0);
}

fn read_name(bytes: &[u8], mut pos: usize) -> Result<(String, usize), PacketError> {
    let mut name = String::new();
    loop {
        let len = *bytes.get(pos).ok_or(PacketError::Truncated {
            what: "DNS name",
            need: pos + 1,
            have: bytes.len(),
        })?;
        pos += 1;
        if len == 0 {
            break;
        }
        if len & 0xC0 != 0 {
            return Err(PacketError::Malformed {
                what: "DNS name compression unsupported",
            });
        }
        let end = pos + usize::from(len);
        let label = bytes.get(pos..end).ok_or(PacketError::Truncated {
            what: "DNS label",
            need: end,
            have: bytes.len(),
        })?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(&String::from_utf8_lossy(label));
        pos = end;
    }
    Ok((name, pos))
}

/// Parse a DNS message (uncompressed names only, as LACeS emits).
pub fn parse(bytes: &[u8]) -> Result<DnsMessage, PacketError> {
    if bytes.len() < 12 {
        return Err(PacketError::Truncated {
            what: "DNS header",
            need: 12,
            have: bytes.len(),
        });
    }
    let id = u16::from_be_bytes(bytes[0..2].try_into().unwrap());
    let flags = u16::from_be_bytes(bytes[2..4].try_into().unwrap());
    let qdcount = u16::from_be_bytes(bytes[4..6].try_into().unwrap());
    let ancount = u16::from_be_bytes(bytes[6..8].try_into().unwrap());
    let mut pos = 12;
    let mut questions = Vec::with_capacity(qdcount.into());
    for _ in 0..qdcount {
        let (qname, p) = read_name(bytes, pos)?;
        pos = p;
        let rest = bytes.get(pos..pos + 4).ok_or(PacketError::Truncated {
            what: "DNS question",
            need: pos + 4,
            have: bytes.len(),
        })?;
        questions.push(Question {
            qname,
            qtype: u16::from_be_bytes(rest[0..2].try_into().unwrap()),
            qclass: u16::from_be_bytes(rest[2..4].try_into().unwrap()),
        });
        pos += 4;
    }
    let mut answers = Vec::with_capacity(ancount.into());
    for _ in 0..ancount {
        let (name, p) = read_name(bytes, pos)?;
        pos = p;
        let fixed = bytes.get(pos..pos + 10).ok_or(PacketError::Truncated {
            what: "DNS RR",
            need: pos + 10,
            have: bytes.len(),
        })?;
        let rtype = u16::from_be_bytes(fixed[0..2].try_into().unwrap());
        let rclass = u16::from_be_bytes(fixed[2..4].try_into().unwrap());
        let ttl = u32::from_be_bytes(fixed[4..8].try_into().unwrap());
        let rdlen = usize::from(u16::from_be_bytes(fixed[8..10].try_into().unwrap()));
        pos += 10;
        let rdata = bytes.get(pos..pos + rdlen).ok_or(PacketError::Truncated {
            what: "DNS rdata",
            need: pos + rdlen,
            have: bytes.len(),
        })?;
        answers.push(ResourceRecord {
            name,
            rtype,
            rclass,
            ttl,
            rdata: rdata.to_vec(),
        });
        pos += rdlen;
    }
    Ok(DnsMessage {
        id,
        is_response: flags & 0x8000 != 0,
        questions,
        answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ProbeMeta {
        ProbeMeta {
            measurement_id: 0xDEADBEEF,
            worker_id: 31,
            tx_time_ms: 987_654_321,
        }
    }

    #[test]
    fn qname_roundtrip() {
        let m = meta();
        let name = probe_qname(&m);
        assert!(name.ends_with(PROBE_ZONE));
        assert_eq!(parse_probe_qname(&name).unwrap(), m);
    }

    #[test]
    fn foreign_qname_is_not_ours() {
        assert!(matches!(
            parse_probe_qname("www.example.com"),
            Err(PacketError::NotOurs)
        ));
        assert!(matches!(
            parse_probe_qname(&format!("x123.{PROBE_ZONE}")),
            Err(PacketError::NotOurs)
        ));
    }

    #[test]
    fn bad_hex_is_malformed() {
        let name = format!("p{}.{}", "zz".repeat(14), PROBE_ZONE);
        assert!(matches!(
            parse_probe_qname(&name),
            Err(PacketError::Malformed { .. })
        ));
    }

    #[test]
    fn a_query_roundtrip() {
        let m = meta();
        let bytes = build_probe_query(&m, TYPE_A);
        let msg = parse(&bytes).unwrap();
        assert!(!msg.is_response);
        assert_eq!(msg.id, 31);
        let q = msg.question().unwrap();
        assert_eq!(q.qtype, TYPE_A);
        assert_eq!(q.qclass, CLASS_IN);
        assert_eq!(parse_probe_qname(&q.qname).unwrap(), m);
    }

    #[test]
    fn response_echoes_question_and_id() {
        let query = parse(&build_probe_query(&meta(), TYPE_A)).unwrap();
        let resp_bytes =
            build_response(&query, Some(DnsAnswerData::A(Ipv4Addr::new(192, 0, 2, 1))));
        let resp = parse(&resp_bytes).unwrap();
        assert!(resp.is_response);
        assert_eq!(resp.id, query.id);
        assert_eq!(resp.question().unwrap(), query.question().unwrap());
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rdata, vec![192, 0, 2, 1]);
    }

    #[test]
    fn aaaa_response_carries_16_bytes() {
        let m = meta();
        let query = parse(&build_probe_query(&m, TYPE_AAAA)).unwrap();
        let addr: Ipv6Addr = "2001:db8::42".parse().unwrap();
        let resp = parse(&build_response(&query, Some(DnsAnswerData::Aaaa(addr)))).unwrap();
        assert_eq!(resp.answers[0].rdata, addr.octets().to_vec());
    }

    #[test]
    fn chaos_query_and_identity_response() {
        let bytes = build_chaos_query(7);
        let query = parse(&bytes).unwrap();
        assert_eq!(query.id, 7);
        let q = query.question().unwrap();
        assert_eq!(q.qname, CHAOS_QNAME);
        assert_eq!(q.qclass, CLASS_CH);
        assert_eq!(q.qtype, TYPE_TXT);

        let resp = parse(&build_response(
            &query,
            Some(DnsAnswerData::Txt("site-ams01".into())),
        ))
        .unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(
            resp.answers[0].txt_strings(),
            vec!["site-ams01".to_string()]
        );
    }

    #[test]
    fn empty_response_for_unresponsive_name() {
        let query = parse(&build_probe_query(&meta(), TYPE_A)).unwrap();
        let resp = parse(&build_response(&query, None)).unwrap();
        assert!(resp.is_response);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn truncated_messages_error() {
        assert!(matches!(
            parse(&[0, 1, 2]),
            Err(PacketError::Truncated { .. })
        ));
        let bytes = build_probe_query(&meta(), TYPE_A);
        assert!(parse(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn txt_strings_handles_multiple_strings() {
        let rr = ResourceRecord {
            name: "x".into(),
            rtype: TYPE_TXT,
            rclass: CLASS_CH,
            ttl: 0,
            rdata: vec![2, b'a', b'b', 1, b'c'],
        };
        assert_eq!(rr.txt_strings(), vec!["ab".to_string(), "c".to_string()]);
    }
}

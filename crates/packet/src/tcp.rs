//! TCP SYN/ACK probes and the RST replies they elicit.
//!
//! LACeS probes TCP responsiveness *responsibly*: it sends a SYN/ACK segment
//! to a high port. A host with no matching connection replies with RST, and —
//! crucially — creates no state (§4.1.3, R3). Per RFC 793, the RST's sequence
//! number equals the acknowledgement number of the offending segment, so the
//! probe metadata is encoded in the 32-bit acknowledgement number:
//!
//! ```text
//!   bits 31..26  worker id        (6 bits, up to 64 workers)
//!   bits 25..0   tx time, ms mod 2^26  (~18.6 h wrap)
//! ```
//!
//! The measurement id is carried in the source port (echoed as the RST's
//! destination port): `BASE_PORT + measurement_id % PORT_SPAN`.

use std::net::IpAddr;

use crate::checksum;
use crate::probe::ProbeMeta;
use crate::PacketError;

/// Flag bit: SYN.
pub const FLAG_SYN: u8 = 0x02;
/// Flag bit: ACK.
pub const FLAG_ACK: u8 = 0x10;
/// Flag bit: RST.
pub const FLAG_RST: u8 = 0x04;

/// High destination port probed (unlikely to host a listener).
pub const PROBE_DST_PORT: u16 = 62_853;
/// Base of the source-port range that encodes the measurement id.
pub const BASE_PORT: u16 = 50_000;
/// Size of the source-port range.
pub const PORT_SPAN: u16 = 10_000;

const WORKER_BITS: u32 = 6;
const TIME_BITS: u32 = 26;
const TIME_MASK: u32 = (1 << TIME_BITS) - 1;

/// Maximum worker id representable in the acknowledgement-number encoding.
pub const MAX_TCP_WORKER_ID: u16 = (1 << WORKER_BITS) - 1;

/// A parsed TCP segment (options-free, as LACeS sends and receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag byte (low 8 flag bits).
    pub flags: u8,
    /// Advertised window.
    pub window: u16,
}

impl TcpSegment {
    /// Whether this segment is a SYN/ACK.
    pub fn is_syn_ack(&self) -> bool {
        self.flags & (FLAG_SYN | FLAG_ACK) == (FLAG_SYN | FLAG_ACK) && self.flags & FLAG_RST == 0
    }

    /// Whether this segment is an RST.
    pub fn is_rst(&self) -> bool {
        self.flags & FLAG_RST != 0
    }
}

/// Pack probe metadata into the 32-bit acknowledgement number.
pub fn encode_ack(meta: &ProbeMeta) -> u32 {
    let worker = u32::from(meta.worker_id & MAX_TCP_WORKER_ID);
    let time = (meta.tx_time_ms as u32) & TIME_MASK;
    (worker << TIME_BITS) | time
}

/// Unpack `(worker_id, tx_time_ms mod 2^26)` from an acknowledgement number.
pub fn decode_ack(ack: u32) -> (u16, u64) {
    let worker = (ack >> TIME_BITS) as u16;
    let time = u64::from(ack & TIME_MASK);
    (worker, time)
}

/// Reconstruct a full timestamp from the 26-bit truncated value, given a
/// receive time that is guaranteed to be *at or after* transmission and
/// within one wrap period (~18.6 h) of it.
pub fn reconstruct_time(truncated: u64, rx_time_ms: u64) -> u64 {
    let period = 1u64 << TIME_BITS;
    let base = rx_time_ms & !(period - 1);
    let candidate = base | truncated;
    if candidate > rx_time_ms {
        candidate.saturating_sub(period)
    } else {
        candidate
    }
}

/// The source port encoding `measurement_id`.
pub fn probe_src_port(measurement_id: u32) -> u16 {
    BASE_PORT + (measurement_id % u32::from(PORT_SPAN)) as u16
}

/// Whether `port` matches the encoding of `measurement_id`.
pub fn port_matches(port: u16, measurement_id: u32) -> bool {
    port == probe_src_port(measurement_id)
}

/// Build a SYN/ACK probe segment.
pub fn build_probe(src: IpAddr, dst: IpAddr, meta: &ProbeMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    build_probe_into(src, dst, meta, &mut out);
    out
}

/// [`build_probe`] into a reusable buffer (`out` is cleared first).
pub fn build_probe_into(src: IpAddr, dst: IpAddr, meta: &ProbeMeta, out: &mut Vec<u8>) {
    serialize_into(
        src,
        dst,
        &TcpSegment {
            src_port: probe_src_port(meta.measurement_id),
            dst_port: PROBE_DST_PORT,
            // An arbitrary but deterministic sequence number.
            seq: meta.measurement_id.wrapping_mul(0x9E37_79B9),
            ack: encode_ack(meta),
            flags: FLAG_SYN | FLAG_ACK,
            window: 0,
        },
        out,
    );
}

/// Build the RST a closed port sends in reply to a SYN/ACK, per RFC 793:
/// `seq = incoming.ack`, ports swapped, no ACK.
pub fn build_rst_reply(req_src: IpAddr, req_dst: IpAddr, probe: &TcpSegment) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    build_rst_reply_into(req_src, req_dst, probe, &mut out);
    out
}

/// [`build_rst_reply`] into a reusable buffer (`out` is cleared first).
pub fn build_rst_reply_into(
    req_src: IpAddr,
    req_dst: IpAddr,
    probe: &TcpSegment,
    out: &mut Vec<u8>,
) {
    serialize_into(
        req_dst,
        req_src,
        &TcpSegment {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq: probe.ack,
            ack: 0,
            flags: FLAG_RST,
            window: 0,
        },
        out,
    );
}

fn serialize_into(src: IpAddr, dst: IpAddr, seg: &TcpSegment, buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&seg.src_port.to_be_bytes());
    buf.extend_from_slice(&seg.dst_port.to_be_bytes());
    buf.extend_from_slice(&seg.seq.to_be_bytes());
    buf.extend_from_slice(&seg.ack.to_be_bytes());
    buf.push(5 << 4); // data offset: 5 words, no options
    buf.push(seg.flags);
    buf.extend_from_slice(&seg.window.to_be_bytes());
    buf.extend_from_slice(&[0, 0]); // checksum placeholder
    buf.extend_from_slice(&[0, 0]); // urgent pointer
    let ck = checksum::pseudo_header_checksum(src, dst, 6, buf);
    buf[16..18].copy_from_slice(&ck.to_be_bytes());
}

/// Parse and checksum-verify a TCP segment.
pub fn parse(src: IpAddr, dst: IpAddr, bytes: &[u8]) -> Result<TcpSegment, PacketError> {
    if bytes.len() < 20 {
        return Err(PacketError::Truncated {
            what: "TCP header",
            need: 20,
            have: bytes.len(),
        });
    }
    if checksum::pseudo_header_checksum(src, dst, 6, bytes) != 0 {
        return Err(PacketError::BadChecksum { what: "TCP" });
    }
    let data_offset = bytes[12] >> 4;
    if data_offset < 5 {
        return Err(PacketError::Malformed {
            what: "TCP data offset < 5",
        });
    }
    Ok(TcpSegment {
        src_port: u16::from_be_bytes(bytes[0..2].try_into().unwrap()),
        dst_port: u16::from_be_bytes(bytes[2..4].try_into().unwrap()),
        seq: u32::from_be_bytes(bytes[4..8].try_into().unwrap()),
        ack: u32::from_be_bytes(bytes[8..12].try_into().unwrap()),
        flags: bytes[13],
        window: u16::from_be_bytes(bytes[14..16].try_into().unwrap()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "192.0.2.1";
    const DST: &str = "203.0.113.9";

    fn meta() -> ProbeMeta {
        ProbeMeta {
            measurement_id: 77,
            worker_id: 29,
            tx_time_ms: 5_000_123,
        }
    }

    #[test]
    fn ack_roundtrip() {
        let m = meta();
        let (w, t) = decode_ack(encode_ack(&m));
        assert_eq!(w, 29);
        assert_eq!(t, 5_000_123 & u64::from(TIME_MASK));
    }

    #[test]
    fn probe_is_syn_ack_to_high_port() {
        let src: IpAddr = SRC.parse().unwrap();
        let dst: IpAddr = DST.parse().unwrap();
        let seg = parse(src, dst, &build_probe(src, dst, &meta())).unwrap();
        assert!(seg.is_syn_ack());
        assert!(!seg.is_rst());
        assert_eq!(seg.dst_port, PROBE_DST_PORT);
        assert_eq!(seg.src_port, probe_src_port(77));
    }

    #[test]
    fn rst_reply_echoes_ack_as_seq() {
        let src: IpAddr = SRC.parse().unwrap();
        let dst: IpAddr = DST.parse().unwrap();
        let probe = parse(src, dst, &build_probe(src, dst, &meta())).unwrap();
        let rst_bytes = build_rst_reply(src, dst, &probe);
        let rst = parse(dst, src, &rst_bytes).unwrap();
        assert!(rst.is_rst());
        assert_eq!(rst.seq, probe.ack);
        assert_eq!(rst.dst_port, probe.src_port);
        assert_eq!(rst.src_port, probe.dst_port);
        let (w, t) = decode_ack(rst.seq);
        assert_eq!(w, 29);
        assert_eq!(reconstruct_time(t, 5_000_200), 5_000_123);
    }

    #[test]
    fn reconstruct_time_across_wrap() {
        let period = 1u64 << 26;
        // Sent just before a wrap boundary, received just after.
        let tx = period - 10;
        let truncated = tx & (period - 1);
        assert_eq!(reconstruct_time(truncated, period + 5), tx);
        // Sent and received within the same period.
        assert_eq!(reconstruct_time(1234, 2000), 1234);
    }

    #[test]
    fn port_encodes_measurement() {
        assert!(port_matches(probe_src_port(3), 3));
        assert!(!port_matches(probe_src_port(3), 4));
        assert!(probe_src_port(u32::MAX) >= BASE_PORT);
    }

    #[test]
    fn v6_segments_checksum_with_pseudo_header() {
        let src: IpAddr = "2001:db8::1".parse().unwrap();
        let dst: IpAddr = "2001:db8::2".parse().unwrap();
        let bytes = build_probe(src, dst, &meta());
        assert!(parse(src, dst, &bytes).is_ok());
        // A different address (not a swap — the one's-complement sum is
        // commutative in src/dst) must fail the pseudo-header checksum.
        let other: IpAddr = "2001:db8:beef::9".parse().unwrap();
        assert!(matches!(
            parse(other, dst, &bytes),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let src: IpAddr = SRC.parse().unwrap();
        let dst: IpAddr = DST.parse().unwrap();
        let mut bytes = build_probe(src, dst, &meta());
        bytes[9] ^= 0x40;
        assert!(matches!(
            parse(src, dst, &bytes),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn short_segment_is_truncated() {
        let src: IpAddr = SRC.parse().unwrap();
        let dst: IpAddr = DST.parse().unwrap();
        assert!(matches!(
            parse(src, dst, &[0u8; 10]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn worker_id_above_six_bits_is_masked() {
        let m = ProbeMeta {
            measurement_id: 1,
            worker_id: 200,
            tx_time_ms: 7,
        };
        let (w, _) = decode_ack(encode_ack(&m));
        assert_eq!(w, 200 & MAX_TCP_WORKER_ID);
    }
}

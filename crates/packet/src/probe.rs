//! Unified probe construction, target-side reply synthesis, and worker-side
//! reply attribution across all supported protocols.

use std::net::IpAddr;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::{dns, icmp, tcp, udp, PacketError};

/// Probing protocols supported by LACeS (paper §4.1.3, R4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// ICMP echo (ping).
    Icmp,
    /// TCP SYN/ACK to a high port, eliciting a stateless RST.
    Tcp,
    /// UDP/DNS A (v4) or AAAA (v6) query.
    Udp,
    /// UDP/DNS CHAOS-class TXT `hostname.bind` query (RFC 4892).
    Chaos,
}

impl Protocol {
    /// All census protocols (excludes CHAOS, which is a validation aid).
    pub const CENSUS: [Protocol; 3] = [Protocol::Icmp, Protocol::Tcp, Protocol::Udp];

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Icmp => "ICMP",
            Protocol::Tcp => "TCP",
            Protocol::Udp => "UDP",
            Protocol::Chaos => "CHAOS",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// IP version of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpVersion {
    /// IPv4 (census granularity /24).
    V4,
    /// IPv6 (census granularity /48).
    V6,
}

impl IpVersion {
    /// The version of a concrete address.
    pub fn of(addr: IpAddr) -> Self {
        if addr.is_ipv4() {
            IpVersion::V4
        } else {
            IpVersion::V6
        }
    }

    /// Protocol label as used in the paper ("ICMPv4", "TCPv6", ...).
    pub fn suffix(self) -> &'static str {
        match self {
            IpVersion::V4 => "v4",
            IpVersion::V6 => "v6",
        }
    }
}

/// Metadata attached to every probe so that replies can be attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeMeta {
    /// Identifies the measurement run; replies from other runs are discarded.
    pub measurement_id: u32,
    /// The worker that transmitted the probe.
    pub worker_id: u16,
    /// Virtual transmit time in milliseconds since measurement epoch.
    pub tx_time_ms: u64,
}

/// How probe packets vary across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeEncoding {
    /// Regular operation: payload/qname/ack vary per worker and instant.
    PerWorker,
    /// §5.1.4 load-balancer experiment: all workers send byte-identical
    /// probes (ICMP only; worker attribution is then impossible by design).
    Static,
}

/// A packet on the simulated wire: addresses plus serialized transport bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport protocol of `bytes`.
    pub protocol: Protocol,
    /// Serialized transport message (ICMP message, TCP segment, or UDP
    /// datagram including its DNS payload).
    pub bytes: Bytes,
}

impl Packet {
    /// Borrow this packet as a [`PacketView`].
    pub fn view(&self) -> PacketView<'_> {
        PacketView {
            src: self.src,
            dst: self.dst,
            protocol: self.protocol,
            bytes: &self.bytes,
        }
    }
}

/// A borrowed packet: what the hot path hands around so replies can be built
/// from reused buffers without constructing a [`Packet`] first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketView<'a> {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport protocol of `bytes`.
    pub protocol: Protocol,
    /// Serialized transport message (borrowed).
    pub bytes: &'a [u8],
}

/// What a worker learns from a captured, validated reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyInfo {
    /// Protocol the reply arrived over.
    pub protocol: Protocol,
    /// The worker that sent the eliciting probe, when recoverable
    /// (`None` under [`ProbeEncoding::Static`]).
    pub tx_worker: Option<u16>,
    /// Transmit time of the eliciting probe, when recoverable. For TCP this
    /// is reconstructed from the 26-bit truncated echo.
    pub tx_time_ms: Option<u64>,
    /// CHAOS identity string, for [`Protocol::Chaos`] replies with data.
    /// Shared (`Arc<str>`) so fan-out into records is a refcount bump, not
    /// a per-reply string clone.
    pub chaos_identity: Option<Arc<str>>,
}

/// Attribution carried alongside a simulated delivery when the wire skips
/// materializing reply bytes (the zero-copy fast path): everything
/// [`parse_reply`] would recover from the bytes, derived from the probe's
/// metadata instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedReply {
    /// Metadata of the eliciting probe, exactly as the probe builder would
    /// have encoded it into the wire bytes.
    pub meta: ProbeMeta,
    /// How the probe encoded attribution.
    pub encoding: ProbeEncoding,
    /// CHAOS identity the responding site would disclose (consulted only
    /// for [`Protocol::Chaos`]).
    pub chaos_identity: Option<Arc<str>>,
}

/// What [`parse_reply`] would return for the reply to a probe built from
/// `prepared` — without building or parsing any bytes.
///
/// This must stay bit-identical to
/// `parse_reply(&build_reply(&build_probe(..), ..), ..)` for every
/// protocol and encoding, including measurement-id rejection (`NotOurs`),
/// the ICMP static-encoding attribution loss, the TCP worker-id mask and
/// 26-bit timestamp reconstruction, and the 255-byte TXT truncation; the
/// `prepared_matches_wire_roundtrip` test pins the equivalence.
///
/// # Errors
///
/// [`PacketError::NotOurs`] exactly when `parse_reply` would reject the
/// materialized reply as belonging to another measurement.
pub fn attribute_prepared(
    protocol: Protocol,
    prepared: &PreparedReply,
    measurement_id: u32,
    rx_time_ms: u64,
) -> Result<ReplyInfo, PacketError> {
    let meta = &prepared.meta;
    match protocol {
        Protocol::Icmp => {
            if meta.measurement_id != measurement_id {
                return Err(PacketError::NotOurs);
            }
            // The payload decoder signals static probes via the worker-id
            // sentinel, so a per-worker probe from the (never valid)
            // sentinel worker also loses attribution.
            let attributed = prepared.encoding == ProbeEncoding::PerWorker
                && meta.worker_id != icmp::STATIC_WORKER_SENTINEL;
            Ok(ReplyInfo {
                protocol,
                tx_worker: attributed.then_some(meta.worker_id),
                tx_time_ms: attributed.then_some(meta.tx_time_ms),
                chaos_identity: None,
            })
        }
        Protocol::Tcp => {
            if !tcp::port_matches(tcp::probe_src_port(meta.measurement_id), measurement_id) {
                return Err(PacketError::NotOurs);
            }
            let (worker, truncated) = tcp::decode_ack(tcp::encode_ack(meta));
            Ok(ReplyInfo {
                protocol,
                tx_worker: Some(worker),
                tx_time_ms: Some(tcp::reconstruct_time(truncated, rx_time_ms)),
                chaos_identity: None,
            })
        }
        Protocol::Udp => {
            if !tcp::port_matches(tcp::probe_src_port(meta.measurement_id), measurement_id)
                || meta.measurement_id != measurement_id
            {
                return Err(PacketError::NotOurs);
            }
            Ok(ReplyInfo {
                protocol,
                tx_worker: Some(meta.worker_id),
                tx_time_ms: Some(meta.tx_time_ms),
                chaos_identity: None,
            })
        }
        Protocol::Chaos => {
            if !tcp::port_matches(tcp::probe_src_port(meta.measurement_id), measurement_id) {
                return Err(PacketError::NotOurs);
            }
            // The TXT writer caps the character-string at 255 bytes.
            let identity = prepared.chaos_identity.as_ref().map(|s| {
                if s.len() <= 255 {
                    Arc::clone(s)
                } else {
                    Arc::from(String::from_utf8_lossy(&s.as_bytes()[..255]).into_owned())
                }
            });
            Ok(ReplyInfo {
                protocol,
                tx_worker: Some(meta.worker_id),
                tx_time_ms: None,
                chaos_identity: identity,
            })
        }
    }
}

/// Build a probe packet for any protocol.
///
/// For [`Protocol::Udp`] the query type follows the destination's address
/// family (A for IPv4, AAAA for IPv6).
pub fn build_probe(
    src: IpAddr,
    dst: IpAddr,
    protocol: Protocol,
    meta: &ProbeMeta,
    encoding: ProbeEncoding,
) -> Packet {
    let mut bytes = Vec::new();
    build_probe_into(src, dst, protocol, meta, encoding, &mut bytes);
    Packet {
        src,
        dst,
        protocol,
        bytes: Bytes::from(bytes),
    }
}

/// [`build_probe`] into a reusable buffer: `out` is cleared and refilled
/// with the transport bytes, so a worker's steady state allocates nothing
/// per probe.
pub fn build_probe_into(
    src: IpAddr,
    dst: IpAddr,
    protocol: Protocol,
    meta: &ProbeMeta,
    encoding: ProbeEncoding,
    out: &mut Vec<u8>,
) {
    match protocol {
        Protocol::Icmp => icmp::build_echo_request_into(src, dst, meta, encoding, out),
        Protocol::Tcp => tcp::build_probe_into(src, dst, meta, out),
        Protocol::Udp => {
            let qtype = if dst.is_ipv4() {
                dns::TYPE_A
            } else {
                dns::TYPE_AAAA
            };
            udp::build_into_with(
                src,
                dst,
                tcp::probe_src_port(meta.measurement_id),
                udp::DNS_PORT,
                out,
                |buf| dns::write_probe_query(meta, qtype, buf),
            );
        }
        Protocol::Chaos => {
            udp::build_into_with(
                src,
                dst,
                tcp::probe_src_port(meta.measurement_id),
                udp::DNS_PORT,
                out,
                |buf| dns::write_chaos_query(meta.worker_id, buf),
            );
        }
    }
}

/// Synthesize the reply a responsive target produces for `probe`.
///
/// `chaos_identity` is the site-identity TXT value a DNS server at the
/// responding site would disclose; it is only consulted for CHAOS probes.
/// Returns an error when the probe bytes do not parse (a real host would
/// silently drop such a packet).
pub fn build_reply(probe: &Packet, chaos_identity: Option<&str>) -> Result<Packet, PacketError> {
    let mut bytes = Vec::new();
    build_reply_into(&probe.view(), chaos_identity, &mut bytes)?;
    Ok(Packet {
        src: probe.dst,
        dst: probe.src,
        protocol: probe.protocol,
        bytes: Bytes::from(bytes),
    })
}

/// [`build_reply`] into a reusable buffer: on success `out` holds the reply's
/// transport bytes (the reply travels `probe.dst -> probe.src`).
pub fn build_reply_into(
    probe: &PacketView<'_>,
    chaos_identity: Option<&str>,
    out: &mut Vec<u8>,
) -> Result<(), PacketError> {
    match probe.protocol {
        Protocol::Icmp => {
            let req = icmp::parse_view(probe.src, probe.dst, probe.bytes)?;
            if !req.is_request() {
                return Err(PacketError::Malformed {
                    what: "ICMP reply to a non-request",
                });
            }
            icmp::build_echo_reply_into(probe.src, probe.dst, &req, out);
        }
        Protocol::Tcp => {
            let seg = tcp::parse(probe.src, probe.dst, probe.bytes)?;
            if !seg.is_syn_ack() {
                return Err(PacketError::Malformed {
                    what: "TCP reply to a non-SYN/ACK",
                });
            }
            tcp::build_rst_reply_into(probe.src, probe.dst, &seg, out);
        }
        Protocol::Udp | Protocol::Chaos => {
            let dgram = udp::parse_view(probe.src, probe.dst, probe.bytes)?;
            let query = dns::parse(dgram.payload)?;
            let q = query.question().ok_or(PacketError::Malformed {
                what: "DNS query without question",
            })?;
            let answer = match probe.protocol {
                Protocol::Udp => match q.qtype {
                    dns::TYPE_A => Some(dns::DnsAnswerRef::A("192.0.2.1".parse().unwrap())),
                    dns::TYPE_AAAA => Some(dns::DnsAnswerRef::Aaaa("2001:db8::1".parse().unwrap())),
                    _ => None,
                },
                Protocol::Chaos => chaos_identity.map(dns::DnsAnswerRef::Txt),
                _ => unreachable!(),
            };
            udp::build_into_with(
                probe.dst,
                probe.src,
                dgram.dst_port,
                dgram.src_port,
                out,
                |buf| dns::write_response(&query, answer, buf),
            );
        }
    }
    Ok(())
}

/// Validate a captured reply and attribute it to the probe that elicited it.
///
/// `rx_time_ms` is the capture time, needed to reconstruct TCP's truncated
/// timestamp. Replies from other measurements yield [`PacketError::NotOurs`].
pub fn parse_reply(
    reply: &Packet,
    measurement_id: u32,
    rx_time_ms: u64,
) -> Result<ReplyInfo, PacketError> {
    match reply.protocol {
        Protocol::Icmp => {
            let msg = icmp::parse(reply.src, reply.dst, &reply.bytes)?;
            if !msg.is_reply() {
                return Err(PacketError::NotOurs);
            }
            if msg.ident != icmp::ECHO_IDENT {
                return Err(PacketError::NotOurs);
            }
            let (mid, worker, tx) = icmp::decode_payload(&msg.payload)?;
            if mid != measurement_id {
                return Err(PacketError::NotOurs);
            }
            Ok(ReplyInfo {
                protocol: Protocol::Icmp,
                tx_worker: worker,
                tx_time_ms: tx,
                chaos_identity: None,
            })
        }
        Protocol::Tcp => {
            let seg = tcp::parse(reply.src, reply.dst, &reply.bytes)?;
            if !seg.is_rst() {
                return Err(PacketError::NotOurs);
            }
            if !tcp::port_matches(seg.dst_port, measurement_id)
                || seg.src_port != tcp::PROBE_DST_PORT
            {
                return Err(PacketError::NotOurs);
            }
            let (worker, truncated) = tcp::decode_ack(seg.seq);
            Ok(ReplyInfo {
                protocol: Protocol::Tcp,
                tx_worker: Some(worker),
                tx_time_ms: Some(tcp::reconstruct_time(truncated, rx_time_ms)),
                chaos_identity: None,
            })
        }
        Protocol::Udp => {
            let dgram = udp::parse(reply.src, reply.dst, &reply.bytes)?;
            if !tcp::port_matches(dgram.dst_port, measurement_id) {
                return Err(PacketError::NotOurs);
            }
            let msg = dns::parse(&dgram.payload)?;
            if !msg.is_response {
                return Err(PacketError::NotOurs);
            }
            let q = msg.question().ok_or(PacketError::NotOurs)?;
            let meta = dns::parse_probe_qname(&q.qname)?;
            if meta.measurement_id != measurement_id {
                return Err(PacketError::NotOurs);
            }
            Ok(ReplyInfo {
                protocol: Protocol::Udp,
                tx_worker: Some(meta.worker_id),
                tx_time_ms: Some(meta.tx_time_ms),
                chaos_identity: None,
            })
        }
        Protocol::Chaos => {
            let dgram = udp::parse(reply.src, reply.dst, &reply.bytes)?;
            if !tcp::port_matches(dgram.dst_port, measurement_id) {
                return Err(PacketError::NotOurs);
            }
            let msg = dns::parse(&dgram.payload)?;
            if !msg.is_response {
                return Err(PacketError::NotOurs);
            }
            let identity = msg
                .answers
                .iter()
                .find(|rr| rr.rtype == dns::TYPE_TXT)
                .and_then(|rr| rr.txt_strings().into_iter().next());
            Ok(ReplyInfo {
                protocol: Protocol::Chaos,
                tx_worker: Some(msg.id),
                tx_time_ms: None,
                chaos_identity: identity.map(Arc::from),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MID: u32 = 314;

    fn meta(worker: u16, t: u64) -> ProbeMeta {
        ProbeMeta {
            measurement_id: MID,
            worker_id: worker,
            tx_time_ms: t,
        }
    }

    fn v4() -> (IpAddr, IpAddr) {
        (
            "192.0.2.10".parse().unwrap(),
            "198.51.100.20".parse().unwrap(),
        )
    }

    fn v6() -> (IpAddr, IpAddr) {
        (
            "2001:db8:1::1".parse().unwrap(),
            "2001:db8:2::2".parse().unwrap(),
        )
    }

    #[test]
    fn full_cycle_icmp_v4_and_v6() {
        for (src, dst) in [v4(), v6()] {
            let probe = build_probe(
                src,
                dst,
                Protocol::Icmp,
                &meta(5, 1000),
                ProbeEncoding::PerWorker,
            );
            let reply = build_reply(&probe, None).unwrap();
            assert_eq!(reply.src, dst);
            assert_eq!(reply.dst, src);
            let info = parse_reply(&reply, MID, 1050).unwrap();
            assert_eq!(info.tx_worker, Some(5));
            assert_eq!(info.tx_time_ms, Some(1000));
        }
    }

    #[test]
    fn full_cycle_tcp() {
        for (src, dst) in [v4(), v6()] {
            let probe = build_probe(
                src,
                dst,
                Protocol::Tcp,
                &meta(9, 123_456),
                ProbeEncoding::PerWorker,
            );
            let reply = build_reply(&probe, None).unwrap();
            let info = parse_reply(&reply, MID, 123_500).unwrap();
            assert_eq!(info.tx_worker, Some(9));
            assert_eq!(info.tx_time_ms, Some(123_456));
        }
    }

    #[test]
    fn full_cycle_udp_dns() {
        for (src, dst) in [v4(), v6()] {
            let probe = build_probe(
                src,
                dst,
                Protocol::Udp,
                &meta(2, 42),
                ProbeEncoding::PerWorker,
            );
            let reply = build_reply(&probe, None).unwrap();
            let info = parse_reply(&reply, MID, 99).unwrap();
            assert_eq!(info.tx_worker, Some(2));
            assert_eq!(info.tx_time_ms, Some(42));
        }
    }

    #[test]
    fn full_cycle_chaos_with_identity() {
        let (src, dst) = v4();
        let probe = build_probe(
            src,
            dst,
            Protocol::Chaos,
            &meta(11, 0),
            ProbeEncoding::PerWorker,
        );
        let reply = build_reply(&probe, Some("ams1.ns.example")).unwrap();
        let info = parse_reply(&reply, MID, 10).unwrap();
        assert_eq!(info.tx_worker, Some(11));
        assert_eq!(info.chaos_identity.as_deref(), Some("ams1.ns.example"));
    }

    #[test]
    fn chaos_without_identity_yields_no_string() {
        let (src, dst) = v4();
        let probe = build_probe(
            src,
            dst,
            Protocol::Chaos,
            &meta(1, 0),
            ProbeEncoding::PerWorker,
        );
        let reply = build_reply(&probe, None).unwrap();
        let info = parse_reply(&reply, MID, 10).unwrap();
        assert_eq!(info.chaos_identity, None);
    }

    #[test]
    fn wrong_measurement_id_is_rejected() {
        let (src, dst) = v4();
        for proto in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp] {
            let probe = build_probe(src, dst, proto, &meta(1, 5), ProbeEncoding::PerWorker);
            let reply = build_reply(&probe, None).unwrap();
            assert!(
                matches!(parse_reply(&reply, MID + 1, 10), Err(PacketError::NotOurs)),
                "{proto} reply accepted for wrong measurement"
            );
        }
    }

    #[test]
    fn probe_itself_is_not_a_valid_reply() {
        let (src, dst) = v4();
        for proto in [Protocol::Icmp, Protocol::Tcp] {
            let probe = build_probe(src, dst, proto, &meta(1, 5), ProbeEncoding::PerWorker);
            assert!(
                parse_reply(&probe, MID, 10).is_err(),
                "{proto} probe parsed as reply"
            );
        }
    }

    #[test]
    fn static_encoding_loses_attribution_but_keeps_measurement() {
        let (src, dst) = v4();
        let probe = build_probe(
            src,
            dst,
            Protocol::Icmp,
            &meta(7, 999),
            ProbeEncoding::Static,
        );
        let reply = build_reply(&probe, None).unwrap();
        let info = parse_reply(&reply, MID, 1000).unwrap();
        assert_eq!(info.tx_worker, None);
        assert_eq!(info.tx_time_ms, None);
    }

    #[test]
    fn udp_probe_uses_aaaa_for_v6() {
        let (src, dst) = v6();
        let probe = build_probe(
            src,
            dst,
            Protocol::Udp,
            &meta(1, 1),
            ProbeEncoding::PerWorker,
        );
        let dgram = udp::parse(src, dst, &probe.bytes).unwrap();
        let msg = dns::parse(&dgram.payload).unwrap();
        assert_eq!(msg.question().unwrap().qtype, dns::TYPE_AAAA);
    }

    #[test]
    fn prepared_matches_wire_roundtrip() {
        // The zero-copy fast path must agree with the byte round-trip on
        // every (protocol, encoding, measurement-id, identity) combination,
        // including rejections.
        let (src, dst) = v4();
        let identities: [Option<&str>; 3] = [None, Some("ams1.ns.example"), Some("")];
        for proto in [
            Protocol::Icmp,
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Chaos,
        ] {
            for encoding in [ProbeEncoding::PerWorker, ProbeEncoding::Static] {
                for worker in [0u16, 7, icmp::STATIC_WORKER_SENTINEL] {
                    for expected in [MID, MID + 1, MID + 65_536] {
                        for identity in identities {
                            let m = ProbeMeta {
                                measurement_id: MID,
                                worker_id: worker,
                                tx_time_ms: 123_456,
                            };
                            let probe = build_probe(src, dst, proto, &m, encoding);
                            let reply = build_reply(&probe, identity).unwrap();
                            let via_bytes = parse_reply(&reply, expected, 123_999);
                            let prepared = PreparedReply {
                                meta: m,
                                encoding,
                                chaos_identity: identity.map(Arc::from),
                            };
                            let via_meta = attribute_prepared(proto, &prepared, expected, 123_999);
                            match (via_bytes, via_meta) {
                                (Ok(a), Ok(b)) => assert_eq!(a, b, "{proto} {encoding:?}"),
                                (Err(_), Err(_)) => {}
                                (a, b) => {
                                    panic!("fast path diverged for {proto} {encoding:?}: bytes={a:?} meta={b:?}")
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_reconstructs_tcp_time_across_wrap() {
        // rx far from tx exercises the 26-bit reconstruction identically.
        let m = ProbeMeta {
            measurement_id: MID,
            worker_id: 3,
            tx_time_ms: (1u64 << 26) - 10,
        };
        let (src, dst) = v4();
        let probe = build_probe(src, dst, Protocol::Tcp, &m, ProbeEncoding::PerWorker);
        let reply = build_reply(&probe, None).unwrap();
        let rx = (1u64 << 26) + 5;
        let a = parse_reply(&reply, MID, rx).unwrap();
        let prepared = PreparedReply {
            meta: m,
            encoding: ProbeEncoding::PerWorker,
            chaos_identity: None,
        };
        let b = attribute_prepared(Protocol::Tcp, &prepared, MID, rx).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.tx_time_ms, Some(m.tx_time_ms));
    }

    #[test]
    fn protocol_names_match_paper() {
        assert_eq!(Protocol::Icmp.to_string(), "ICMP");
        assert_eq!(Protocol::Udp.name(), "UDP");
        assert_eq!(Protocol::CENSUS.len(), 3);
    }
}

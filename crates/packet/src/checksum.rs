//! RFC 1071 Internet checksum.
//!
//! Used by ICMPv4 (over the ICMP message), ICMPv6/TCP/UDP (over a
//! pseudo-header plus the transport message).

use std::net::IpAddr;

/// One's-complement sum of 16-bit words, per RFC 1071.
///
/// Odd trailing bytes are padded with a zero byte, as the RFC specifies.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum of `data`: the one's complement of the
/// one's-complement sum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Verify a buffer whose checksum field is already filled in: the
/// one's-complement sum over the whole buffer must be `0xFFFF`.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xFFFF
}

/// Checksum of a transport message plus the IPv4/IPv6 pseudo-header, as used
/// by TCP, UDP, and ICMPv6.
///
/// `proto` is the IP protocol number (6 TCP, 17 UDP, 58 ICMPv6).
pub fn pseudo_header_checksum(src: IpAddr, dst: IpAddr, proto: u8, transport: &[u8]) -> u16 {
    let mut buf = Vec::with_capacity(40 + transport.len());
    match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            buf.extend_from_slice(&s.octets());
            buf.extend_from_slice(&d.octets());
            buf.push(0);
            buf.push(proto);
            buf.extend_from_slice(&(transport.len() as u16).to_be_bytes());
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            buf.extend_from_slice(&s.octets());
            buf.extend_from_slice(&d.octets());
            buf.extend_from_slice(&(transport.len() as u32).to_be_bytes());
            buf.extend_from_slice(&[0, 0, 0, proto]);
        }
        _ => panic!("mixed address families in pseudo-header"),
    }
    buf.extend_from_slice(transport);
    internet_checksum(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_of_empty_is_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn verify_accepts_buffer_with_embedded_checksum() {
        let mut data = vec![0x45u8, 0x00, 0x12, 0x34, 0x00, 0x00, 0xAB, 0xCD];
        let ck = internet_checksum(&data);
        data[4..6].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_differs_by_address() {
        let t = [1u8, 2, 3, 4];
        let a = pseudo_header_checksum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            6,
            &t,
        );
        let b = pseudo_header_checksum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.3".parse().unwrap(),
            6,
            &t,
        );
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "mixed address families")]
    fn pseudo_header_rejects_mixed_families() {
        let _ = pseudo_header_checksum(
            "10.0.0.1".parse().unwrap(),
            "2001:db8::1".parse().unwrap(),
            6,
            &[],
        );
    }
}

//! Property-based tests: every (protocol, meta) combination must survive the
//! full probe -> target reply -> attribution cycle, and parsers must never
//! panic on arbitrary bytes.

use std::net::IpAddr;

use laces_packet::probe::{
    build_probe, build_reply, parse_reply, ProbeEncoding, ProbeMeta, Protocol,
};
use laces_packet::tcp::MAX_TCP_WORKER_ID;
use laces_packet::{dns, icmp, tcp as tcp_mod, udp, Prefix24, Prefix48};
use proptest::prelude::*;

fn proto_strategy() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Icmp),
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Chaos),
    ]
}

fn addr4() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(|v| IpAddr::V4(std::net::Ipv4Addr::from(v)))
}

fn addr6() -> impl Strategy<Value = IpAddr> {
    any::<u128>().prop_map(|v| IpAddr::V6(std::net::Ipv6Addr::from(v)))
}

proptest! {
    #[test]
    fn probe_reply_attribution_roundtrip_v4(
        proto in proto_strategy(),
        src in addr4(), dst in addr4(),
        mid in any::<u32>(),
        worker in 0u16..=MAX_TCP_WORKER_ID,
        // Keep tx within one TCP wrap of rx so reconstruction is exact.
        tx in 0u64..60_000_000,
    ) {
        let meta = ProbeMeta { measurement_id: mid, worker_id: worker, tx_time_ms: tx };
        let probe = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
        let reply = build_reply(&probe, Some("site-x")).unwrap();
        prop_assert_eq!(reply.src, dst);
        prop_assert_eq!(reply.dst, src);
        let info = parse_reply(&reply, mid, tx + 500).unwrap();
        prop_assert_eq!(info.tx_worker, Some(worker));
        if proto != Protocol::Chaos {
            prop_assert_eq!(info.tx_time_ms, Some(tx));
        }
    }

    #[test]
    fn probe_reply_attribution_roundtrip_v6(
        proto in proto_strategy(),
        src in addr6(), dst in addr6(),
        mid in any::<u32>(),
        worker in 0u16..=MAX_TCP_WORKER_ID,
        tx in 0u64..60_000_000,
    ) {
        let meta = ProbeMeta { measurement_id: mid, worker_id: worker, tx_time_ms: tx };
        let probe = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
        let reply = build_reply(&probe, Some("site-y")).unwrap();
        let info = parse_reply(&reply, mid, tx + 500).unwrap();
        prop_assert_eq!(info.tx_worker, Some(worker));
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..128),
        src in addr4(), dst in addr4(),
    ) {
        let _ = icmp::parse(src, dst, &data);
        let _ = tcp_mod::parse(src, dst, &data);
        let _ = udp::parse(src, dst, &data);
        let _ = dns::parse(&data);
    }

    #[test]
    fn wrong_measurement_never_attributed(
        src in addr4(), dst in addr4(),
        mid in any::<u32>(), other in any::<u32>(),
        worker in 0u16..=MAX_TCP_WORKER_ID,
    ) {
        prop_assume!(mid != other);
        for proto in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp] {
            let meta = ProbeMeta { measurement_id: mid, worker_id: worker, tx_time_ms: 1 };
            let probe = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
            let reply = build_reply(&probe, None).unwrap();
            // TCP's measurement id lives in a port modulo PORT_SPAN; collisions
            // are possible by construction, so only assert when ports differ.
            if proto == Protocol::Tcp
                && laces_packet::tcp::probe_src_port(mid) == laces_packet::tcp::probe_src_port(other)
            {
                continue;
            }
            prop_assert!(parse_reply(&reply, other, 10).is_err());
        }
    }

    #[test]
    fn prefix24_of_is_idempotent_and_contains(addr in any::<u32>()) {
        let a = std::net::Ipv4Addr::from(addr);
        let p = Prefix24::of(a);
        prop_assert!(p.contains(a));
        prop_assert_eq!(Prefix24::of(p.addr(0)), p);
        prop_assert_eq!(Prefix24::of(p.addr(255)), p);
    }

    #[test]
    fn prefix48_of_is_idempotent_and_contains(addr in any::<u128>()) {
        let a = std::net::Ipv6Addr::from(addr);
        let p = Prefix48::of(a);
        prop_assert!(p.contains(a));
        prop_assert_eq!(Prefix48::of(p.addr(0)), p);
    }

    #[test]
    fn tcp_time_reconstruction_is_exact_within_wrap(
        tx in 0u64..100_000_000,
        delay in 0u64..1_000_000,
    ) {
        let truncated = tx & ((1 << 26) - 1);
        prop_assert_eq!(laces_packet::tcp::reconstruct_time(truncated, tx + delay), tx);
    }
}

//! Quick scale smoke test (not part of the benchmark suite).
use laces_netsim::wire::{MeasurementCtx, ProbeSource};
use laces_netsim::{platform, World, WorldConfig};
use laces_packet::probe::{build_probe, parse_reply, ProbeEncoding, ProbeMeta, Protocol};
use laces_packet::PrefixKey;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let w = World::generate(WorldConfig::paper());
    println!(
        "generate: {:?}, targets={}, ases={}, deployments={}",
        t0.elapsed(),
        w.n_targets(),
        w.topo.len(),
        w.deployments.len()
    );

    let pid = w.std_platforms.production;
    let src = platform::anycast_src_v4(pid);
    let ctx = MeasurementCtx {
        id: 5,
        day: 0,
        span_ms: 31_000,
    };
    let t1 = Instant::now();
    let mut replies = 0usize;
    let n = 200_000.min(w.n_v4);
    for i in 0..n {
        let dst = match w.targets[i].prefix {
            PrefixKey::V4(p) => std::net::IpAddr::V4(p.addr(77)),
            PrefixKey::V6(p) => std::net::IpAddr::V6(p.addr(77)),
        };
        let meta = ProbeMeta {
            measurement_id: 5,
            worker_id: 3,
            tx_time_ms: i as u64,
        };
        let pkt = build_probe(src, dst, Protocol::Icmp, &meta, ProbeEncoding::PerWorker);
        if let Some(d) = w
            .send_probe(
                ProbeSource::Worker {
                    platform: pid,
                    site: 3,
                },
                &pkt,
                i as u64,
                i as u64,
                &ctx,
            )
            .unwrap()
        {
            let info = parse_reply(&d.packet, 5, d.rx_time_ms).unwrap();
            assert_eq!(info.tx_worker, Some(3));
            replies += 1;
        }
    }
    let dt = t1.elapsed();
    println!(
        "{n} probes in {dt:?} ({:.0} probes/s), {replies} replies",
        n as f64 / dt.as_secs_f64()
    );
}

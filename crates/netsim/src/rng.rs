//! Deterministic per-event randomness.
//!
//! Every stochastic decision in the simulator (route tie-breaks, jitter,
//! flips, responsiveness churn) is a *pure function* of the world seed and
//! the event's identifying coordinates. This makes whole experiments
//! reproducible bit-for-bit and — crucially for the longitudinal analyses —
//! makes day `d` of the simulated Internet identical no matter which
//! measurement observes it or in which order.

/// A 64-bit mixing key; build one with [`key`] and derive per-dimension
/// sub-keys with [`mix`].
pub type Key = u64;

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
#[inline]
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a key with one more coordinate.
#[inline]
pub fn mix(key: Key, v: u64) -> Key {
    splitmix(key ^ v.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Build a key from a seed and up to four coordinates.
#[inline]
pub fn key(seed: u64, coords: &[u64]) -> Key {
    let mut k = splitmix(seed);
    for &c in coords {
        k = mix(k, c);
    }
    k
}

/// A uniform f64 in `[0, 1)` derived from a key.
#[inline]
pub fn unit_f64(k: Key) -> f64 {
    // Use the top 53 bits for a dyadic uniform.
    (splitmix(k) >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform integer in `[0, n)` derived from a key (n > 0).
#[inline]
pub fn below(k: Key, n: usize) -> usize {
    debug_assert!(n > 0);
    (splitmix(k) % n as u64) as usize
}

/// Standard-normal-ish sample (sum of uniforms, Irwin–Hall with 4 terms,
/// rescaled): adequate for latency jitter, avoids transcendental cost.
#[inline]
pub fn gaussianish(k: Key) -> f64 {
    let a = unit_f64(mix(k, 1));
    let b = unit_f64(mix(k, 2));
    let c = unit_f64(mix(k, 3));
    let d = unit_f64(mix(k, 4));
    // Irwin–Hall(4): mean 2, variance 1/3. Normalise to mean 0, sd 1.
    (a + b + c + d - 2.0) * (3.0f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(key(42, &[1, 2, 3]), key(42, &[1, 2, 3]));
        assert_ne!(key(42, &[1, 2, 3]), key(42, &[1, 3, 2]));
        assert_ne!(key(42, &[1]), key(43, &[1]));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut below_half = 0;
        for i in 0..10_000u64 {
            let u = unit_f64(key(7, &[i]));
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half), "biased: {below_half}");
    }

    #[test]
    fn below_is_in_range() {
        for i in 0..1000u64 {
            assert!(below(key(1, &[i]), 7) < 7);
        }
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut seen = [false; 7];
        for i in 0..1000u64 {
            seen[below(key(1, &[i]), 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussianish_has_roughly_unit_variance() {
        let n = 20_000u64;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let g = gaussianish(key(9, &[i]));
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}

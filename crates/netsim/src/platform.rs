//! Measurement platforms: the anycast deployments LACeS probes *from*, and
//! the unicast vantage-point platforms used for GCD latency measurements.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use laces_geo::{CityId, Coord};
use serde::{Deserialize, Serialize};

use crate::deployments::Site;

/// Identifies a platform within the world registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlatformId(pub u16);

/// A unicast vantage point (an Ark or RIPE Atlas style node).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vp {
    /// AS hosting the node.
    pub as_idx: u32,
    /// Node position (may be jittered off the city centre).
    pub coord: Coord,
    /// Nearest metro (for reporting).
    pub city: CityId,
    /// Whether the node's participation is unreliable (RIPE Atlas: the
    /// paper observed inconsistent VP availability across measurements).
    pub flaky: bool,
}

/// Platform flavour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlatformKind {
    /// An anycast deployment we control: every site runs a Worker and all
    /// sites announce the same source prefix.
    Anycast {
        /// The sites (each with its shell AS in the topology).
        sites: Vec<Site>,
    },
    /// A set of unicast nodes used for latency (GCD) probing.
    Unicast {
        /// The vantage points.
        vps: Vec<Vp>,
    },
}

/// A measurement platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable name ("production-32", "ark", "atlas", ...).
    pub name: String,
    /// Sites or VPs.
    pub kind: PlatformKind,
}

impl Platform {
    /// Number of vantage points (sites for anycast platforms).
    pub fn n_vps(&self) -> usize {
        match &self.kind {
            PlatformKind::Anycast { sites } => sites.len(),
            PlatformKind::Unicast { vps } => vps.len(),
        }
    }

    /// The AS hosting vantage point `i`.
    pub fn vp_as(&self, i: usize) -> u32 {
        match &self.kind {
            PlatformKind::Anycast { sites } => sites[i].as_idx,
            PlatformKind::Unicast { vps } => vps[i].as_idx,
        }
    }

    /// Whether this is an anycast (worker-bearing) platform.
    pub fn is_anycast(&self) -> bool {
        matches!(self.kind, PlatformKind::Anycast { .. })
    }

    /// Sites of an anycast platform (`None` for unicast platforms).
    pub fn sites(&self) -> Option<&[Site]> {
        match &self.kind {
            PlatformKind::Anycast { sites } => Some(sites),
            PlatformKind::Unicast { .. } => None,
        }
    }

    /// VPs of a unicast platform (`None` for anycast platforms).
    pub fn vps(&self) -> Option<&[Vp]> {
        match &self.kind {
            PlatformKind::Unicast { vps } => Some(vps),
            PlatformKind::Anycast { .. } => None,
        }
    }
}

/// The anycast source address a measurement platform announces (IPv4).
pub fn anycast_src_v4(platform: PlatformId) -> IpAddr {
    // 198.18.0.0/15 is reserved for benchmarking (RFC 2544); one /24 per
    // platform keeps the wire unambiguous.
    IpAddr::V4(Ipv4Addr::new(198, 18, platform.0 as u8, 1))
}

/// The anycast source address a measurement platform announces (IPv6).
pub fn anycast_src_v6(platform: PlatformId) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xface, platform.0, 0, 0, 0, 1))
}

/// The unicast address of VP `vp` on a unicast platform (IPv4).
pub fn vp_src_v4(platform: PlatformId, vp: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(
        198,
        19,
        // laces-lint: allow(as-truncation) — masked to 7 bits before the cast; cannot wrap
        ((vp >> 8) & 0x7F) as u8 | ((platform.0 as u8 & 1) << 7),
        // laces-lint: allow(as-truncation) — masked to 8 bits before the cast; cannot wrap
        (vp & 0xFF) as u8,
    ))
}

/// The unicast address of VP `vp` on a unicast platform (IPv6).
pub fn vp_src_v6(platform: PlatformId, vp: usize) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(
        0x2001,
        0xdb8,
        0xbeef,
        platform.0,
        0,
        0,
        0,
        u16::try_from(vp + 1).unwrap_or(u16::MAX),
    ))
}

/// The 32 metros of the paper's production anycast deployment (Vultr's
/// datacentre locations as of the measurement period).
pub const PRODUCTION_CITIES: [&str; 32] = [
    "Amsterdam",
    "Atlanta",
    "Bangalore",
    "Chicago",
    "Dallas",
    "Delhi",
    "Frankfurt",
    "Honolulu",
    "Johannesburg",
    "London",
    "Los Angeles",
    "Madrid",
    "Manchester",
    "Melbourne",
    "Mexico City",
    "Miami",
    "Mumbai",
    "Newark",
    "Osaka",
    "Paris",
    "Sao Paulo",
    "Santiago",
    "Seattle",
    "Seoul",
    "San Jose",
    "Singapore",
    "Stockholm",
    "Sydney",
    "Tel Aviv",
    "Tokyo",
    "Toronto",
    "Warsaw",
];

/// The 12 sites of the external ccTLD registry deployment (§5.4).
pub const CCTLD_CITIES: [&str; 12] = [
    "Amsterdam",
    "Frankfurt",
    "London",
    "Vienna",
    "Stockholm",
    "Warsaw",
    "New York",
    "Los Angeles",
    "Sao Paulo",
    "Singapore",
    "Tokyo",
    "Sydney",
];

/// §5.5.1 reduced deployments, as index lists into [`PRODUCTION_CITIES`].
pub mod subsets {
    /// Two VPs: one in North America, one in Europe.
    pub const EU_NA: [usize; 2] = [17 /* Newark */, 0 /* Amsterdam */];

    /// One site per continent (6 VPs; the paper keeps the highest-response
    /// site per continent).
    pub const ONE_PER_CONTINENT: [usize; 6] = [
        17, // Newark (NA)
        20, // Sao Paulo (SA)
        0,  // Amsterdam (EU)
        8,  // Johannesburg (AF)
        25, // Singapore (AS)
        27, // Sydney (OC)
    ];

    /// Two sites per continent, maximising geographic distance (11 VPs —
    /// only one site exists in Africa).
    pub const TWO_PER_CONTINENT: [usize; 11] = [
        17, 10, // Newark + Los Angeles (NA east/west)
        20, 21, // Sao Paulo + Santiago (SA)
        9, 31, // London + Warsaw (EU west/east)
        8,  // Johannesburg (AF)
        29, 25, // Tokyo + Singapore (AS)
        27, 13, // Sydney + Melbourne (OC)
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_geo::CityDb;

    #[test]
    fn production_cities_resolve_and_are_unique() {
        let db = CityDb::embedded();
        let mut seen = std::collections::HashSet::new();
        for name in PRODUCTION_CITIES {
            assert!(db.by_name(name).is_some(), "unknown city {name}");
            assert!(seen.insert(name), "duplicate {name}");
        }
        assert_eq!(PRODUCTION_CITIES.len(), 32);
    }

    #[test]
    fn cctld_cities_resolve() {
        let db = CityDb::embedded();
        for name in CCTLD_CITIES {
            assert!(db.by_name(name).is_some(), "unknown city {name}");
        }
    }

    #[test]
    fn subsets_are_valid_indices() {
        for &i in subsets::EU_NA
            .iter()
            .chain(&subsets::ONE_PER_CONTINENT)
            .chain(&subsets::TWO_PER_CONTINENT)
        {
            assert!(i < 32);
        }
        assert_eq!(subsets::EU_NA.len(), 2);
        assert_eq!(subsets::ONE_PER_CONTINENT.len(), 6);
        assert_eq!(subsets::TWO_PER_CONTINENT.len(), 11);
        // Subset entries must be distinct.
        let mut two = subsets::TWO_PER_CONTINENT.to_vec();
        two.sort_unstable();
        two.dedup();
        assert_eq!(two.len(), 11);
    }

    #[test]
    fn source_addresses_are_distinct() {
        assert_ne!(anycast_src_v4(PlatformId(0)), anycast_src_v4(PlatformId(1)));
        assert_ne!(vp_src_v4(PlatformId(0), 0), vp_src_v4(PlatformId(0), 1));
        assert_ne!(vp_src_v6(PlatformId(0), 3), vp_src_v6(PlatformId(1), 3));
        assert_ne!(anycast_src_v6(PlatformId(2)), anycast_src_v6(PlatformId(3)));
    }
}

//! BGP announcement table (the pfx2as view).
//!
//! Route collectors see announcements that are usually *less specific* than
//! the `/24` granularity anycast actually follows (§5.6): an operator
//! announces a `/20` of which only some `/24`s are replicated, or a CDN
//! announces a covering prefix over a mix of anycast and unicast space.
//! The census needs this view twice: to aggregate its `/24` verdicts into
//! announced prefixes (CAIDA pfx2as), and to evaluate BGPTools-style
//! detectors that generalise a single anycast address to its whole
//! announced prefix (Table 7).
//!
//! The simulator's announced table is derived from target ground truth:
//! maximal runs of consecutive `/24`s with the same originating entity are
//! split into aligned CIDR chunks whose sizes follow the measured
//! distribution of announcement lengths (most announcements are `/24`s,
//! with a tail up to `/11`).

use laces_packet::{Cidr4, Prefix24, PrefixKey};
use serde::{Deserialize, Serialize};

use crate::rng;
use crate::targets::TargetKind;
use crate::world::World;

/// One announced prefix and its origin ASN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced CIDR.
    pub prefix: Cidr4,
    /// Origin ASN (operator ASN for anycast space, hosting-AS ASN
    /// otherwise).
    pub asn: u32,
}

/// The announced-prefix table for the world's IPv4 space, sorted by
/// network address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BgpTable {
    /// All announcements, non-overlapping, covering every known `/24`.
    pub announcements: Vec<Announcement>,
}

impl BgpTable {
    /// The announcement covering a `/24`, if any (binary search).
    pub fn covering(&self, p: Prefix24) -> Option<&Announcement> {
        // Announcements are sorted and non-overlapping: find the last one
        // starting at or before p.
        let idx = self
            .announcements
            .partition_point(|a| a.prefix.network() <= p.network());
        idx.checked_sub(1)
            .map(|i| &self.announcements[i])
            .filter(|a| a.prefix.contains_24(p))
    }

    /// Number of announcements.
    pub fn len(&self) -> usize {
        self.announcements.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.announcements.is_empty()
    }
}

/// A route-collector event, as a BGP feed (RIPE RIS / RouteViews style)
/// would surface it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpEventKind {
    /// A prefix announcement appeared that was absent yesterday.
    NewAnnouncement,
    /// A prefix announcement was withdrawn.
    Withdrawal,
    /// A more-specific or same prefix appeared with a different origin —
    /// the classic hijack signature.
    OriginChange {
        /// The legitimate origin ASN.
        from: u32,
        /// The new (bogus) origin ASN.
        to: u32,
    },
}

/// One BGP feed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpEvent {
    /// The affected census prefix.
    pub prefix: PrefixKey,
    /// What the collectors saw.
    pub kind: BgpEventKind,
}

/// The BGP events route collectors surface on `day`: temporary-anycast
/// prefixes turning up or down, and hijack announcements. This is the feed
/// the paper's future work proposes to use for trigger-based detection of
/// short-lived anycast (§6).
pub fn bgp_updates(world: &World, day: u32) -> Vec<BgpEvent> {
    let mut events = Vec::new();
    for t in &world.targets {
        if let Some(sched) = t.temp {
            let today = sched.active_on(day);
            let yesterday = day > 0 && sched.active_on(day - 1);
            if today && !yesterday {
                events.push(BgpEvent {
                    prefix: t.prefix,
                    kind: BgpEventKind::NewAnnouncement,
                });
            } else if !today && (day == 0 || yesterday) && day > 0 {
                events.push(BgpEvent {
                    prefix: t.prefix,
                    kind: BgpEventKind::Withdrawal,
                });
            }
        }
        if let Some(h) = t.hijack {
            if h.day == day {
                let from = match t.kind {
                    TargetKind::Unicast { .. } => world.topo.ases[t.as_idx as usize].asn,
                    _ => 0,
                };
                events.push(BgpEvent {
                    prefix: t.prefix,
                    kind: BgpEventKind::OriginChange {
                        from,
                        to: world.topo.ases[h.attacker_as as usize].asn,
                    },
                });
            }
        }
    }
    events
}

/// Origin entity of a v4 target, for grouping into announcements.
fn origin_of(world: &World, idx: usize) -> u32 {
    let t = &world.targets[idx];
    match t.kind {
        TargetKind::Anycast { dep } => world.deployment(dep).asn,
        TargetKind::PartialAnycast { dep, .. } => world.deployment(dep).asn,
        TargetKind::GlobalUnicast { .. } => 8_075, // the Microsoft-pattern AS
        TargetKind::BackingAnycast { dep, .. } => world.deployment(dep).asn,
        TargetKind::Unicast { .. } => world.topo.ases[t.as_idx as usize].asn,
    }
}

/// Largest aligned prefix length that can start at `net` and stay within
/// `remaining` /24s.
fn max_chunk(net: u32, remaining: u32) -> u8 {
    // Alignment: a /L prefix must start on a 2^(24-L) /24 boundary.
    let mut len = 24u8;
    while len > 11 {
        let size = 1u32 << (24 - (len - 1));
        let align_ok = (net >> 8).is_multiple_of(size);
        if align_ok && remaining >= size {
            len -= 1;
        } else {
            break;
        }
    }
    len
}

/// Draw an announcement length for a chunk, biased toward `/24` and `/20`
/// as in the observed distribution (Table 7), bounded by alignment.
fn draw_len(world: &World, net: u32, remaining: u32) -> u8 {
    let floor = max_chunk(net, remaining); // smallest numeric length allowed
    let u = rng::unit_f64(rng::key(world.cfg.seed, &[0xB6B, u64::from(net)]));
    // Operators regularly announce the whole aligned block they own.
    if u < 0.12 {
        return floor;
    }
    let desired: u8 = match u {
        x if x < 0.55 => 24,
        x if x < 0.66 => 23,
        x if x < 0.74 => 22,
        x if x < 0.79 => 21,
        x if x < 0.93 => 20,
        x if x < 0.96 => 19,
        x if x < 0.975 => 17,
        x if x < 0.99 => 16,
        x if x < 0.995 => 14,
        x if x < 0.998 => 13,
        _ => 11,
    };
    desired.max(floor)
}

/// Build the announced-prefix table from the world's IPv4 ground truth.
pub fn bgp_table(world: &World) -> BgpTable {
    let mut announcements = Vec::new();
    let mut i = 0usize;
    while i < world.n_v4 {
        let origin = origin_of(world, i);
        // Extend the run of same-origin consecutive /24s.
        let mut j = i + 1;
        while j < world.n_v4 && origin_of(world, j) == origin {
            j += 1;
        }
        // Split the run [i, j) into aligned chunks.
        let mut k = i;
        while k < j {
            let net = match world.targets[k].prefix {
                PrefixKey::V4(p) => p.network(),
                PrefixKey::V6(_) => unreachable!("v4 range"),
            };
            let len = draw_len(world, net, (j - k) as u32);
            let c = Cidr4::new(net, len);
            debug_assert_eq!(c.network(), net, "chunk must be aligned");
            announcements.push(Announcement {
                prefix: c,
                asn: origin,
            });
            k += c.count_24s() as usize;
        }
        i = j;
    }
    BgpTable { announcements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn table_covers_every_v4_target_exactly_once() {
        let w = world();
        let table = bgp_table(&w);
        let mut covered = 0usize;
        for a in &table.announcements {
            covered += a.prefix.count_24s() as usize;
        }
        assert_eq!(covered, w.n_v4, "announcements must tile the space");
        // And lookups agree.
        for t in &w.targets[..w.n_v4] {
            let PrefixKey::V4(p) = t.prefix else {
                unreachable!()
            };
            let a = table.covering(p).expect("every /24 covered");
            assert!(a.prefix.contains_24(p));
        }
    }

    #[test]
    fn announcements_are_sorted_and_disjoint() {
        let w = world();
        let table = bgp_table(&w);
        for pair in table.announcements.windows(2) {
            let end = pair[0].prefix.network() + (pair[0].prefix.count_24s() << 8);
            assert!(
                end <= pair[1].prefix.network(),
                "overlap: {} then {}",
                pair[0].prefix,
                pair[1].prefix
            );
        }
    }

    #[test]
    fn anycast_prefixes_carry_operator_asn() {
        let w = world();
        let table = bgp_table(&w);
        for t in &w.targets[..w.n_v4] {
            if let TargetKind::Anycast { dep } = t.kind {
                let PrefixKey::V4(p) = t.prefix else {
                    unreachable!()
                };
                assert_eq!(table.covering(p).unwrap().asn, w.deployment(dep).asn);
            }
        }
    }

    #[test]
    fn announcement_sizes_are_mostly_slash24_with_a_tail() {
        let w = World::generate(WorldConfig::paper_topology_tiny_targets());
        let table = bgp_table(&w);
        let n24 = table
            .announcements
            .iter()
            .filter(|a| a.prefix.len() == 24)
            .count();
        let big = table
            .announcements
            .iter()
            .filter(|a| a.prefix.len() < 20)
            .count();
        assert!(n24 * 2 > table.len(), "/24 should dominate");
        assert!(big > 0, "some large announcements must exist");
        assert!(table
            .announcements
            .iter()
            .all(|a| (11..=24).contains(&a.prefix.len())));
    }

    #[test]
    fn deterministic() {
        let w = world();
        assert_eq!(bgp_table(&w).announcements, bgp_table(&w).announcements);
    }
}

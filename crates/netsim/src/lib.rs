//! A synthetic Internet for the LACeS anycast census.
//!
//! The paper's system runs on a 32-site anycast cloud deployment and probes
//! the real Internet; this crate replaces both with a deterministic
//! simulation that reproduces exactly the observables the census methodology
//! depends on (see `DESIGN.md` §2 for the substitution argument):
//!
//! * **Catchments** — which vantage point a packet reaches — from a
//!   generated AS-level topology routed with the Gao-Rexford valley-free
//!   model ([`topology`], [`routing`]).
//! * **Latencies** — speed-of-light-respecting RTTs with realistic path
//!   stretch, access delay, and jitter ([`latency`]).
//! * **Ground truth** — a registry of anycast deployments with the paper's
//!   hypergiant skew, regional and temporary anycast, partial anycast,
//!   backing-anycast traffic engineering, and globally-announced unicast
//!   ([`deployments`], [`targets`]).
//! * **Dynamics** — daily catchment churn, route flips whose likelihood
//!   grows with the probing window, per-packet reverse-path instability,
//!   loss, and target churn ([`wire`]).
//!
//! Everything is a pure function of the world seed: two [`World`]s generated
//! from the same [`WorldConfig`] behave identically, probe for probe.
//!
//! # Example
//!
//! ```
//! use laces_netsim::{World, WorldConfig};
//! use laces_netsim::wire::{MeasurementCtx, ProbeSource};
//! use laces_packet::probe::{self, ProbeEncoding, ProbeMeta, Protocol};
//!
//! let world = World::generate(WorldConfig::tiny());
//! let prod = world.std_platforms.production;
//!
//! // Probe the first target from worker 0 of the production platform.
//! let dst = match world.targets[0].prefix {
//!     laces_packet::PrefixKey::V4(p) => std::net::IpAddr::V4(p.addr(77)),
//!     laces_packet::PrefixKey::V6(p) => std::net::IpAddr::V6(p.addr(77)),
//! };
//! let src = laces_netsim::platform::anycast_src_v4(prod);
//! let meta = ProbeMeta { measurement_id: 1, worker_id: 0, tx_time_ms: 0 };
//! let pkt = probe::build_probe(src, dst, Protocol::Icmp, &meta, ProbeEncoding::PerWorker);
//! let ctx = MeasurementCtx { id: 1, day: 0, span_ms: 31_000 };
//! let delivery = world
//!     .send_probe(ProbeSource::Worker { platform: prod, site: 0 }, &pkt, 0, 0, &ctx)
//!     .unwrap();
//! // `delivery` is Some(reply) if the target is up and ICMP-responsive.
//! # let _ = delivery;
//! ```

#![forbid(unsafe_code)]

pub mod bgp;
pub mod deployments;
pub mod latency;
pub mod platform;
pub mod rng;
pub mod routing;
pub mod targets;
pub mod topology;
pub mod trace;
pub mod validate;
pub mod wire;
pub mod world;

pub use bgp::{bgp_table, bgp_updates, Announcement, BgpEvent, BgpEventKind, BgpTable};
pub use deployments::{Deployment, DeploymentId, Site};
pub use latency::LatencyModel;
pub use platform::{Platform, PlatformId, PlatformKind, Vp};
pub use routing::{RouteClass, Routes, TieSet};
pub use targets::{ChaosProfile, Hijack, Resp, Target, TargetId, TargetKind};
pub use topology::{AsNode, Tier, TopoConfig, Topology};
pub use trace::TraceHop;
pub use wire::{
    flip_probability, BatchProbe, CaptureFaults, Delivery, FabricStats, FabricVerdict,
    MeasurementCtx, ProbeSession, ProbeSource, WireStats,
};
pub use world::{StandardPlatforms, World, WorldConfig};

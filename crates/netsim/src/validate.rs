//! World consistency validation.
//!
//! A generated world is a web of cross-references (targets → deployments →
//! shell ASes → topology → cities). [`World::validate`] checks every
//! invariant the measurement layers rely on; it runs in the test suite and
//! is cheap enough to call after any custom world construction.

use std::collections::BTreeSet;

use laces_packet::PrefixKey;

use crate::targets::TargetKind;
use crate::world::World;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant.
    pub rule: &'static str,
    /// Human detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

impl World {
    /// Check every structural invariant; returns all violations found
    /// (empty = consistent).
    pub fn validate(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        let n_as = self.topo.len() as u32;
        let n_dep = self.deployments.len() as u32;

        // Topology: relationship tables are sized and well-formed.
        if self.topo.providers.len() != self.topo.len()
            || self.topo.customers.len() != self.topo.len()
            || self.topo.peers.len() != self.topo.len()
        {
            v.push(Violation {
                rule: "topology-tables",
                detail: "adjacency tables mis-sized".into(),
            });
        }
        for (i, provs) in self.topo.providers.iter().enumerate() {
            for &p in provs {
                if p as usize >= i {
                    v.push(Violation {
                        rule: "provider-ordering",
                        detail: format!("AS {i} has provider {p} with a non-smaller index"),
                    });
                }
            }
        }

        // Deployments: sites reference valid ASes/cities, one AS per site,
        // at least two sites.
        for (d, dep) in self.deployments.iter().enumerate() {
            if dep.sites.len() < 2 {
                v.push(Violation {
                    rule: "deployment-size",
                    detail: format!("deployment {d} has <2 sites"),
                });
            }
            let mut ases = BTreeSet::new();
            for s in &dep.sites {
                if s.as_idx >= n_as {
                    v.push(Violation {
                        rule: "site-as",
                        detail: format!("deployment {d} site AS {} out of range", s.as_idx),
                    });
                }
                if !ases.insert(s.as_idx) {
                    v.push(Violation {
                        rule: "site-as-unique",
                        detail: format!("deployment {d} reuses AS {} across sites", s.as_idx),
                    });
                }
                if usize::from(s.city.0) >= self.db.len() {
                    v.push(Violation {
                        rule: "site-city",
                        detail: format!("deployment {d} city out of range"),
                    });
                }
            }
        }

        // Targets: prefix addressing is bijective; references are in range;
        // v4/v6 partition respected.
        for (i, t) in self.targets.iter().enumerate() {
            let expect_v4 = i < self.n_v4;
            if t.prefix.is_v4() != expect_v4 {
                v.push(Violation {
                    rule: "family-partition",
                    detail: format!("target {i} family does not match its range"),
                });
            }
            match self.lookup(t.prefix) {
                Some(id) if id.0 as usize == i => {}
                other => v.push(Violation {
                    rule: "lookup-bijection",
                    detail: format!("target {i} lookup returned {other:?}"),
                }),
            }
            match t.kind {
                TargetKind::Anycast { dep } => {
                    if dep.0 >= n_dep {
                        v.push(Violation {
                            rule: "target-dep",
                            detail: format!("target {i} dep out of range"),
                        });
                    }
                }
                TargetKind::PartialAnycast { dep, .. } | TargetKind::BackingAnycast { dep, .. } => {
                    if dep.0 >= n_dep {
                        v.push(Violation {
                            rule: "target-dep",
                            detail: format!("target {i} dep out of range"),
                        });
                    }
                    if t.as_idx >= n_as {
                        v.push(Violation {
                            rule: "target-as",
                            detail: format!("target {i} AS out of range"),
                        });
                    }
                }
                TargetKind::Unicast { .. } => {
                    if t.as_idx >= n_as {
                        v.push(Violation {
                            rule: "target-as",
                            detail: format!("target {i} AS out of range"),
                        });
                    }
                }
                TargetKind::GlobalUnicast { egress, .. } => {
                    for e in egress {
                        if e >= n_as {
                            v.push(Violation {
                                rule: "target-egress",
                                detail: format!("target {i} egress AS out of range"),
                            });
                        }
                    }
                }
            }
            if let Some(h) = t.hijack {
                if h.attacker_as >= n_as {
                    v.push(Violation {
                        rule: "hijack-as",
                        detail: format!("target {i} attacker out of range"),
                    });
                }
            }
        }

        // Platforms: VP ASes exist; anycast platforms within worker limits.
        for (p, plat) in self.platforms.iter().enumerate() {
            if plat.n_vps() == 0 {
                v.push(Violation {
                    rule: "platform-empty",
                    detail: format!("platform {p} has no VPs"),
                });
            }
            for i in 0..plat.n_vps() {
                if plat.vp_as(i) >= n_as {
                    v.push(Violation {
                        rule: "vp-as",
                        detail: format!("platform {p} VP {i} AS out of range"),
                    });
                }
            }
            if plat.is_anycast() && plat.n_vps() > 64 {
                v.push(Violation {
                    rule: "worker-limit",
                    detail: format!("platform {p} exceeds the 64-worker encoding limit"),
                });
            }
        }

        // Prefix uniqueness across the population.
        let mut seen: BTreeSet<PrefixKey> = BTreeSet::new();
        for t in &self.targets {
            if !seen.insert(t.prefix) {
                v.push(Violation {
                    rule: "prefix-unique",
                    detail: format!("duplicate prefix {}", t.prefix),
                });
            }
        }

        v
    }
}

#[cfg(test)]
mod tests {
    use crate::world::{World, WorldConfig};

    #[test]
    fn tiny_world_is_consistent() {
        let w = World::generate(WorldConfig::tiny());
        let violations = w.validate();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn mid_world_is_consistent() {
        let w = World::generate(WorldConfig::paper_topology_tiny_targets());
        let violations = w.validate();
        assert!(violations.is_empty(), "{violations:?}");
    }
}

//! Anycast deployment ground truth.
//!
//! The simulator's deployment registry plays the role that operator ground
//! truth (Cloudflare, Fastly, Google/Amazon `ipranges`, ccTLD operators)
//! plays in the paper: it is the ultimate arbiter of which prefixes are
//! anycast, where their sites are, and when they are active. The default
//! registry reproduces Table 6's hypergiant skew with the paper's absolute
//! prefix counts, plus a long tail of small and regional deployments, DNS
//! anycast that only answers UDP (the G-root case), and Imperva-style
//! on-demand (temporary) anycast.

use laces_geo::CityId;
use serde::{Deserialize, Serialize};

/// Identifies a deployment within the world registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeploymentId(pub u32);

/// One anycast site: a shell AS in the topology plus its metro.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Topology index of the AS announcing the prefix at this site.
    pub as_idx: u32,
    /// Metro where the site is located.
    pub city: CityId,
    /// Identity this site discloses in CHAOS `hostname.bind` TXT responses.
    pub chaos_identity: String,
}

/// An anycast deployment: a set of sites that all announce the same
/// prefixes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// Operator name (for ground-truth reports, Table 6).
    pub operator: String,
    /// Origin ASN shown in BGP (Table 6 ranking key).
    pub asn: u32,
    /// The sites. At least two (that is what makes it anycast).
    pub sites: Vec<Site>,
    /// Whether the deployment is confined to a small geographic region
    /// (the paper's hard-to-detect case).
    pub regional: bool,
}

impl Deployment {
    /// Number of sites (the ground-truth replica count).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Distinct metros covered (latency methods cannot distinguish
    /// co-located sites, so this is the best any GCD method can enumerate).
    pub fn n_distinct_cities(&self) -> usize {
        let mut cities: Vec<CityId> = self.sites.iter().map(|s| s.city).collect();
        cities.sort_unstable();
        cities.dedup();
        cities.len()
    }
}

/// Activation schedule for temporary (on-demand DDoS-mitigation style)
/// anycast: the prefix is anycast on some days and unicast/absent on others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TempSchedule {
    /// Cycle length in days.
    pub period: u32,
    /// Days per cycle on which anycast is active.
    pub active: u32,
    /// Phase offset in days.
    pub phase: u32,
}

impl TempSchedule {
    /// Whether the prefix is anycast on `day`.
    pub fn active_on(&self, day: u32) -> bool {
        (day + self.phase) % self.period < self.active
    }
}

/// Geographic spread of a deployment's sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Spread {
    /// Sites spread world-wide (population-weighted metros).
    Global,
    /// Sites within `radius_km` of the named anchor city.
    Regional {
        /// Anchor city name (must exist in the city database).
        anchor: String,
        /// Maximum distance of any site from the anchor.
        radius_km: f64,
    },
}

/// Per-protocol responsiveness probabilities for an operator's prefixes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RespProbs {
    /// Probability a prefix answers ICMP echo.
    pub icmp: f64,
    /// Probability a prefix answers TCP SYN/ACK with RST.
    pub tcp: f64,
    /// Probability a prefix answers DNS over UDP.
    pub udp: f64,
}

impl RespProbs {
    /// Web/CDN profile: ping and TCP yes, DNS no.
    pub const CDN: RespProbs = RespProbs {
        icmp: 0.97,
        tcp: 0.9,
        udp: 0.05,
    };
    /// DNS operator profile.
    pub const DNS: RespProbs = RespProbs {
        icmp: 0.9,
        tcp: 0.35,
        udp: 0.97,
    };
    /// DNS that filters everything but the service itself (G-root style).
    pub const DNS_ONLY: RespProbs = RespProbs {
        icmp: 0.0,
        tcp: 0.0,
        udp: 0.97,
    };
}

/// Blueprint for one named operator in the default world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Operator name.
    pub name: String,
    /// Origin ASN.
    pub asn: u32,
    /// Number of anycast sites.
    pub n_sites: usize,
    /// Site placement.
    pub spread: Spread,
    /// Number of IPv4 `/24` anycast prefixes.
    pub v4_prefixes: usize,
    /// Number of IPv6 `/48` anycast prefixes.
    pub v6_prefixes: usize,
    /// Responsiveness profile.
    pub resp: RespProbs,
    /// Fraction of prefixes that are authoritative nameservers (answer
    /// CHAOS with per-site identities).
    pub nameserver_fraction: f64,
    /// Additional IPv4 prefixes that are *temporarily* anycast
    /// (Imperva-style on-demand mitigation).
    pub temporary_v4: usize,
    /// Additional IPv6 `/48`s that are unicast with a *backing anycast*
    /// prefix (Fastly-style traffic engineering, §5.8.2).
    pub backing_v6: usize,
}

/// The paper-calibrated operator table (Table 6 absolute prefix counts).
pub fn default_operators() -> Vec<OperatorSpec> {
    let op =
        |name: &str, asn: u32, n_sites: usize, v4: usize, v6: usize, resp: RespProbs, ns: f64| {
            OperatorSpec {
                name: name.to_string(),
                asn,
                n_sites,
                spread: Spread::Global,
                v4_prefixes: v4,
                v6_prefixes: v6,
                resp,
                nameserver_fraction: ns,
                temporary_v4: 0,
                backing_v6: 0,
            }
        };
    let mut ops = vec![
        op(
            "Google Cloud",
            396_982,
            103,
            3_627,
            5,
            RespProbs {
                icmp: 0.98,
                tcp: 0.85,
                udp: 0.02,
            },
            0.0,
        ),
        op(
            "Cloudflare",
            13_335,
            285,
            3_133,
            284,
            RespProbs {
                icmp: 0.98,
                tcp: 0.95,
                udp: 0.55,
            },
            0.05,
        ),
        op(
            "Amazon",
            16_509,
            105,
            1_286,
            120,
            RespProbs {
                icmp: 0.92,
                tcp: 0.6,
                udp: 0.1,
            },
            0.0,
        ),
        op(
            "Fastly",
            54_113,
            95,
            435,
            65,
            RespProbs {
                icmp: 0.97,
                tcp: 0.95,
                udp: 0.03,
            },
            0.0,
        ),
        op(
            "Cloudflare Spectrum",
            209_242,
            250,
            289,
            3_338,
            RespProbs {
                icmp: 0.97,
                tcp: 0.9,
                udp: 0.1,
            },
            0.0,
        ),
        op(
            "Incapsula (Imperva)",
            19_551,
            45,
            2,
            352,
            RespProbs {
                icmp: 0.95,
                tcp: 0.85,
                udp: 0.02,
            },
            0.0,
        ),
        op("Afilias", 12_041, 25, 221, 222, RespProbs::DNS, 0.95),
        op("GoDaddy", 44_273, 30, 32, 122, RespProbs::DNS, 0.95),
    ];
    // Imperva's on-demand DDoS mitigation: prefixes that are anycast only on
    // some days (suspected "temporary anycast", §5.6/§5.7).
    ops[5].temporary_v4 = 600;
    // Fastly's backing-anycast traffic engineering for IPv6 (§5.8.2).
    ops[3].backing_v6 = 200;
    ops
}

/// Parameters for the generated long tail of small deployments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailSpec {
    /// Number of tail deployments.
    pub n_deployments: usize,
    /// Total IPv4 `/24`s across the tail.
    pub total_v4: usize,
    /// Total IPv6 `/48`s across the tail.
    pub total_v6: usize,
    /// Fraction of tail deployments confined to one region.
    pub regional_fraction: f64,
    /// Fraction of tail deployments that are DNS operators.
    pub dns_fraction: f64,
    /// Number of deployments that answer *only* UDP/DNS (G-root style;
    /// the paper found 97 such prefixes at >3 VPs).
    pub n_dns_only: usize,
}

impl Default for TailSpec {
    fn default() -> Self {
        TailSpec {
            n_deployments: 1_900,
            total_v4: 4_500,
            total_v6: 1_630,
            regional_fraction: 0.20,
            dns_fraction: 0.45,
            n_dns_only: 30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_counts_match_paper() {
        let ops = default_operators();
        let find = |name: &str| ops.iter().find(|o| o.name == name).unwrap();
        assert_eq!(find("Google Cloud").v4_prefixes, 3_627);
        assert_eq!(find("Cloudflare").v4_prefixes, 3_133);
        assert_eq!(find("Amazon").v4_prefixes, 1_286);
        assert_eq!(find("Fastly").v4_prefixes, 435);
        assert_eq!(find("Cloudflare Spectrum").v6_prefixes, 3_338);
        assert_eq!(find("Incapsula (Imperva)").v6_prefixes, 352);
        assert_eq!(find("Afilias").v6_prefixes, 222);
        assert_eq!(find("GoDaddy").v6_prefixes, 122);
    }

    #[test]
    fn big_eight_v4_sum() {
        let sum: usize = default_operators().iter().map(|o| o.v4_prefixes).sum();
        assert_eq!(sum, 9_025);
    }

    #[test]
    fn temp_schedule_cycles() {
        let s = TempSchedule {
            period: 6,
            active: 2,
            phase: 1,
        };
        let days: Vec<bool> = (0..12).map(|d| s.active_on(d)).collect();
        // (d + 1) % 6 < 2  =>  active on d = 0, 5, 6, 11 within 12 days.
        assert_eq!(
            days,
            vec![true, false, false, false, false, true, true, false, false, false, false, true]
        );
        assert_eq!(days.iter().filter(|&&a| a).count(), 4);
    }

    #[test]
    fn distinct_cities_deduplicates() {
        let d = Deployment {
            operator: "x".into(),
            asn: 1,
            sites: vec![
                Site {
                    as_idx: 0,
                    city: CityId(3),
                    chaos_identity: "a".into(),
                },
                Site {
                    as_idx: 1,
                    city: CityId(3),
                    chaos_identity: "b".into(),
                },
                Site {
                    as_idx: 2,
                    city: CityId(4),
                    chaos_identity: "c".into(),
                },
            ],
            regional: false,
        };
        assert_eq!(d.n_sites(), 3);
        assert_eq!(d.n_distinct_cities(), 2);
    }

    #[test]
    fn profiles_are_probabilities() {
        for o in default_operators() {
            for p in [o.resp.icmp, o.resp.tcp, o.resp.udp, o.nameserver_fraction] {
                assert!((0.0..=1.0).contains(&p), "{}", o.name);
            }
        }
    }
}

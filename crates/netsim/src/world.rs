//! World generation and catchment resolution.
//!
//! A [`World`] is a complete, deterministic, synthetic Internet: topology,
//! target population with ground truth, anycast deployments, and measurement
//! platforms. All catchment questions — *which site of deployment D does a
//! probe from AS X reach?* and *which worker of platform P receives a
//! response originated by AS Y?* — are answered here, from cached
//! Gao-Rexford route computations.

use std::collections::BTreeMap;
use std::sync::Arc;

use laces_geo::{CityDb, CityId, Coord};
use laces_packet::PrefixKey;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::deployments::{
    default_operators, Deployment, DeploymentId, OperatorSpec, RespProbs, Site, Spread, TailSpec,
    TempSchedule,
};
use crate::latency::LatencyModel;
use crate::platform::{
    subsets, Platform, PlatformId, PlatformKind, Vp, CCTLD_CITIES, PRODUCTION_CITIES,
};
use crate::rng;
use crate::routing::{self, Routes, TieSet};
use crate::targets::{addressing, ChaosProfile, Resp, Target, TargetId, TargetKind};
use crate::topology::{Tier, TopoConfig, Topology};

/// Configuration of a synthetic world.
///
/// The defaults ([`WorldConfig::paper`]) keep the paper's *absolute* counts
/// for every anycast and anomalous population and scale down only the plain
/// unicast mass (documented in `DESIGN.md` §4); [`WorldConfig::tiny`] is a
/// seconds-scale world for tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Topology shape.
    pub topo: TopoConfig,
    /// Plain responsive unicast IPv4 `/24`s.
    pub unicast_24s: usize,
    /// Unresponsive IPv4 `/24`s (probing cost, no replies).
    pub unresponsive_24s: usize,
    /// Microsoft-style globally-announced unicast `/24`s.
    pub global_unicast_24s: usize,
    /// Unicast `/24`s whose reverse path re-resolves per packet (persistent
    /// 2-VP false positives).
    pub jittery_24s: usize,
    /// Stable partial-anycast `/24`s (§5.6).
    pub partial_stable_24s: usize,
    /// Partial-anycast `/24`s that revert to unicast on some days.
    pub partial_temp_24s: usize,
    /// Unicast nameservers (answer DNS and CHAOS with co-located server
    /// identities) among the unicast mass.
    pub colo_nameserver_24s: usize,
    /// Plain responsive unicast IPv6 `/48`s.
    pub unicast_48s: usize,
    /// Unresponsive IPv6 `/48`s.
    pub unresponsive_48s: usize,
    /// Microsoft-style IPv6 `/48`s.
    pub global_unicast_48s: usize,
    /// Jittery IPv6 `/48`s.
    pub jittery_48s: usize,
    /// Named operators (Table 6).
    pub operators: Vec<OperatorSpec>,
    /// Long-tail deployment generator parameters.
    pub tail: TailSpec,
    /// Responsiveness of plain unicast targets.
    pub unicast_resp: RespProbs,
    /// Ark-like platform core size (the daily GCD platform).
    pub n_ark_core: usize,
    /// Additional Ark development VPs (Appendix B).
    pub n_ark_dev_extra: usize,
    /// RIPE-Atlas-like platform size.
    pub n_atlas: usize,
    /// Per-probe loss probability on the wire.
    pub loss_rate: f64,
    /// Number of Ark VPs whose hosting AS filters specific IPv6 `/48`
    /// announcements (the Fastly backing-anycast FP mechanism, §5.8.2).
    pub n_broken_v6_vps: usize,
    /// Unicast `/24`s that suffer a one-day prefix hijack somewhere in the
    /// first [`HIJACK_WINDOW_DAYS`] days (§6: hijack detection).
    pub hijacked_24s: usize,
}

/// Days over which generated hijack events are spread.
pub const HIJACK_WINDOW_DAYS: u32 = 30;

impl WorldConfig {
    /// Paper-calibrated world (see DESIGN.md §4 for the scaling argument).
    pub fn paper() -> Self {
        WorldConfig {
            seed: 0xCA5E,
            topo: TopoConfig::default(),
            unicast_24s: 280_000,
            unresponsive_24s: 60_000,
            global_unicast_24s: 8_700,
            jittery_24s: 2_900,
            partial_stable_24s: 1_178,
            partial_temp_24s: 305,
            colo_nameserver_24s: 35_000,
            unicast_48s: 40_000,
            unresponsive_48s: 15_000,
            global_unicast_48s: 60,
            jittery_48s: 190,
            operators: default_operators(),
            tail: TailSpec::default(),
            unicast_resp: RespProbs {
                icmp: 0.94,
                tcp: 0.25,
                udp: 0.06,
            },
            n_ark_core: 163,
            n_ark_dev_extra: 64,
            n_atlas: 481,
            loss_rate: 0.004,
            n_broken_v6_vps: 2,
            hijacked_24s: 150,
        }
    }

    /// A mid-size world: tiny topology but a larger target population, for
    /// tests that need population-level statistics without paper-scale
    /// runtimes.
    pub fn paper_topology_tiny_targets() -> Self {
        let mut cfg = Self::tiny();
        cfg.unicast_24s = 20_000;
        cfg.unresponsive_24s = 4_000;
        cfg.global_unicast_24s = 600;
        cfg.jittery_24s = 160;
        cfg
    }

    /// A small world for unit and integration tests (sub-second generation).
    pub fn tiny() -> Self {
        WorldConfig {
            seed: 0x7E57,
            topo: TopoConfig::tiny(),
            unicast_24s: 1_500,
            unresponsive_24s: 300,
            global_unicast_24s: 60,
            jittery_24s: 30,
            partial_stable_24s: 12,
            partial_temp_24s: 5,
            colo_nameserver_24s: 150,
            unicast_48s: 400,
            unresponsive_48s: 100,
            global_unicast_48s: 5,
            jittery_48s: 5,
            operators: {
                let mut ops = default_operators();
                for o in &mut ops {
                    o.n_sites = (o.n_sites / 8).max(3);
                    o.v4_prefixes = (o.v4_prefixes / 100).max(1);
                    o.v6_prefixes = (o.v6_prefixes / 100).max(1);
                    o.temporary_v4 /= 100;
                    o.backing_v6 /= 20;
                }
                ops
            },
            tail: TailSpec {
                n_deployments: 40,
                total_v4: 90,
                total_v6: 30,
                regional_fraction: 0.2,
                dns_fraction: 0.45,
                n_dns_only: 4,
            },
            unicast_resp: RespProbs {
                icmp: 0.94,
                tcp: 0.25,
                udp: 0.06,
            },
            n_ark_core: 40,
            n_ark_dev_extra: 15,
            n_atlas: 80,
            loss_rate: 0.004,
            n_broken_v6_vps: 2,
            hijacked_24s: 10,
        }
    }
}

/// Handles to the standard platforms every world carries.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StandardPlatforms {
    /// The 32-site production anycast deployment.
    pub production: PlatformId,
    /// The 12-site external ccTLD deployment (§5.4).
    pub cctld: PlatformId,
    /// 2-VP subset (§5.5.1).
    pub eu_na: PlatformId,
    /// 6-VP subset.
    pub one_per_continent: PlatformId,
    /// 11-VP subset.
    pub two_per_continent: PlatformId,
    /// Ark-like platform, daily-census size.
    pub ark: PlatformId,
    /// Ark-like platform including development VPs (GCD_Ark).
    pub ark_dev: PlatformId,
    /// RIPE-Atlas-like platform.
    pub atlas: PlatformId,
}

/// Forward catchment of one deployment, restricted to registered VP ASes.
#[derive(Debug, Clone)]
pub struct DepCatchment {
    /// Per VP-AS position: tied best sites and AS-path distance.
    pub per_vp: Vec<(TieSet, u16)>,
}

#[derive(Default)]
struct Caches {
    platform_routes: BTreeMap<u16, Arc<Routes>>,
    dep_catchments: BTreeMap<u32, Arc<DepCatchment>>,
}

/// Lazily-filled memo table of pure-function f64 values, stored as bit
/// patterns in relaxed atomics. The sentinel (`u64::MAX`, a NaN pattern no
/// finite computation produces) marks unfilled cells; because every cached
/// value is a pure function of its index, racing fills write the same bits
/// and reads stay deterministic.
struct F64Memo {
    cells: Vec<std::sync::atomic::AtomicU64>,
}

impl F64Memo {
    const EMPTY: u64 = u64::MAX;

    fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || std::sync::atomic::AtomicU64::new(Self::EMPTY));
        F64Memo { cells }
    }

    #[inline]
    fn get_or_fill(&self, i: usize, fill: impl FnOnce() -> f64) -> f64 {
        // laces-lint: allow(atomic-ordering) — memo of a pure function of the index: racing fills store identical bits, so any interleaving reads the same value
        use std::sync::atomic::Ordering::Relaxed;
        // laces-lint: allow(atomic-ordering) — same pure-function memo invariant as above
        let bits = self.cells[i].load(Relaxed);
        if bits != Self::EMPTY {
            return f64::from_bits(bits);
        }
        let v = fill();
        // laces-lint: allow(atomic-ordering) — same pure-function memo invariant as above
        self.cells[i].store(v.to_bits(), Relaxed);
        v
    }
}

/// A complete synthetic Internet.
pub struct World {
    /// Generation parameters.
    pub cfg: WorldConfig,
    /// City database.
    pub db: CityDb,
    /// AS graph (generated ASes plus shell ASes for sites and VPs).
    pub topo: Topology,
    /// Anycast deployment registry (ground truth).
    pub deployments: Vec<Deployment>,
    /// Target population; `TargetId` indexes this vector.
    pub targets: Vec<Target>,
    /// Number of IPv4 targets (they occupy ids `0..n_v4`).
    pub n_v4: usize,
    /// Measurement platforms.
    pub platforms: Vec<Platform>,
    /// Handles to the standard platforms.
    pub std_platforms: StandardPlatforms,
    /// Latency model.
    pub latency: LatencyModel,
    /// Ark VP indices (into the ark_dev platform) whose AS filters backing
    /// `/48`s.
    pub broken_v6_vps: Vec<usize>,
    vp_as_pos: BTreeMap<u32, u16>,
    vp_as_list: Vec<u32>,
    caches: RwLock<Caches>,
    trace_cache: parking_lot::Mutex<crate::trace::TraceCache>,
    /// City-pair great-circle distances (row-major `n_cities × n_cities`),
    /// filled on first use. Keyed in call order — no symmetry is assumed,
    /// so a cached leg is bit-identical to the haversine it replaces.
    city_km: F64Memo,
    /// Per-target access delay ([`LatencyModel::access_ms`] of the
    /// target's latency key), filled on first use.
    target_access: F64Memo,
}

impl World {
    /// Generate a world from a configuration. Deterministic in `cfg.seed`.
    pub fn generate(cfg: WorldConfig) -> World {
        let db = CityDb::embedded();
        let mut topo = Topology::generate(&cfg.topo, &db, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0001_D0D0);

        let transit_range = cfg.topo.n_tier1 as u32..(cfg.topo.n_tier1 + cfg.topo.n_transit) as u32;
        let stub_range = (cfg.topo.n_tier1 + cfg.topo.n_transit) as u32
            ..(cfg.topo.n_tier1 + cfg.topo.n_transit + cfg.topo.n_stub) as u32;

        // Helper: attach a shell AS (an edge network) at a city.
        let mut next_shell_asn = 64_000u32;
        let mut shell = |topo: &mut Topology, rng: &mut StdRng, city: CityId| -> u32 {
            let home = db.get(city).coord;
            let n_prov = if rng.gen_bool(0.4) { 2 } else { 1 };
            let provs = pick_near_transit(topo, &db, rng, &home, transit_range.clone(), n_prov);
            next_shell_asn += 1;
            topo.add_as(next_shell_asn, Tier::Stub, vec![city], provs, vec![])
        };

        // --- Platforms -----------------------------------------------------
        let mut platforms: Vec<Platform> = Vec::new();

        let make_sites = |topo: &mut Topology,
                          rng: &mut StdRng,
                          shell: &mut dyn FnMut(&mut Topology, &mut StdRng, CityId) -> u32,
                          names: &[&str],
                          tag: &str|
         -> Vec<Site> {
            names
                .iter()
                .map(|name| {
                    let city = db
                        .by_name(name)
                        // laces-lint: allow(panic-path) — world *generation* config error: the site lists are compile-time constants validated by tests, and World::generate has no error channel; unreachable for library callers
                        .unwrap_or_else(|| panic!("unknown city {name}"));
                    let as_idx = shell(topo, rng, city);
                    Site {
                        as_idx,
                        city,
                        chaos_identity: format!("{tag}-{}", name.to_lowercase().replace(' ', "-")),
                    }
                })
                .collect()
        };

        let prod_sites = make_sites(
            &mut topo,
            &mut rng,
            &mut shell,
            &PRODUCTION_CITIES,
            "census",
        );
        let production = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: "production-32".into(),
            kind: PlatformKind::Anycast {
                sites: prod_sites.clone(),
            },
        });

        let cctld_sites = make_sites(&mut topo, &mut rng, &mut shell, &CCTLD_CITIES, "cctld");
        let cctld = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: "cctld-12".into(),
            kind: PlatformKind::Anycast { sites: cctld_sites },
        });

        let subset_platform = |idxs: &[usize]| -> PlatformKind {
            PlatformKind::Anycast {
                sites: idxs.iter().map(|&i| prod_sites[i].clone()).collect(),
            }
        };
        let eu_na = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: "eu-na-2".into(),
            kind: subset_platform(&subsets::EU_NA),
        });
        let one_per_continent = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: "one-per-continent-6".into(),
            kind: subset_platform(&subsets::ONE_PER_CONTINENT),
        });
        let two_per_continent = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: "two-per-continent-11".into(),
            kind: subset_platform(&subsets::TWO_PER_CONTINENT),
        });

        // Ark-like platform: VPs in distinct metros first, then doubling up.
        let all_cities: Vec<CityId> = db.iter().map(|(id, _)| id).collect();
        let mut ark_vps: Vec<Vp> = Vec::new();
        let n_ark_total = cfg.n_ark_core + cfg.n_ark_dev_extra;
        for i in 0..n_ark_total {
            let city = all_cities[if i < all_cities.len() {
                // First pass: spread across metros deterministically shuffled.
                (rng::key(cfg.seed, &[0xA2C, i as u64]) % all_cities.len() as u64) as usize
            } else {
                rng.gen_range(0..all_cities.len())
            }];
            let as_idx = shell(&mut topo, &mut rng, city);
            ark_vps.push(Vp {
                as_idx,
                coord: db.get(city).coord,
                city,
                flaky: false,
            });
        }
        let ark = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: format!("ark-{}", cfg.n_ark_core),
            kind: PlatformKind::Unicast {
                vps: ark_vps[..cfg.n_ark_core].to_vec(),
            },
        });
        let ark_dev = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: format!("ark-dev-{n_ark_total}"),
            kind: PlatformKind::Unicast {
                vps: ark_vps.clone(),
            },
        });

        // Atlas-like platform: more nodes than metros; jitter positions so
        // inter-node distance filtering (Fig. 8) is meaningful.
        let mut atlas_vps: Vec<Vp> = Vec::new();
        for _ in 0..cfg.n_atlas {
            let city = all_cities[rng.gen_range(0..all_cities.len())];
            let base = db.get(city).coord;
            let coord = Coord::normalised(
                base.lat + rng.gen_range(-1.5..1.5),
                base.lon + rng.gen_range(-1.5..1.5),
            );
            let as_idx = shell(&mut topo, &mut rng, city);
            atlas_vps.push(Vp {
                as_idx,
                coord,
                city,
                flaky: true,
            });
        }
        let atlas = PlatformId(u16::try_from(platforms.len()).unwrap_or(u16::MAX));
        platforms.push(Platform {
            name: format!("atlas-{}", cfg.n_atlas),
            kind: PlatformKind::Unicast { vps: atlas_vps },
        });

        let std_platforms = StandardPlatforms {
            production,
            cctld,
            eu_na,
            one_per_continent,
            two_per_continent,
            ark,
            ark_dev,
            atlas,
        };

        // --- Deployments ---------------------------------------------------
        let mut deployments: Vec<Deployment> = Vec::new();
        let mut dep_specs: Vec<(DeploymentId, OperatorSpec)> = Vec::new();

        let pick_global_cities = |rng: &mut StdRng, n: usize| -> Vec<CityId> {
            let mut chosen: Vec<CityId> = Vec::with_capacity(n);
            let mut pool: Vec<CityId> = all_cities.clone();
            for _ in 0..n {
                if pool.is_empty() {
                    // More sites than metros: reuse (co-located PoPs).
                    chosen.push(all_cities[rng.gen_range(0..all_cities.len())]);
                } else {
                    let i = rng.gen_range(0..pool.len());
                    chosen.push(pool.swap_remove(i));
                }
            }
            chosen
        };

        let mut build_deployment =
            |topo: &mut Topology,
             rng: &mut StdRng,
             shell: &mut dyn FnMut(&mut Topology, &mut StdRng, CityId) -> u32,
             spec: &OperatorSpec|
             -> DeploymentId {
                let cities: Vec<CityId> = match &spec.spread {
                    Spread::Global => pick_global_cities(rng, spec.n_sites),
                    Spread::Regional { anchor, radius_km } => {
                        // laces-lint: allow(panic-path) — generation-time config check on a compile-time anchor list; tests cover every entry, and World::generate has no error channel
                        let anchor_id = db.by_name(anchor).expect("unknown anchor city");
                        let anchor_coord = db.get(anchor_id).coord;
                        let nearby: Vec<CityId> = all_cities
                            .iter()
                            .copied()
                            .filter(|c| db.get(*c).coord.gcd_km(&anchor_coord) <= *radius_km)
                            .collect();
                        (0..spec.n_sites)
                            .map(|_| nearby[rng.gen_range(0..nearby.len())])
                            .collect()
                    }
                };
                let slug: String = spec
                    .name
                    .to_lowercase()
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                    .collect();
                let sites: Vec<Site> = cities
                    .iter()
                    .enumerate()
                    .map(|(i, &city)| Site {
                        as_idx: shell(topo, rng, city),
                        city,
                        chaos_identity: format!(
                            "{slug}-{:03}.{}",
                            i,
                            db.get(city).name.to_lowercase().replace(' ', "-")
                        ),
                    })
                    .collect();
                let id = DeploymentId(u32::try_from(deployments.len()).unwrap_or(u32::MAX));
                deployments.push(Deployment {
                    operator: spec.name.clone(),
                    asn: spec.asn,
                    sites,
                    regional: matches!(spec.spread, Spread::Regional { .. }),
                });
                id
            };

        for spec in cfg.operators.clone() {
            let id = build_deployment(&mut topo, &mut rng, &mut shell, &spec);
            dep_specs.push((id, spec));
        }

        // Long tail of small deployments.
        let regional_anchors = [
            "Amsterdam",
            "Prague",
            "Auckland",
            "Stockholm",
            "Tokyo",
            "Santiago",
            "Johannesburg",
            "Warsaw",
            "Toronto",
            "Singapore",
        ];
        let mut tail_ids: Vec<(DeploymentId, OperatorSpec)> = Vec::new();
        {
            let t = &cfg.tail;
            // Distribute prefix counts: most deployments 1-2, few large.
            let mut v4_left = t.total_v4 as i64;
            let mut v6_left = t.total_v6 as i64;
            for d in 0..t.n_deployments {
                let n_sites = 2 + (rng.gen_range(0.0..1.0f64).powi(3) * 26.0) as usize;
                let regional = rng.gen_bool(t.regional_fraction);
                let dns = rng.gen_bool(t.dns_fraction);
                let remaining = (t.n_deployments - d) as i64;
                let mut v4 = 1 + (rng.gen_range(0.0..1.0f64).powi(4) * 12.0) as i64;
                v4 = v4.min((v4_left - (remaining - 1)).max(1));
                v4_left -= v4;
                let v6 = if rng.gen_bool(0.35) && v6_left > 0 {
                    let v = (1 + (rng.gen_range(0.0..1.0f64).powi(4) * 8.0) as i64).min(v6_left);
                    v6_left -= v;
                    v
                } else {
                    0
                };
                let spec = OperatorSpec {
                    name: format!("tail-{d:04}"),
                    asn: 30_000 + d as u32,
                    n_sites,
                    spread: if regional {
                        Spread::Regional {
                            anchor: regional_anchors[rng.gen_range(0..regional_anchors.len())]
                                .to_string(),
                            radius_km: rng.gen_range(300.0..900.0),
                        }
                    } else {
                        Spread::Global
                    },
                    v4_prefixes: v4.max(0) as usize,
                    v6_prefixes: v6.max(0) as usize,
                    resp: if dns { RespProbs::DNS } else { RespProbs::CDN },
                    nameserver_fraction: if dns { 0.9 } else { 0.0 },
                    temporary_v4: 0,
                    backing_v6: 0,
                };
                let id = build_deployment(&mut topo, &mut rng, &mut shell, &spec);
                tail_ids.push((id, spec));
            }
            // DNS-only deployments (G-root style).
            for d in 0..t.n_dns_only {
                let spec = OperatorSpec {
                    name: format!("dns-only-{d:02}"),
                    asn: 29_000 + d as u32,
                    n_sites: rng.gen_range(4..=14),
                    spread: Spread::Global,
                    v4_prefixes: 4,
                    v6_prefixes: 3,
                    resp: RespProbs::DNS_ONLY,
                    nameserver_fraction: 1.0,
                    temporary_v4: 0,
                    backing_v6: 0,
                };
                let id = build_deployment(&mut topo, &mut rng, &mut shell, &spec);
                tail_ids.push((id, spec));
            }
        }
        dep_specs.extend(tail_ids);

        // --- VP AS registry (before targets so the set is complete) --------
        let mut vp_as_list: Vec<u32> = Vec::new();
        let mut vp_as_pos: BTreeMap<u32, u16> = BTreeMap::new();
        for p in &platforms {
            for i in 0..p.n_vps() {
                let a = p.vp_as(i);
                vp_as_pos.entry(a).or_insert_with(|| {
                    vp_as_list.push(a);
                    u16::try_from(vp_as_list.len() - 1).unwrap_or(u16::MAX)
                });
            }
        }

        // --- Production catchment, for jittery-target placement ------------
        let prod_origin_ases: Vec<u32> = platforms[production.0 as usize]
            .sites()
            .map(|sites| sites.iter().map(|s| s.as_idx).collect())
            .unwrap_or_default();
        let prod_routes = routing::compute(&topo, &prod_origin_ases);
        let tie_stubs: Vec<u32> = stub_range
            .clone()
            .filter(|&a| prod_routes.origins[a as usize].len() >= 2)
            .collect();

        // --- Target population ----------------------------------------------
        let mut targets: Vec<Target> = Vec::new();
        let stub_list: Vec<u32> = stub_range.clone().collect();
        let sample_resp = |rng: &mut StdRng, p: &RespProbs| Resp {
            icmp: rng.gen_bool(p.icmp),
            tcp: rng.gen_bool(p.tcp),
            udp: rng.gen_bool(p.udp),
        };

        let push_v4 = |t: Target, targets: &mut Vec<Target>| {
            debug_assert!(matches!(t.prefix, PrefixKey::V4(_)));
            targets.push(t);
        };

        // Operator + tail anycast prefixes (v4).
        for (dep_id, spec) in &dep_specs {
            for k in 0..spec.v4_prefixes + spec.temporary_v4 {
                let prefix = PrefixKey::V4(addressing::v4(
                    u32::try_from(targets.len()).unwrap_or(u32::MAX),
                ));
                let is_ns = rng.gen_bool(spec.nameserver_fraction);
                let temp = if k >= spec.v4_prefixes {
                    Some(TempSchedule {
                        period: 6,
                        active: 2,
                        phase: rng.gen_range(0..6),
                    })
                } else {
                    None
                };
                push_v4(
                    Target {
                        prefix,
                        as_idx: u32::MAX,
                        kind: TargetKind::Anycast { dep: *dep_id },
                        resp: sample_resp(&mut rng, &spec.resp),
                        ns: is_ns.then_some(ChaosProfile::PerSite),
                        temp,
                        jittery: false,
                        hijack: None,
                    },
                    &mut targets,
                );
            }
        }

        // Partial anycast /24s: unicast representative + anycast low hosts.
        let hypergiant_deps: Vec<DeploymentId> =
            dep_specs.iter().take(5).map(|(id, _)| *id).collect();
        let imperva_dep = dep_specs
            .iter()
            .find(|(_, s)| s.name.contains("Imperva"))
            .map(|(id, _)| *id);
        for k in 0..cfg.partial_stable_24s + cfg.partial_temp_24s {
            let temp_one = k >= cfg.partial_stable_24s;
            let dep = if temp_one {
                imperva_dep.unwrap_or(hypergiant_deps[0])
            } else {
                hypergiant_deps[rng.gen_range(0..hypergiant_deps.len())]
            };
            let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
            let city = topo.home_city(as_idx);
            push_v4(
                Target {
                    prefix: PrefixKey::V4(addressing::v4(
                        u32::try_from(targets.len()).unwrap_or(u32::MAX),
                    )),
                    as_idx,
                    kind: TargetKind::PartialAnycast { city, dep },
                    resp: Resp {
                        icmp: true,
                        tcp: rng.gen_bool(0.4),
                        udp: rng.gen_bool(0.1),
                    },
                    ns: None,
                    temp: temp_one.then(|| TempSchedule {
                        period: 5,
                        active: 2,
                        phase: rng.gen_range(0..5),
                    }),
                    jittery: false,
                    hijack: None,
                },
                &mut targets,
            );
        }

        // Microsoft-style global-BGP unicast.
        let transit_list: Vec<u32> = transit_range.clone().collect();
        for _ in 0..cfg.global_unicast_24s {
            let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
            let city = topo.home_city(as_idx);
            // Two nearby egress networks near the destination.
            let home = db.get(city).coord;
            let e1 = nearest_of(&topo, &db, &transit_list, &home, 0);
            let e2 = nearest_of(&topo, &db, &transit_list, &home, 1);
            push_v4(
                Target {
                    prefix: PrefixKey::V4(addressing::v4(
                        u32::try_from(targets.len()).unwrap_or(u32::MAX),
                    )),
                    as_idx,
                    kind: TargetKind::GlobalUnicast {
                        city,
                        egress: [e1, e2],
                    },
                    resp: Resp {
                        icmp: true,
                        tcp: false,
                        udp: false,
                    },
                    ns: None,
                    temp: None,
                    jittery: false,
                    hijack: None,
                },
                &mut targets,
            );
        }

        // Plain + jittery unicast mass.
        let mut jittery_left = cfg.jittery_24s;
        for k in 0..cfg.unicast_24s {
            let jittery = jittery_left > 0 && !tie_stubs.is_empty() && {
                // Place remaining jittery targets early so the quota fills.
                let remaining = cfg.unicast_24s - k;
                rng.gen_bool((jittery_left as f64 / remaining as f64).min(1.0))
            };
            let as_idx = if jittery {
                jittery_left -= 1;
                tie_stubs[rng.gen_range(0..tie_stubs.len())]
            } else {
                stub_list[rng.gen_range(0..stub_list.len())]
            };
            let city = topo.home_city(as_idx);
            let is_colo_ns = k < cfg.colo_nameserver_24s;
            let mut resp = sample_resp(&mut rng, &cfg.unicast_resp);
            if is_colo_ns {
                resp.udp = true;
                resp.icmp = rng.gen_bool(0.9);
            }
            push_v4(
                Target {
                    prefix: PrefixKey::V4(addressing::v4(
                        u32::try_from(targets.len()).unwrap_or(u32::MAX),
                    )),
                    as_idx,
                    kind: TargetKind::Unicast { city },
                    resp,
                    ns: is_colo_ns.then(|| ChaosProfile::Colo(rng.gen_range(1..=4))),
                    temp: None,
                    jittery,
                    hijack: None,
                },
                &mut targets,
            );
        }

        // Unresponsive mass.
        for _ in 0..cfg.unresponsive_24s {
            let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
            let city = topo.home_city(as_idx);
            push_v4(
                Target {
                    prefix: PrefixKey::V4(addressing::v4(
                        u32::try_from(targets.len()).unwrap_or(u32::MAX),
                    )),
                    as_idx,
                    kind: TargetKind::Unicast { city },
                    resp: Resp::default(),
                    ns: None,
                    temp: None,
                    jittery: false,
                    hijack: None,
                },
                &mut targets,
            );
        }

        let n_v4 = targets.len();

        // --- IPv6 targets ---------------------------------------------------
        let mut v6_count = 0u32;
        let push_v6 = |t: Target, targets: &mut Vec<Target>, v6_count: &mut u32| {
            debug_assert!(matches!(t.prefix, PrefixKey::V6(_)));
            targets.push(t);
            *v6_count += 1;
        };

        let fastly_dep = dep_specs
            .iter()
            .find(|(_, s)| s.name == "Fastly")
            .map(|(id, _)| *id);
        for (dep_id, spec) in &dep_specs {
            for _ in 0..spec.v6_prefixes {
                let is_ns = rng.gen_bool(spec.nameserver_fraction);
                // The v6 hitlist reflects active services (TUM/OpenINTEL),
                // so TCP responsiveness is much higher than for v4 (§5.3.2).
                let mut resp = sample_resp(&mut rng, &spec.resp);
                resp.tcp = resp.tcp || rng.gen_bool(0.45);
                push_v6(
                    Target {
                        prefix: PrefixKey::V6(addressing::v6(v6_count)),
                        as_idx: u32::MAX,
                        kind: TargetKind::Anycast { dep: *dep_id },
                        resp,
                        ns: is_ns.then_some(ChaosProfile::PerSite),
                        temp: None,
                        jittery: false,
                        hijack: None,
                    },
                    &mut targets,
                    &mut v6_count,
                );
            }
            for _ in 0..spec.backing_v6 {
                let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
                let city = topo.home_city(as_idx);
                push_v6(
                    Target {
                        prefix: PrefixKey::V6(addressing::v6(v6_count)),
                        as_idx,
                        kind: TargetKind::BackingAnycast {
                            city,
                            dep: fastly_dep.unwrap_or(*dep_id),
                        },
                        resp: Resp {
                            icmp: true,
                            tcp: true,
                            udp: false,
                        },
                        ns: None,
                        temp: None,
                        jittery: false,
                        hijack: None,
                    },
                    &mut targets,
                    &mut v6_count,
                );
            }
        }

        for _ in 0..cfg.global_unicast_48s {
            let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
            let city = topo.home_city(as_idx);
            let home = db.get(city).coord;
            let e1 = nearest_of(&topo, &db, &transit_list, &home, 0);
            let e2 = nearest_of(&topo, &db, &transit_list, &home, 1);
            push_v6(
                Target {
                    prefix: PrefixKey::V6(addressing::v6(v6_count)),
                    as_idx,
                    kind: TargetKind::GlobalUnicast {
                        city,
                        egress: [e1, e2],
                    },
                    resp: Resp {
                        icmp: true,
                        tcp: false,
                        udp: false,
                    },
                    ns: None,
                    temp: None,
                    jittery: false,
                    hijack: None,
                },
                &mut targets,
                &mut v6_count,
            );
        }

        let mut jittery6_left = cfg.jittery_48s;
        for k in 0..cfg.unicast_48s {
            let jittery = jittery6_left > 0 && !tie_stubs.is_empty() && {
                let remaining = cfg.unicast_48s - k;
                rng.gen_bool((jittery6_left as f64 / remaining as f64).min(1.0))
            };
            let as_idx = if jittery {
                jittery6_left -= 1;
                tie_stubs[rng.gen_range(0..tie_stubs.len())]
            } else {
                stub_list[rng.gen_range(0..stub_list.len())]
            };
            let city = topo.home_city(as_idx);
            let mut resp = sample_resp(&mut rng, &cfg.unicast_resp);
            resp.tcp = resp.tcp || rng.gen_bool(0.4);
            push_v6(
                Target {
                    prefix: PrefixKey::V6(addressing::v6(v6_count)),
                    as_idx,
                    kind: TargetKind::Unicast { city },
                    resp,
                    ns: None,
                    temp: None,
                    jittery,
                    hijack: None,
                },
                &mut targets,
                &mut v6_count,
            );
        }
        for _ in 0..cfg.unresponsive_48s {
            let as_idx = stub_list[rng.gen_range(0..stub_list.len())];
            let city = topo.home_city(as_idx);
            push_v6(
                Target {
                    prefix: PrefixKey::V6(addressing::v6(v6_count)),
                    as_idx,
                    kind: TargetKind::Unicast { city },
                    resp: Resp::default(),
                    ns: None,
                    temp: None,
                    jittery: false,
                    hijack: None,
                },
                &mut targets,
                &mut v6_count,
            );
        }

        // Hijack events: scattered over plain unicast targets and days.
        {
            let mut assigned = 0usize;
            let mut i = 0usize;
            while assigned < cfg.hijacked_24s && i < n_v4 {
                let pick = rng::key(cfg.seed, &[0x41AC, i as u64]).is_multiple_of(97);
                if pick {
                    if let TargetKind::Unicast { city } = targets[i].kind {
                        if targets[i].resp.icmp && !targets[i].jittery {
                            let day = (rng::key(cfg.seed, &[0x41AD, i as u64])
                                % u64::from(HIJACK_WINDOW_DAYS))
                                as u32;
                            // A bogus origin near the victim is inside the
                            // victim's own feasibility disks — GCD cannot
                            // distinguish it even in principle, so such an
                            // event models nothing detectable. Plant only
                            // intercontinental hijacks: scan the stub list
                            // from a keyed random start for an attacker far
                            // from the victim.
                            let victim_coord = db.get(city).coord;
                            let start = (rng::key(cfg.seed, &[0x41AE, i as u64])
                                % stub_list.len() as u64)
                                as usize;
                            let attacker = (0..stub_list.len())
                                .map(|k| stub_list[(start + k) % stub_list.len()])
                                .find(|&a| {
                                    db.get(topo.home_city(a)).coord.gcd_km(&victim_coord) >= 7_000.0
                                });
                            // No far-enough stub for this victim (possible
                            // in regionally clustered topologies): plant no
                            // event rather than an undetectable nearby one.
                            if let Some(attacker) = attacker {
                                targets[i].hijack = Some(crate::targets::Hijack {
                                    day,
                                    attacker_as: attacker,
                                });
                                assigned += 1;
                            }
                        }
                    }
                }
                i += 1;
            }
        }

        // Broken Ark VPs for the backing-anycast FP mechanism.
        let n_ark_total = cfg.n_ark_core + cfg.n_ark_dev_extra;
        let broken_v6_vps: Vec<usize> = (0..cfg.n_broken_v6_vps)
            .map(|i| (rng::key(cfg.seed, &[0xB20CE, i as u64]) % n_ark_total as u64) as usize)
            .collect();

        let latency = LatencyModel::new(cfg.seed);
        let city_km = F64Memo::new(db.len() * db.len());
        let target_access = F64Memo::new(targets.len());
        let world = World {
            cfg,
            db,
            topo,
            deployments,
            targets,
            n_v4,
            platforms,
            std_platforms,
            latency,
            broken_v6_vps,
            vp_as_pos,
            vp_as_list,
            caches: RwLock::new(Caches::default()),
            trace_cache: parking_lot::Mutex::new(crate::trace::TraceCache::default()),
            city_km,
            target_access,
        };
        // Seed the platform-route cache with the production table we already
        // computed.
        world
            .caches
            .write()
            .platform_routes
            .insert(production.0, Arc::new(prod_routes));
        world
    }

    /// Total number of targets.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Look up a target by census prefix.
    /// Great-circle distance between two cities, memoised in call order
    /// (the value for `(a, b)` is computed as `a.gcd_km(b)`, never read
    /// from `(b, a)`), so it is bit-identical to the haversine it caches.
    #[inline]
    pub fn city_gcd_km(&self, a: CityId, b: CityId) -> f64 {
        self.city_km
            .get_or_fill(a.0 as usize * self.db.len() + b.0 as usize, || {
                self.db.get(a).coord.gcd_km(&self.db.get(b).coord)
            })
    }

    /// The target's access delay, memoised per target id.
    #[inline]
    pub fn target_access_ms(&self, tid: TargetId, target_key: u64) -> f64 {
        self.target_access
            .get_or_fill(tid.0 as usize, || self.latency.access_ms(target_key))
    }

    pub fn lookup(&self, key: PrefixKey) -> Option<TargetId> {
        match key {
            PrefixKey::V4(p) => {
                let i = addressing::v4_index(p)?;
                ((i as usize) < self.n_v4).then_some(TargetId(i))
            }
            PrefixKey::V6(p) => {
                let i = addressing::v6_index(p)? as usize + self.n_v4;
                (i < self.targets.len()).then_some(TargetId(u32::try_from(i).unwrap_or(u32::MAX)))
            }
        }
    }

    /// Access a target.
    pub fn target(&self, id: TargetId) -> &Target {
        &self.targets[id.0 as usize]
    }

    /// Access a platform.
    pub fn platform(&self, id: PlatformId) -> &Platform {
        &self.platforms[id.0 as usize]
    }

    /// Access a deployment.
    pub fn deployment(&self, id: DeploymentId) -> &Deployment {
        &self.deployments[id.0 as usize]
    }

    /// Routes toward an anycast platform's sites, over every AS (cached).
    pub fn platform_routes(&self, id: PlatformId) -> Arc<Routes> {
        if let Some(r) = self.caches.read().platform_routes.get(&id.0) {
            return Arc::clone(r);
        }
        // A unicast platform has no anycast sites: an empty origin set makes
        // every AS unreachable, which downstream treats as "no receiver".
        let origins: Vec<u32> = self
            .platform(id)
            .sites()
            .map(|sites| sites.iter().map(|s| s.as_idx).collect())
            .unwrap_or_default();
        let routes = Arc::new(routing::compute(&self.topo, &origins));
        self.caches
            .write()
            .platform_routes
            .entry(id.0)
            .or_insert_with(|| Arc::clone(&routes));
        routes
    }

    /// Forward catchment of a target deployment, restricted to VP ASes
    /// (cached).
    pub fn dep_catchment(&self, dep: DeploymentId) -> Arc<DepCatchment> {
        if let Some(c) = self.caches.read().dep_catchments.get(&dep.0) {
            return Arc::clone(c);
        }
        let origins: Vec<u32> = self
            .deployment(dep)
            .sites
            .iter()
            .map(|s| s.as_idx)
            .collect();
        let routes = routing::compute(&self.topo, &origins);
        let per_vp = self
            .vp_as_list
            .iter()
            .map(|&a| (routes.origins[a as usize], routes.dist[a as usize]))
            .collect();
        let c = Arc::new(DepCatchment { per_vp });
        self.caches
            .write()
            .dep_catchments
            .entry(dep.0)
            .or_insert_with(|| Arc::clone(&c));
        c
    }

    /// Which site of `dep` a probe from VP AS `src_as` reaches on `day`, and
    /// the AS-path distance. Returns `None` if `src_as` is not a registered
    /// VP AS or the deployment is unreachable from it.
    pub fn forward_site(&self, dep: DeploymentId, src_as: u32, day: u32) -> Option<(usize, u16)> {
        let pos = self.vp_as_position(src_as)?;
        forward_site_in(
            self.cfg.seed,
            &self.dep_catchment(dep),
            pos,
            dep,
            src_as,
            day,
        )
    }

    /// Position of `src_as` in the registered VP-AS table, if registered.
    pub(crate) fn vp_as_position(&self, src_as: u32) -> Option<u16> {
        self.vp_as_pos.get(&src_as).copied()
    }

    /// Which worker (site index) of anycast platform `platform` receives a
    /// packet originated by AS `responder_as` on `day`, with the tie set and
    /// AS-path distance. `None` when the platform is unreachable from there.
    pub fn receiving_site(
        &self,
        platform: PlatformId,
        responder_as: u32,
        day: u32,
    ) -> Option<(usize, u16, TieSet)> {
        receiving_site_in(
            self.cfg.seed,
            &self.platform_routes(platform),
            platform,
            responder_as,
            day,
        )
    }

    /// For a flipped route: the site a responder fails over to. If the tie
    /// set has another member, that member; otherwise the platform site
    /// geographically nearest to the primary (routing shifts lands nearby).
    pub fn alternate_site(
        &self,
        platform: PlatformId,
        primary: usize,
        ties: &TieSet,
        key: u64,
    ) -> usize {
        let others: Vec<u16> = ties
            .as_slice()
            .iter()
            .copied()
            .filter(|&s| s as usize != primary)
            .collect();
        if !others.is_empty() {
            return others[rng::below(key, others.len())] as usize;
        }
        let Some(sites) = self.platform(platform).sites() else {
            return primary;
        };
        let pc = self.db.get(sites[primary].city).coord;
        let mut best = primary;
        let mut best_d = f64::INFINITY;
        for (i, s) in sites.iter().enumerate() {
            if i == primary {
                continue;
            }
            let d = self.db.get(s.city).coord.gcd_km(&pc);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// All registered VP ASes (union over platforms).
    pub fn vp_ases(&self) -> &[u32] {
        &self.vp_as_list
    }

    /// The traceroute destination-route cache (crate-internal).
    pub(crate) fn trace_cache(&self) -> &parking_lot::Mutex<crate::trace::TraceCache> {
        &self.trace_cache
    }
}

/// Daily probability that an AS's equal-cost tie-break re-rolls (BGP path
/// churn among equal-preference alternatives). Kept small: catchments are
/// mostly stable day over day, with a steady trickle of movement
/// (§5.1.6's longitudinal variability).
const DAILY_TIE_REROLL: f64 = 0.06;

/// A *sticky* tie-break: the same member is chosen every day, except that
/// with probability [`DAILY_TIE_REROLL`] per day the choice re-rolls.
/// Lock-free body of [`World::forward_site`]: which site of `dep` a probe
/// from VP-AS position `pos` reaches on `day`, given an already-resolved
/// catchment handle. Shared by the scalar path and `ProbeSession`, so both
/// draw from identical RNG keys.
pub(crate) fn forward_site_in(
    seed: u64,
    catchment: &DepCatchment,
    pos: u16,
    dep: DeploymentId,
    src_as: u32,
    day: u32,
) -> Option<(usize, u16)> {
    let (ties, dist) = catchment.per_vp[pos as usize];
    if ties.is_empty() {
        return None;
    }
    let pick = sticky_tie_pick(seed, 0xF02D, dep.0 as u64, src_as, day, ties.len());
    Some((ties.as_slice()[pick] as usize, dist))
}

/// Lock-free body of [`World::receiving_site`], given an already-resolved
/// routing table toward the platform's sites.
pub(crate) fn receiving_site_in(
    seed: u64,
    routes: &Routes,
    platform: PlatformId,
    responder_as: u32,
    day: u32,
) -> Option<(usize, u16, TieSet)> {
    let ties = routes.origins[responder_as as usize];
    if ties.is_empty() {
        return None;
    }
    let pick = sticky_tie_pick(
        seed,
        0x2CAE,
        platform.0 as u64,
        responder_as,
        day,
        ties.len(),
    );
    Some((
        ties.as_slice()[pick] as usize,
        routes.dist[responder_as as usize],
        ties,
    ))
}

fn sticky_tie_pick(seed: u64, tag: u64, scope: u64, as_idx: u32, day: u32, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let base = rng::key(seed, &[tag, scope, as_idx as u64]);
    let roll = rng::unit_f64(rng::key(
        seed,
        &[tag ^ 0xDA7, scope, as_idx as u64, day as u64],
    ));
    if roll < DAILY_TIE_REROLL {
        rng::below(rng::mix(base, day as u64 + 1), n)
    } else {
        rng::below(base, n)
    }
}

/// Geographically `rank`-th nearest AS from `list` to `home`.
fn nearest_of(topo: &Topology, db: &CityDb, list: &[u32], home: &Coord, rank: usize) -> u32 {
    let mut scored: Vec<(f64, u32)> = list
        .iter()
        .map(|&a| {
            let c = topo.nearest_pop(db, a, home);
            (db.get(c).coord.gcd_km(home), a)
        })
        .collect();
    scored.sort_by(|x, y| x.0.total_cmp(&y.0));
    scored[rank.min(scored.len() - 1)].1
}

/// Pick `n` transit ASes near `home` (weighted), for shell attachment.
fn pick_near_transit(
    topo: &Topology,
    db: &CityDb,
    rng: &mut StdRng,
    home: &Coord,
    range: std::ops::Range<u32>,
    n: usize,
) -> Vec<u32> {
    let candidates: Vec<u32> = range.collect();
    let mut scored: Vec<(f64, u32)> = candidates
        .iter()
        .map(|&a| {
            let c = topo.nearest_pop(db, a, home);
            let d = db.get(c).coord.gcd_km(home);
            (d + rng.gen_range(0.0..400.0), a)
        })
        .collect();
    scored.sort_by(|x, y| x.0.total_cmp(&y.0));
    scored.into_iter().take(n.max(1)).map(|(_, a)| a).collect()
}

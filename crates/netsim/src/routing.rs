//! Gao-Rexford route computation and anycast catchments.
//!
//! Both census methodologies are, at bottom, observations of BGP catchments:
//! which site of an anycast deployment a given network's packets reach. We
//! compute catchments with the standard valley-free model:
//!
//! 1. routes learned from **customers** are preferred over routes learned
//!    from **peers**, which are preferred over routes learned from
//!    **providers** (economics: prefer routes you are paid to carry);
//! 2. within a preference class, shorter AS paths win;
//! 3. an AS exports customer-learned routes (and its own originations) to
//!    everyone, but peer- and provider-learned routes only to customers.
//!
//! When several origins tie at the same preference class and path length, we
//! record the *tie set* (up to [`TieSet::CAP`] entries). Tie sets are where
//! the interesting measurement phenomena live: a deterministic tie-break
//! models a router's arbitrary-but-stable choice, per-day re-breaks model
//! long-term route flips, and per-packet re-breaks model the unstable
//! equal-cost targets that the paper identifies as the dominant source of
//! anycast-based false positives (§5.1.3).
//!
//! The computation is three passes over the AS graph, one per preference
//! class, exploiting the generator's invariant that providers always have
//! smaller indices than their customers (see [`crate::topology`]).

use crate::topology::Topology;

/// How the best route to the origin set was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteClass {
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
    /// No route (disconnected from all origins).
    Unreachable,
}

use serde::{Deserialize, Serialize};

/// A small set of origin indices at equal preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TieSet {
    items: [u16; TieSet::CAP],
    len: u8,
}

impl TieSet {
    /// Maximum recorded ties; BGP routers rarely hold more equal-cost
    /// alternatives, and the measurement phenomena only need two.
    pub const CAP: usize = 4;

    /// A set with a single member.
    pub fn single(v: u16) -> Self {
        let mut s = TieSet::default();
        s.push(v);
        s
    }

    /// Insert, ignoring duplicates and overflow beyond [`Self::CAP`].
    pub fn push(&mut self, v: u16) {
        if self.as_slice().contains(&v) {
            return;
        }
        if (self.len as usize) < Self::CAP {
            self.items[self.len as usize] = v;
            self.len += 1;
        }
    }

    /// Merge another set into this one.
    pub fn merge(&mut self, other: &TieSet) {
        for &v in other.as_slice() {
            self.push(v);
        }
    }

    /// Members as a slice.
    pub fn as_slice(&self) -> &[u16] {
        &self.items[..self.len as usize]
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First member (lowest insertion order), if any.
    pub fn first(&self) -> Option<u16> {
        self.as_slice().first().copied()
    }
}

/// Routing state toward a fixed set of origin ASes.
#[derive(Debug, Clone)]
pub struct Routes {
    /// Per AS: how its best route was learned.
    pub class: Vec<RouteClass>,
    /// Per AS: AS-path length of the best route (`u16::MAX` if unreachable).
    pub dist: Vec<u16>,
    /// Per AS: origins (indices into the origin list passed to [`compute`])
    /// tied at the best preference.
    pub origins: Vec<TieSet>,
    /// Per AS: the neighbour the best route was learned from
    /// ([`NO_HOP`] for origins and unreachable ASes). Following this chain
    /// yields *an* AS path to *a* best origin — what a traceroute would
    /// walk (the chain is deterministic; tie-broken alternatives are not
    /// represented).
    pub next_hop: Vec<u32>,
}

/// Sentinel next-hop for origins and unreachable ASes.
pub const NO_HOP: u32 = u32::MAX;

impl Routes {
    /// The AS path from `from` to the origin its best-route chain reaches
    /// (inclusive of both ends). Empty if unreachable. Panics only on a
    /// corrupted chain (guarded by a length bound).
    pub fn path_from(&self, from: u32) -> Vec<u32> {
        let mut path = Vec::new();
        let mut cur = from;
        while path.len() <= self.next_hop.len() {
            path.push(cur);
            if self.class[cur as usize] == RouteClass::Unreachable {
                return Vec::new();
            }
            let nh = self.next_hop[cur as usize];
            if nh == NO_HOP {
                return path; // reached an origin
            }
            cur = nh;
        }
        unreachable!("next-hop chain has a cycle");
    }
}

const INF: u16 = u16::MAX;

/// Compute best routes from every AS toward `origin_ases` (each entry is an
/// AS index; duplicates are allowed and keep their position so the caller
/// can map tie-set members back to sites).
///
/// Complexity: O(V + E) per call.
pub fn compute(topo: &Topology, origin_ases: &[u32]) -> Routes {
    let n = topo.len();
    assert!(origin_ases.len() <= u16::MAX as usize, "too many origins");

    // --- Pass 1: customer routes (propagate from origins up provider links).
    let mut cust_dist = vec![INF; n];
    let mut cust_orig = vec![TieSet::default(); n];
    let mut cust_next = vec![NO_HOP; n];
    let mut frontier: Vec<u32> = Vec::new();
    for (oi, &o) in origin_ases.iter().enumerate() {
        let o = o as usize;
        if cust_dist[o] != 0 {
            cust_dist[o] = 0;
            frontier.push(o as u32);
        }
        cust_orig[o].push(oi as u16);
    }
    let mut d = 0u16;
    while !frontier.is_empty() {
        let mut next: Vec<u32> = Vec::new();
        for &x in &frontier {
            // x's route here is customer-learned (or originated): exported to
            // providers, who see x as a customer.
            let orig = cust_orig[x as usize];
            for &y in &topo.providers[x as usize] {
                let y = y as usize;
                if cust_dist[y] == INF {
                    cust_dist[y] = d + 1;
                    cust_orig[y] = orig;
                    cust_next[y] = x;
                    next.push(y as u32);
                } else if cust_dist[y] == d + 1 {
                    cust_orig[y].merge(&orig);
                }
                // cust_dist[y] <= d would mean y found a shorter customer
                // route already; nothing to do.
            }
        }
        frontier = next;
        d += 1;
    }

    // --- Pass 2: peer routes. An AS only exports customer routes to peers.
    let mut peer_dist = vec![INF; n];
    let mut peer_orig = vec![TieSet::default(); n];
    let mut peer_next = vec![NO_HOP; n];
    for x in 0..n {
        let mut best = INF;
        let mut set = TieSet::default();
        let mut via = NO_HOP;
        for &y in &topo.peers[x] {
            let yd = cust_dist[y as usize];
            if yd == INF {
                continue;
            }
            let cand = yd + 1;
            if cand < best {
                best = cand;
                set = cust_orig[y as usize];
                via = y;
            } else if cand == best {
                set.merge(&cust_orig[y as usize]);
            }
        }
        peer_dist[x] = best;
        peer_orig[x] = set;
        peer_next[x] = via;
    }

    // --- Pass 3: selection + provider routes, in index order (providers
    // always precede customers, so sel[y] is final before any customer x
    // consults it).
    let mut class = vec![RouteClass::Unreachable; n];
    let mut dist = vec![INF; n];
    let mut origins = vec![TieSet::default(); n];
    let mut next_hop = vec![NO_HOP; n];
    for x in 0..n {
        if cust_dist[x] != INF {
            class[x] = RouteClass::Customer;
            dist[x] = cust_dist[x];
            origins[x] = cust_orig[x];
            next_hop[x] = cust_next[x];
            continue;
        }
        if peer_dist[x] != INF {
            class[x] = RouteClass::Peer;
            dist[x] = peer_dist[x];
            origins[x] = peer_orig[x];
            next_hop[x] = peer_next[x];
            continue;
        }
        // Provider routes: each provider exports its selected best.
        let mut best = INF;
        let mut set = TieSet::default();
        let mut via = NO_HOP;
        for &y in &topo.providers[x] {
            let y = y as usize;
            if dist[y] == INF {
                continue;
            }
            let cand = dist[y] + 1;
            if cand < best {
                best = cand;
                set = origins[y];
                via = y as u32;
            } else if cand == best {
                set.merge(&origins[y]);
            }
        }
        if best != INF {
            class[x] = RouteClass::Provider;
            dist[x] = best;
            origins[x] = set;
            next_hop[x] = via;
        }
    }

    Routes {
        class,
        dist,
        origins,
        next_hop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Tier, Topology};
    use laces_geo::CityDb;

    /// Build:  t1a(0) -peer- t1b(1)
    ///          |              |
    ///        tr_a(2)        tr_b(3)
    ///         /   \            \
    ///      s1(4)  s2(5)       s3(6)
    fn diamond(db: &CityDb) -> Topology {
        let c = db.by_name("Amsterdam").unwrap();
        let mut t = Topology::default();
        let t1a = t.add_as(1, Tier::Tier1, vec![c], vec![], vec![]);
        let t1b = t.add_as(2, Tier::Tier1, vec![c], vec![], vec![t1a]);
        let tra = t.add_as(3, Tier::Transit, vec![c], vec![t1a], vec![]);
        let trb = t.add_as(4, Tier::Transit, vec![c], vec![t1b], vec![]);
        let _s1 = t.add_as(5, Tier::Stub, vec![c], vec![tra], vec![]);
        let _s2 = t.add_as(6, Tier::Stub, vec![c], vec![tra], vec![]);
        let _s3 = t.add_as(7, Tier::Stub, vec![c], vec![trb], vec![]);
        t
    }

    #[test]
    fn origin_has_distance_zero() {
        let db = CityDb::embedded();
        let topo = diamond(&db);
        let r = compute(&topo, &[4]);
        assert_eq!(r.dist[4], 0);
        assert_eq!(r.origins[4].as_slice(), &[0]);
    }

    #[test]
    fn customer_route_propagates_up_and_down() {
        let db = CityDb::embedded();
        let topo = diamond(&db);
        // Origin at stub s1 (index 4).
        let r = compute(&topo, &[4]);
        // Its provider tr_a learns it as a customer route at distance 1.
        assert_eq!(r.class[2], RouteClass::Customer);
        assert_eq!(r.dist[2], 1);
        // Sibling stub s2 learns via provider tr_a at distance 2.
        assert_eq!(r.class[5], RouteClass::Provider);
        assert_eq!(r.dist[5], 2);
        // t1a: customer route at distance 2.
        assert_eq!(r.class[0], RouteClass::Customer);
        assert_eq!(r.dist[0], 2);
        // t1b: peer route via t1a (customer routes are exported to peers).
        assert_eq!(r.class[1], RouteClass::Peer);
        assert_eq!(r.dist[1], 3);
        // s3: provider chain t1b -> tr_b -> s3.
        assert_eq!(r.class[6], RouteClass::Provider);
        assert_eq!(r.dist[6], 5);
        assert_eq!(r.origins[6].as_slice(), &[0]);
    }

    #[test]
    fn customer_preferred_over_shorter_provider() {
        // x has a 3-hop customer route and a 1-hop provider route; Gao-Rexford
        // picks the customer route.
        let db = CityDb::embedded();
        let c = db.by_name("London").unwrap();
        let mut t = Topology::default();
        let origin = t.add_as(1, Tier::Transit, vec![c], vec![], vec![]);
        let a = t.add_as(2, Tier::Transit, vec![c], vec![origin], vec![]);
        let b = t.add_as(3, Tier::Transit, vec![c], vec![a], vec![]);
        // x is a provider of b (so hears b's customer route going up) and a
        // customer of origin (1-hop provider route down from origin).
        let x = t.add_as(4, Tier::Transit, vec![c], vec![origin], vec![]);
        // Make b a customer of x: add edge by creating b2 under x... instead
        // rebuild: x must have a customer path. Add stub under x chain:
        let y = t.add_as(5, Tier::Stub, vec![c], vec![x, b], vec![]);
        // y hears origin via b (provider, dist 3) and exports nothing upward
        // (provider routes are not exported to providers) -> x gets no
        // customer route from y. x's route: provider via origin, dist 1.
        let r = compute(&t, &[origin]);
        assert_eq!(r.class[x as usize], RouteClass::Provider);
        assert_eq!(r.dist[x as usize], 1);
        // y prefers... both its providers: x (dist 2) and b (dist 3+1=4)?
        // b's selected route: customer? b's only neighbour is a (provider).
        // b hears via provider chain: origin->a (customer of origin? no: a is
        // a customer of origin, so a's route to origin is a provider route,
        // dist 1; b hears from provider a: dist 2). y via b: dist 3; via x:
        // dist 2. y picks x.
        assert_eq!(r.class[y as usize], RouteClass::Provider);
        assert_eq!(r.dist[y as usize], 2);
        assert_eq!(r.origins[y as usize].as_slice(), &[0]);
    }

    #[test]
    fn valley_free_no_peer_to_peer_transit() {
        // origin - peer - m - peer - far: far must NOT learn the route via
        // two successive peer links.
        let db = CityDb::embedded();
        let c = db.by_name("Paris").unwrap();
        let mut t = Topology::default();
        let origin = t.add_as(1, Tier::Tier1, vec![c], vec![], vec![]);
        let m = t.add_as(2, Tier::Tier1, vec![c], vec![], vec![origin]);
        let far = t.add_as(3, Tier::Tier1, vec![c], vec![], vec![m]);
        let r = compute(&t, &[origin]);
        assert_eq!(r.class[m as usize], RouteClass::Peer);
        assert_eq!(
            r.class[far as usize],
            RouteClass::Unreachable,
            "peer route leaked to a peer"
        );
    }

    #[test]
    fn equal_cost_origins_form_a_tie_set() {
        // Two origins, symmetric diamonds under one provider.
        let db = CityDb::embedded();
        let c = db.by_name("Tokyo").unwrap();
        let mut t = Topology::default();
        let top = t.add_as(1, Tier::Tier1, vec![c], vec![], vec![]);
        let o1 = t.add_as(2, Tier::Transit, vec![c], vec![top], vec![]);
        let o2 = t.add_as(3, Tier::Transit, vec![c], vec![top], vec![]);
        let client = t.add_as(4, Tier::Stub, vec![c], vec![top], vec![]);
        let r = compute(&t, &[o1, o2]);
        // client hears both origins via top at equal distance.
        assert_eq!(r.dist[client as usize], 2);
        let mut ties = r.origins[client as usize].as_slice().to_vec();
        ties.sort_unstable();
        assert_eq!(ties, vec![0, 1]);
    }

    #[test]
    fn nearer_origin_wins_no_tie() {
        let db = CityDb::embedded();
        let c = db.by_name("Madrid").unwrap();
        let mut t = Topology::default();
        let top = t.add_as(1, Tier::Tier1, vec![c], vec![], vec![]);
        let mid = t.add_as(2, Tier::Transit, vec![c], vec![top], vec![]);
        let o_far = t.add_as(3, Tier::Stub, vec![c], vec![mid], vec![]);
        let o_near = t.add_as(4, Tier::Transit, vec![c], vec![top], vec![]);
        let client = t.add_as(5, Tier::Stub, vec![c], vec![top], vec![]);
        let r = compute(&t, &[o_far, o_near]);
        assert_eq!(
            r.origins[client as usize].as_slice(),
            &[1],
            "nearer origin should win"
        );
        assert_eq!(r.dist[client as usize], 2);
    }

    #[test]
    fn duplicate_origin_as_keeps_both_indices() {
        let db = CityDb::embedded();
        let c = db.by_name("Seoul").unwrap();
        let mut t = Topology::default();
        let top = t.add_as(1, Tier::Tier1, vec![c], vec![], vec![]);
        let o = t.add_as(2, Tier::Transit, vec![c], vec![top], vec![]);
        let r = compute(&t, &[o, o]);
        let mut ties = r.origins[o as usize].as_slice().to_vec();
        ties.sort_unstable();
        assert_eq!(ties, vec![0, 1]);
    }

    #[test]
    fn everything_reachable_in_generated_topology() {
        let db = CityDb::embedded();
        let topo = Topology::generate(&crate::topology::TopoConfig::tiny(), &db, 3);
        // Announce from one tier-1: every AS must have a route (tier-1s peer
        // with the full clique and everyone buys transit upward).
        let r = compute(&topo, &[0]);
        for x in 0..topo.len() {
            assert_ne!(r.class[x], RouteClass::Unreachable, "AS {x} unreachable");
        }
    }

    #[test]
    fn tie_set_caps_and_dedups() {
        let mut s = TieSet::default();
        for v in [1, 1, 2, 3, 4, 5, 6] {
            s.push(v);
        }
        assert_eq!(s.len(), TieSet::CAP);
        assert_eq!(s.as_slice(), &[1, 2, 3, 4]);
        let mut other = TieSet::single(9);
        other.merge(&s);
        assert_eq!(other.len(), TieSet::CAP);
        assert_eq!(other.first(), Some(9));
    }
}

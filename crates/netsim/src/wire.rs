//! The simulated wire: probe in, attributed reply out.
//!
//! [`World::send_probe`] is the single point where measurement tools touch
//! the simulated Internet. It accepts real probe *bytes* (built by
//! `laces-packet`), decides whether and where the target responds — anycast
//! catchments, partial anycast, temporary anycast, backing-anycast
//! fallbacks, global-BGP unicast egress, reverse-path instability, route
//! flips, loss — synthesizes the reply bytes a real host would emit, and
//! delivers them to the vantage point that BGP would deliver them to, with
//! an RTT from the latency model.

use bytes::Bytes;
use laces_geo::Coord;
use laces_obs::Counter;
use laces_packet::probe::{Packet, PacketView, PreparedReply, ProbeMeta};
use laces_packet::{PacketError, PrefixKey, ProbeEncoding, Protocol};
use laces_trace::{Component, TraceEvent, Tracer, UnansweredCause, WireFate};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::net::IpAddr;
use std::sync::Arc;

use crate::deployments::DeploymentId;
use crate::platform::{PlatformId, PlatformKind};
use crate::rng;
use crate::routing::{Routes, TieSet};
use crate::targets::{ChaosProfile, TargetKind};
use crate::world::{forward_site_in, receiving_site_in, DepCatchment, World};

/// Where a probe is being sent from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSource {
    /// A worker at site `site` of an anycast measurement platform: replies
    /// are routed by BGP to whichever site's catchment the responder is in.
    Worker {
        /// The anycast platform.
        platform: PlatformId,
        /// Sending site index.
        site: usize,
    },
    /// A node of a unicast VP platform: replies come back to the same node.
    Vp {
        /// The unicast platform.
        platform: PlatformId,
        /// Node index.
        vp: usize,
    },
}

/// Measurement-scope context the wire needs for route dynamics.
#[derive(Debug, Clone, Copy)]
pub struct MeasurementCtx {
    /// Measurement identifier (scopes the flip realisations).
    pub id: u32,
    /// Simulated day (scopes daily catchment tie-breaks, churn, schedules).
    pub day: u32,
    /// Time between the first and last probe a single target receives
    /// (`(n_workers - 1) × inter-probe offset`); drives the route-flip
    /// probability (§5.1.5).
    pub span_ms: u64,
}

/// A reply delivered back to the measurement infrastructure.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The reply packet (parse with `laces_packet::probe::parse_reply`).
    /// On the zero-copy fast path (`reply` is `Some`) the addresses and
    /// protocol are populated but `bytes` is empty — attribution comes
    /// from `reply` instead.
    pub packet: Packet,
    /// Pre-parsed attribution, present when the wire skipped materializing
    /// reply bytes (batched probes that carried their [`ProbeMeta`]).
    /// Resolve with `laces_packet::probe::attribute_prepared`, which is
    /// bit-identical to parsing the bytes.
    pub reply: Option<PreparedReply>,
    /// Receiving vantage point: the worker site index for probes sent from
    /// an anycast platform, or the VP index for unicast platforms.
    pub rx_index: usize,
    /// Capture timestamp in virtual milliseconds.
    pub rx_time_ms: u64,
    /// The round-trip time as a float (what scamper would log).
    pub rtt_ms: f64,
}

/// Deterministic fault model for the capture fabric: the path a captured
/// reply takes from a site's capture filter back to the worker process.
/// Real deployments lose and occasionally duplicate captures here (pcap
/// buffer overruns, mirrored spans); the model makes both injectable.
///
/// The verdict for a delivery is a pure function of `seed` and the
/// delivery's coordinates (receiving site, capture time, responder), so a
/// rerun under the same fault plan reproduces the identical record stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureFaults {
    /// Fault-plan seed the verdicts are keyed on.
    pub seed: u64,
    /// Probability a capture is silently dropped before reaching the worker.
    pub drop_rate: f64,
    /// Probability a capture is delivered twice (checked only if not
    /// dropped).
    pub dup_rate: f64,
}

/// What the capture fabric does with one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricVerdict {
    /// Delivered once (the non-faulty path).
    Deliver,
    /// Lost in the fabric; the worker never sees it.
    Drop,
    /// Delivered twice; the worker records it twice.
    Duplicate,
}

/// Telemetry for one sender's view of the wire: probes handed in, replies
/// delivered back, probes that elicited nothing (dead target, loss,
/// unroutable reply). Counters are atomic sums, so the totals are
/// order-independent and a shared instance across worker threads stays
/// deterministic.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Probes handed to the wire.
    pub probes: Counter,
    /// Replies the wire delivered back.
    pub deliveries: Counter,
    /// Probes that elicited no delivery.
    pub unanswered: Counter,
}

impl WireStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Telemetry for the capture fabric: what the planned fault model
/// *actually did* to this run's deliveries, to compare against the
/// configured `drop_rate` / `dup_rate` (planned vs. observed).
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Deliveries that reached the worker once.
    pub delivered: Counter,
    /// Deliveries lost in the fabric.
    pub dropped: Counter,
    /// Deliveries duplicated by the fabric.
    pub duplicated: Counter,
}

impl FabricStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one verdict.
    pub fn record(&self, verdict: FabricVerdict) {
        match verdict {
            FabricVerdict::Deliver => self.delivered.inc(),
            FabricVerdict::Drop => self.dropped.inc(),
            FabricVerdict::Duplicate => self.duplicated.inc(),
        }
    }
}

impl CaptureFaults {
    /// Decide the fate of `d`, deterministically in `(seed, d)`.
    pub fn verdict(&self, d: &Delivery) -> FabricVerdict {
        let src = match d.packet.src {
            IpAddr::V4(a) => u64::from(u32::from(a)),
            IpAddr::V6(a) => {
                let o = a.octets();
                o.iter()
                    .fold(0u64, |acc, &b| acc.rotate_left(8) ^ u64::from(b))
            }
        };
        let k = rng::key(self.seed, &[0xFAB1C, d.rx_index as u64, d.rx_time_ms, src]);
        if rng::unit_f64(rng::mix(k, 1)) < self.drop_rate {
            FabricVerdict::Drop
        } else if rng::unit_f64(rng::mix(k, 2)) < self.dup_rate {
            FabricVerdict::Duplicate
        } else {
            FabricVerdict::Deliver
        }
    }

    /// [`CaptureFaults::verdict`], recording the outcome into `stats`.
    pub fn verdict_observed(&self, d: &Delivery, stats: &FabricStats) -> FabricVerdict {
        let v = self.verdict(d);
        stats.record(v);
        v
    }
}

/// Probability that a target's reverse route flips at least once within a
/// window of `span_s` seconds (§5.1.5 calibration; see DESIGN.md §4).
///
/// Two regimes: a small unstable population flipping on a ~2-minute
/// timescale, and bulk BGP path churn that makes most paths see a change
/// within several hours. Reproduces the paper's Fig. 4 progression
/// (13-minute probing intervals are catastrophic; 1-second intervals cost
/// almost nothing).
pub fn flip_probability(span_s: f64) -> f64 {
    if span_s <= 0.0 {
        return 0.0;
    }
    let fast = 0.02 * (1.0 - (-span_s / 128.0).exp());
    let slow = 0.685 * (1.0 - (-(span_s / 11_000.0).powi(3)).exp());
    fast + slow
}

/// The host octet (v4) / low interface-id byte (v6) of an address, used for
/// partial-anycast resolution.
fn host_of(addr: IpAddr) -> u8 {
    match addr {
        IpAddr::V4(a) => a.octets()[3],
        IpAddr::V6(a) => a.octets()[15],
    }
}

/// Pre-resolved per-worker probing state: the route handles
/// (`Arc<Routes>`, `Arc<DepCatchment>`) a sender needs are fetched from the
/// `World` caches once at start-order time, and the reply/chaos scratch
/// buffers are owned here, so [`World::send_probe_batch`] never touches the
/// cache `RwLock` and allocates nothing per probe in its steady state.
#[derive(Debug)]
pub struct ProbeSession {
    src: ProbeSource,
    src_platform: PlatformId,
    src_as: u32,
    /// Position of `src_as` in the VP-AS table, resolved once.
    src_vp_pos: Option<u16>,
    src_coord: Coord,
    /// City of the sending site (workers sit at city centres; unicast VP
    /// nodes are jittered off them, so they stay coordinate-based).
    src_city: Option<laces_geo::CityId>,
    /// The sender's latency key, resolved once.
    src_key: rng::Key,
    /// The sender's access delay, resolved once.
    src_access: f64,
    /// Reply routing toward the sender's own platform (workers only).
    routes: Option<Arc<Routes>>,
    /// Forward catchment of every deployment, indexed by `DeploymentId`.
    catchments: Vec<Arc<DepCatchment>>,
    /// Great-circle distances from this VP's jittered coordinate to each
    /// city centre, filled on first use (NaN = unset). Two slots per city
    /// — the forward (VP → city) and return (city → VP) legs are cached
    /// separately so the memo never assumes haversine symmetry. Workers
    /// sit at city centres and resolve through the world's city-pair memo
    /// instead, so this stays empty for them.
    vp_city_km: Vec<f64>,
    chaos_buf: String,
    reply_buf: Vec<u8>,
    /// Flight recorder for per-probe wire fates; the default is the
    /// disabled tracer, which costs one branch per probe.
    tracer: Tracer,
}

impl ProbeSession {
    /// The source this session probes from.
    pub fn source(&self) -> ProbeSource {
        self.src
    }

    /// Attach a flight recorder; the wire emits a `WireOutcome` event for
    /// every sampled probe this session sends.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

/// One pre-built probe inside a batch handed to [`World::send_probe_batch`].
/// The transport bytes are borrowed (typically from a worker-owned buffer
/// pool filled by `build_probe_into`).
#[derive(Debug, Clone, Copy)]
pub struct BatchProbe<'a> {
    /// Destination address.
    pub dst: IpAddr,
    /// Pre-serialized transport bytes. May be empty when `meta` is set.
    pub bytes: &'a [u8],
    /// Virtual transmit time of this probe.
    pub tx_time_ms: u64,
    /// Virtual time the *first* worker probes this target.
    pub window_start_ms: u64,
    /// Probe metadata, when the sender wants the zero-copy fast path: the
    /// wire then skips reply-byte synthesis and attaches a
    /// [`PreparedReply`] to the delivery instead (bit-identical outcome,
    /// no per-delivery allocation). `None` keeps the byte path.
    pub meta: Option<(ProbeMeta, ProbeEncoding)>,
}

impl World {
    /// Resolve everything a sender needs for a measurement's probing loop —
    /// done once at start-order time, so the per-probe path is lock-free.
    pub fn probe_session(&self, src: ProbeSource) -> ProbeSession {
        let (src_platform, src_idx) = match src {
            ProbeSource::Worker { platform, site } => (platform, site),
            ProbeSource::Vp { platform, vp } => (platform, vp),
        };
        let src_as = self.platform(src_platform).vp_as(src_idx);
        let src_key = rng::key(
            self.cfg.seed,
            &[0x52C, src_platform.0 as u64, src_idx as u64],
        );
        ProbeSession {
            src,
            src_platform,
            src_as,
            src_vp_pos: self.vp_as_position(src_as),
            src_coord: self.vantage_coord(src_platform, src_idx),
            src_city: match src {
                ProbeSource::Worker { platform, site } => self
                    .platform(platform)
                    .sites()
                    .map(|sites| sites[site].city),
                ProbeSource::Vp { .. } => None,
            },
            src_key,
            src_access: self.latency.access_ms(src_key),
            routes: match src {
                ProbeSource::Worker { platform, .. } => Some(self.platform_routes(platform)),
                ProbeSource::Vp { .. } => None,
            },
            catchments: (0..self.deployments.len() as u32)
                .map(|d| self.dep_catchment(DeploymentId(d)))
                .collect(),
            vp_city_km: match src {
                ProbeSource::Vp { .. } => vec![f64::NAN; self.db.len() * 2],
                ProbeSource::Worker { .. } => Vec::new(),
            },
            chaos_buf: String::new(),
            reply_buf: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Deliver a probe; returns the reply delivery, or `None` when the
    /// target does not exist, is down or unresponsive on this protocol, the
    /// probe is lost, or the reply cannot route back.
    ///
    /// `window_start_ms` is the virtual time at which the *first* worker
    /// probes this target (the orchestrator schedules the rest within
    /// `ctx.span_ms` after it); route flips are placed inside that window.
    ///
    /// # Errors
    ///
    /// Returns `Err` only when the probe bytes themselves are malformed —
    /// a real host would silently drop them, but a malformed probe is a
    /// caller bug worth surfacing.
    pub fn send_probe(
        &self,
        src: ProbeSource,
        packet: &Packet,
        tx_time_ms: u64,
        window_start_ms: u64,
        ctx: &MeasurementCtx,
    ) -> Result<Option<Delivery>, PacketError> {
        let (src_platform, src_idx) = match src {
            ProbeSource::Worker { platform, site } => (platform, site),
            ProbeSource::Vp { platform, vp } => (platform, vp),
        };
        let src_as = self.platform(src_platform).vp_as(src_idx);
        let src_key = rng::key(
            self.cfg.seed,
            &[0x52C, src_platform.0 as u64, src_idx as u64],
        );
        let src_city = match src {
            ProbeSource::Worker { platform, site } => self
                .platform(platform)
                .sites()
                .map(|sites| sites[site].city),
            ProbeSource::Vp { .. } => None,
        };
        let mut chaos_buf = String::new();
        let mut reply_buf = Vec::new();
        self.send_probe_core(
            src,
            src_platform,
            self.vantage_coord(src_platform, src_idx),
            src_city,
            src_key,
            self.latency.access_ms(src_key),
            flip_probability(ctx.span_ms as f64 / 1000.0),
            None,
            None,
            &packet.view(),
            tx_time_ms,
            window_start_ms,
            ctx,
            |dep| self.forward_site(dep, src_as, ctx.day),
            |responder_as| self.receiving_site(src_platform, responder_as, ctx.day),
            &mut chaos_buf,
            &mut reply_buf,
            &Tracer::disabled(),
        )
    }

    /// The lock-free batched sending path: every probe of `probes` goes
    /// through the same decision pipeline as [`World::send_probe`], but
    /// route lookups resolve against the session's pre-fetched handles and
    /// reply synthesis reuses the session's buffers. Wire statistics are
    /// accumulated locally and added to `stats` once per batch (the sums
    /// are identical to per-probe increments).
    ///
    /// Deliveries are appended to `out` (cleared first) in probe order.
    ///
    /// # Errors
    ///
    /// Malformed probe bytes surface as `Err` after the whole batch has
    /// been processed (the malformed probe itself elicits nothing, exactly
    /// as on the scalar path); the first error wins.
    #[allow(clippy::too_many_arguments)]
    pub fn send_probe_batch(
        &self,
        session: &mut ProbeSession,
        src_addr: IpAddr,
        protocol: Protocol,
        probes: &[BatchProbe<'_>],
        ctx: &MeasurementCtx,
        stats: &WireStats,
        out: &mut Vec<Delivery>,
    ) -> Result<(), PacketError> {
        out.clear();
        self.send_probe_batch_inner(session, src_addr, protocol, probes, ctx, stats, |d| {
            if let Some(d) = d {
                out.push(d);
            }
        })
    }

    /// [`World::send_probe_batch`] with *positional* results: `out` gets
    /// exactly one slot per probe (`None` for unanswered or malformed
    /// probes), so callers can map deliveries back to probes without
    /// matching addresses — which is ambiguous when a batch legitimately
    /// repeats a destination (retry trains, duplicate hitlist rows).
    /// Accounting and per-probe outcomes are identical to
    /// [`World::send_probe_batch`].
    ///
    /// # Errors
    ///
    /// As for [`World::send_probe_batch`]: the first malformed probe's
    /// error, after the whole batch has been processed.
    #[allow(clippy::too_many_arguments)]
    pub fn send_probe_batch_slotted(
        &self,
        session: &mut ProbeSession,
        src_addr: IpAddr,
        protocol: Protocol,
        probes: &[BatchProbe<'_>],
        ctx: &MeasurementCtx,
        stats: &WireStats,
        out: &mut Vec<Option<Delivery>>,
    ) -> Result<(), PacketError> {
        out.clear();
        self.send_probe_batch_inner(session, src_addr, protocol, probes, ctx, stats, |d| {
            out.push(d);
        })
    }

    /// Shared body of the two batch entry points: the per-probe decision
    /// pipeline with session-cached handles, local statistics accumulation,
    /// and a per-probe `sink` called in probe order (`None` for probes that
    /// elicit nothing).
    #[allow(clippy::too_many_arguments)]
    fn send_probe_batch_inner(
        &self,
        session: &mut ProbeSession,
        src_addr: IpAddr,
        protocol: Protocol,
        probes: &[BatchProbe<'_>],
        ctx: &MeasurementCtx,
        stats: &WireStats,
        mut sink: impl FnMut(Option<Delivery>),
    ) -> Result<(), PacketError> {
        let ProbeSession {
            src,
            src_platform,
            src_as,
            src_vp_pos,
            src_coord,
            src_city,
            src_key,
            src_access,
            routes,
            catchments,
            vp_city_km,
            chaos_buf,
            reply_buf,
            tracer,
        } = session;
        let tracer = &*tracer;
        let (src, src_platform, src_as, src_vp_pos, src_coord) =
            (*src, *src_platform, *src_as, *src_vp_pos, *src_coord);
        let (src_city, src_key, src_access) = (*src_city, *src_key, *src_access);
        let routes = routes.as_deref();
        let catchments: &[Arc<DepCatchment>] = catchments;
        let seed = self.cfg.seed;
        let day = ctx.day;
        // The flip probability depends only on the measurement span: hoist
        // its two exponentials out of the per-probe path.
        let flip_p = flip_probability(ctx.span_ms as f64 / 1000.0);
        let mut delivered: u64 = 0;
        let mut unanswered: u64 = 0;
        let mut first_err: Option<PacketError> = None;
        for p in probes {
            let view = PacketView {
                src: src_addr,
                dst: p.dst,
                protocol,
                bytes: p.bytes,
            };
            let sent = self.send_probe_core(
                src,
                src_platform,
                src_coord,
                src_city,
                src_key,
                src_access,
                flip_p,
                (!vp_city_km.is_empty()).then_some(vp_city_km.as_mut_slice()),
                p.meta,
                &view,
                p.tx_time_ms,
                p.window_start_ms,
                ctx,
                |dep| {
                    let pos = src_vp_pos?;
                    forward_site_in(seed, &catchments[dep.0 as usize], pos, dep, src_as, day)
                },
                |responder_as| receiving_site_in(seed, routes?, src_platform, responder_as, day),
                chaos_buf,
                reply_buf,
                tracer,
            );
            match sent {
                Ok(Some(d)) => {
                    delivered += 1;
                    sink(Some(d));
                }
                Ok(None) => {
                    unanswered += 1;
                    sink(None);
                }
                // A malformed probe is counted as a probe but elicits
                // nothing — same accounting as the scalar observed path.
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    sink(None);
                }
            }
        }
        stats.probes.add(probes.len() as u64);
        stats.deliveries.add(delivered);
        stats.unanswered.add(unanswered);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The prepared single-probe fast path: one probe through the exact
    /// pipeline of [`World::send_probe_batch`], with the same pre-resolved
    /// session handles and scratch buffers, but per-probe statistics
    /// accounting identical to [`World::send_probe_observed`] (probe
    /// counted first; an `Err` probe is counted but elicits nothing).
    /// This is the shape retry loops want — send, inspect the delivery,
    /// decide the next attempt — where assembling a batch would force the
    /// caller to buffer decisions it makes one probe at a time.
    ///
    /// # Errors
    ///
    /// Malformed probe bytes surface as `Err`, exactly as on the scalar
    /// path. With `probe.meta` set the bytes are never parsed, so the
    /// prepared path cannot fail.
    pub fn send_probe_one(
        &self,
        session: &mut ProbeSession,
        src_addr: IpAddr,
        protocol: Protocol,
        probe: &BatchProbe<'_>,
        ctx: &MeasurementCtx,
        stats: &WireStats,
    ) -> Result<Option<Delivery>, PacketError> {
        stats.probes.inc();
        let ProbeSession {
            src,
            src_platform,
            src_as,
            src_vp_pos,
            src_coord,
            src_city,
            src_key,
            src_access,
            routes,
            catchments,
            vp_city_km,
            chaos_buf,
            reply_buf,
            tracer,
        } = session;
        let tracer = &*tracer;
        let (src, src_platform, src_as, src_vp_pos, src_coord) =
            (*src, *src_platform, *src_as, *src_vp_pos, *src_coord);
        let (src_city, src_key, src_access) = (*src_city, *src_key, *src_access);
        let routes = routes.as_deref();
        let catchments: &[Arc<DepCatchment>] = catchments;
        let seed = self.cfg.seed;
        let day = ctx.day;
        let view = PacketView {
            src: src_addr,
            dst: probe.dst,
            protocol,
            bytes: probe.bytes,
        };
        let result = self.send_probe_core(
            src,
            src_platform,
            src_coord,
            src_city,
            src_key,
            src_access,
            flip_probability(ctx.span_ms as f64 / 1000.0),
            (!vp_city_km.is_empty()).then_some(vp_city_km.as_mut_slice()),
            probe.meta,
            &view,
            probe.tx_time_ms,
            probe.window_start_ms,
            ctx,
            |dep| {
                let pos = src_vp_pos?;
                forward_site_in(seed, &catchments[dep.0 as usize], pos, dep, src_as, day)
            },
            |responder_as| receiving_site_in(seed, routes?, src_platform, responder_as, day),
            chaos_buf,
            reply_buf,
            tracer,
        )?;
        match result {
            Some(_) => stats.deliveries.inc(),
            None => stats.unanswered.inc(),
        }
        Ok(result)
    }

    /// The shared decision pipeline behind [`World::send_probe`] and
    /// [`World::send_probe_batch`]. `forward` and `receiving` abstract the
    /// route-table access (locked caches on the scalar path, pre-resolved
    /// session handles on the batched path) and MUST be backed by
    /// [`forward_site_in`] / [`receiving_site_in`] so the RNG draws are
    /// bit-identical between paths.
    #[allow(clippy::too_many_arguments)]
    fn send_probe_core(
        &self,
        src: ProbeSource,
        src_platform: PlatformId,
        src_coord: Coord,
        src_city: Option<laces_geo::CityId>,
        src_key: rng::Key,
        src_access: f64,
        flip_p: f64,
        vp_city_km: Option<&mut [f64]>,
        prepared: Option<(ProbeMeta, ProbeEncoding)>,
        packet: &PacketView<'_>,
        tx_time_ms: u64,
        window_start_ms: u64,
        ctx: &MeasurementCtx,
        mut forward: impl FnMut(DeploymentId) -> Option<(usize, u16)>,
        mut receiving: impl FnMut(u32) -> Option<(usize, u16, TieSet)>,
        chaos_buf: &mut String,
        reply_buf: &mut Vec<u8>,
        tracer: &Tracer,
    ) -> Result<Option<Delivery>, PacketError> {
        let src_idx = match src {
            ProbeSource::Worker { site, .. } => site,
            ProbeSource::Vp { vp, .. } => vp,
        };
        // Per-probe flight-recorder hook: a single branch when tracing is
        // disabled, and the event closure only runs for sampled targets.
        // Every fate is keyed on per-probe coordinates (prefix, sender,
        // schedule time), so the recorded multiset is batch-invariant.
        let prefix = PrefixKey::of(packet.dst);
        let unanswered = |cause: UnansweredCause| {
            tracer.record_for(Component::Wire, prefix, || TraceEvent::WireOutcome {
                prefix,
                worker: u16::try_from(src_idx).unwrap_or(u16::MAX),
                tx_time_ms,
                fate: WireFate::Unanswered { cause },
            });
        };
        let Some(tid) = self.lookup(prefix) else {
            unanswered(UnansweredCause::UnknownTarget);
            return Ok(None);
        };
        let target = self.target(tid);
        if !target.alive_on(self.cfg.seed, tid, ctx.day) {
            unanswered(UnansweredCause::TargetDown);
            return Ok(None);
        }
        if !target.resp.to(packet.protocol) {
            unanswered(UnansweredCause::ProtocolClosed);
            return Ok(None);
        }
        // Per-probe draws are keyed by the probe's position in the
        // measurement schedule (offset inside the target's window), not by
        // absolute transmit time: pacing the same schedule slower or faster
        // must redraw nothing, or the census would not be rate-invariant
        // (§5.5.2). Within one measurement every probe still gets a unique
        // key via (target, source, window offset).
        let sched_offset_ms = tx_time_ms.saturating_sub(window_start_ms);
        let probe_key = rng::key(
            self.cfg.seed,
            &[
                0x920BE,
                tid.0 as u64,
                sched_offset_ms,
                src_idx as u64,
                ctx.id as u64,
            ],
        );
        if rng::unit_f64(rng::mix(probe_key, 0x1055)) < self.cfg.loss_rate {
            unanswered(UnansweredCause::ProbeLost);
            return Ok(None);
        }

        // --- Who responds, and from where? ---------------------------------
        let host = host_of(packet.dst);
        let acts_anycast = target.is_anycast_at(host, ctx.day)
            || (matches!(target.kind, TargetKind::BackingAnycast { .. })
                && matches!(src, ProbeSource::Vp { .. })
                && self.is_broken_v6_vp(src_platform, src_idx));

        // Every responder sits at a city centre, so the forward leg's
        // great-circle distance resolves through the world's city-pair memo
        // when the sender does too (workers); jittered unicast VP senders
        // resolve through their session's per-city memo when one is
        // attached, and fall back to the bare haversine otherwise.
        let mut vp_city_km = vp_city_km;
        let mut dist_from_src = |city: laces_geo::CityId, coord: &Coord| -> f64 {
            match src_city {
                Some(sc) => self.city_gcd_km(sc, city),
                None => match vp_city_km.as_deref_mut() {
                    Some(memo) => {
                        let slot = &mut memo[usize::from(city.0) * 2];
                        if slot.is_nan() {
                            *slot = src_coord.gcd_km(coord);
                        }
                        *slot
                    }
                    None => src_coord.gcd_km(coord),
                },
            }
        };
        let (responder_as, responder_city, responder_coord, site_idx, hops_fwd, d_fwd) =
            if acts_anycast {
                let dep = match target.kind {
                    TargetKind::Anycast { dep }
                    | TargetKind::PartialAnycast { dep, .. }
                    | TargetKind::BackingAnycast { dep, .. } => dep,
                    _ => unreachable!("acts_anycast implies a deployment"),
                };
                let Some((site, dist)) = forward(dep) else {
                    unanswered(UnansweredCause::NoForwardRoute);
                    return Ok(None);
                };
                let s = &self.deployment(dep).sites[site];
                let coord = self.db.get(s.city).coord;
                let d = dist_from_src(s.city, &coord);
                (s.as_idx, s.city, coord, Some((dep, site)), dist, d)
            } else {
                match target.kind {
                    TargetKind::GlobalUnicast { city, egress } => {
                        // Egress network is stable per (target, probing VP):
                        // different workers' replies leave via different PoPs.
                        let e = egress[rng::below(
                            rng::key(self.cfg.seed, &[0xE62E, tid.0 as u64, src_idx as u64]),
                            2,
                        )];
                        let coord = self.db.get(city).coord;
                        let d = dist_from_src(city, &coord);
                        let hops = self.latency.estimate_hops_km(d, rng::mix(probe_key, 7));
                        (e, city, coord, None, hops, d)
                    }
                    TargetKind::Unicast { city }
                    | TargetKind::PartialAnycast { city, .. }
                    | TargetKind::BackingAnycast { city, .. } => {
                        // A live hijack splits traffic: roughly half the
                        // Internet's catchments route to the bogus origin.
                        if let Some(h) = target.hijack.filter(|h| h.day == ctx.day) {
                            if rng::unit_f64(rng::key(
                                self.cfg.seed,
                                &[0x41AF, tid.0 as u64, src_idx as u64],
                            )) < 0.5
                            {
                                let a_city = self.topo.home_city(h.attacker_as);
                                let coord = self.db.get(a_city).coord;
                                let d = dist_from_src(a_city, &coord);
                                let hops = self.latency.estimate_hops_km(d, rng::mix(probe_key, 9));
                                (h.attacker_as, a_city, coord, None, hops, d)
                            } else {
                                let coord = self.db.get(city).coord;
                                let d = dist_from_src(city, &coord);
                                let hops = self.latency.estimate_hops_km(d, rng::mix(probe_key, 7));
                                (target.as_idx, city, coord, None, hops, d)
                            }
                        } else {
                            let coord = self.db.get(city).coord;
                            let d = dist_from_src(city, &coord);
                            let hops = self.latency.estimate_hops_km(d, rng::mix(probe_key, 7));
                            (target.as_idx, city, coord, None, hops, d)
                        }
                    }
                    TargetKind::Anycast { .. } => {
                        // Inactive temporary anycast.
                        unanswered(UnansweredCause::InactiveAnycast);
                        return Ok(None);
                    }
                }
            };

        // --- Synthesize the reply bytes -------------------------------------
        // The identity is borrowed, not cloned: per-site identities point
        // into the deployment table, colo identities are formatted into the
        // reusable scratch buffer.
        let chaos_identity: Option<&str> = if packet.protocol == Protocol::Chaos {
            match (target.ns, site_idx) {
                (Some(ChaosProfile::PerSite), Some((dep, site))) => {
                    Some(self.deployment(dep).sites[site].chaos_identity.as_str())
                }
                (Some(ChaosProfile::PerSite), None) => Some("ns-single-site"),
                (Some(ChaosProfile::Colo(k)), _) => {
                    chaos_buf.clear();
                    // laces-lint: allow(discarded-fallibility) — fmt::Write into the reusable String scratch buffer is infallible
                    let _ = write!(
                        chaos_buf,
                        "auth{}",
                        1 + rng::below(rng::mix(probe_key, 0xC010), k.max(1) as usize)
                    );
                    Some(chaos_buf.as_str())
                }
                (None, _) => None,
            }
        } else {
            None
        };
        // Zero-copy fast path: when the sender handed us the probe's own
        // metadata, the reply's attribution is a pure function of it — no
        // reply bytes are synthesized, and the delivery carries a
        // `PreparedReply` instead (allocation only for CHAOS identities).
        let reply: Option<PreparedReply> = match prepared {
            Some((meta, encoding)) => Some(PreparedReply {
                meta,
                encoding,
                chaos_identity: chaos_identity.map(Arc::from),
            }),
            None => {
                laces_packet::probe::build_reply_into(packet, chaos_identity, reply_buf)?;
                None
            }
        };

        // --- Route the reply back -------------------------------------------
        let (rx_index, hops_back, d_back) = match src {
            ProbeSource::Vp { .. } => {
                let d = match vp_city_km {
                    Some(memo) => {
                        let slot = &mut memo[usize::from(responder_city.0) * 2 + 1];
                        if slot.is_nan() {
                            *slot = responder_coord.gcd_km(&src_coord);
                        }
                        *slot
                    }
                    None => responder_coord.gcd_km(&src_coord),
                };
                (src_idx, hops_fwd, d)
            }
            ProbeSource::Worker { platform, .. } => {
                let Some((primary, dist_back, ties)) = receiving(responder_as) else {
                    unanswered(UnansweredCause::NoReverseRoute);
                    return Ok(None);
                };
                let mut site = primary;
                // Per-packet reverse-path instability. The intensity is a
                // stable per-target property drawn from a wide range, so on
                // any given day only a varying subset of unstable targets
                // actually materialises as a multi-VP observation — the
                // anycast-based candidate set is far less stable over time
                // than the GCD set (§5.1.6).
                if target.jittery && ties.len() >= 2 {
                    let p_flip = 0.03
                        + 0.57 * rng::unit_f64(rng::key(self.cfg.seed, &[0x71F0, tid.0 as u64]));
                    if rng::unit_f64(rng::mix(probe_key, 0x71BB)) < p_flip {
                        site = ties.as_slice()[rng::below(rng::mix(probe_key, 0x71BC), ties.len())]
                            as usize;
                    }
                }
                // Route flips within the probing window: the longer the
                // window, the likelier a flip lands inside it (Fig. 4).
                if !acts_anycast && !matches!(target.kind, TargetKind::GlobalUnicast { .. }) {
                    let fk = rng::key(self.cfg.seed, &[0xF11B, tid.0 as u64, ctx.id as u64]);
                    if rng::unit_f64(fk) < flip_p {
                        let flip_at = window_start_ms
                            + (rng::unit_f64(rng::mix(fk, 1)) * ctx.span_ms as f64) as u64;
                        if tx_time_ms >= flip_at {
                            site = self.alternate_site(platform, primary, &ties, rng::mix(fk, 2));
                        }
                    }
                }
                let Some(sites) = self.platform(platform).sites() else {
                    unanswered(UnansweredCause::NoReverseRoute);
                    return Ok(None);
                };
                (
                    site,
                    dist_back,
                    self.city_gcd_km(responder_city, sites[site].city),
                )
            }
        };

        let target_key = rng::key(self.cfg.seed, &[0x7A26, tid.0 as u64]);
        let mut rtt = self.latency.rtt_ms_km(
            d_fwd,
            d_back,
            hops_fwd,
            hops_back,
            src_key,
            target_key,
            probe_key,
            src_access,
            self.target_access_ms(tid, target_key),
        );
        // DNS answers come from a resolver process, not the kernel: request
        // processing adds milliseconds of heavy-tailed delay. This is why
        // the paper's pipeline performs GCD with ICMP and TCP but not DNS
        // (§4.2.2) — the extra delay inflates feasibility disks.
        if matches!(packet.protocol, Protocol::Udp | Protocol::Chaos) {
            let u = rng::unit_f64(rng::mix(probe_key, 0xD25));
            rtt += (1.0 / (1.0 - 0.92 * u) - 1.0).min(40.0) + 0.5;
        }
        let rx_time_ms = tx_time_ms + (rtt.ceil() as u64).max(1);
        tracer.record_for(Component::Wire, prefix, || TraceEvent::WireOutcome {
            prefix,
            worker: u16::try_from(src_idx).unwrap_or(u16::MAX),
            tx_time_ms,
            fate: WireFate::Delivered {
                rx_worker: u16::try_from(rx_index).unwrap_or(u16::MAX),
                rx_time_ms,
            },
        });
        Ok(Some(Delivery {
            packet: Packet {
                src: packet.dst,
                dst: packet.src,
                protocol: packet.protocol,
                // `Bytes::new` is allocation-free; the fast path never
                // materializes reply bytes.
                bytes: if reply.is_some() {
                    Bytes::new()
                } else {
                    Bytes::copy_from_slice(reply_buf)
                },
            },
            reply,
            rx_index,
            rx_time_ms,
            rtt_ms: rtt,
        }))
    }

    /// [`World::send_probe`], recording the probe and its outcome into
    /// `stats`. This is the entry point the measurement path uses, so every
    /// probe a worker transmits is accounted for in the run's telemetry.
    pub fn send_probe_observed(
        &self,
        src: ProbeSource,
        packet: &Packet,
        tx_time_ms: u64,
        window_start_ms: u64,
        ctx: &MeasurementCtx,
        stats: &WireStats,
    ) -> Result<Option<Delivery>, PacketError> {
        stats.probes.inc();
        let result = self.send_probe(src, packet, tx_time_ms, window_start_ms, ctx)?;
        match result {
            Some(_) => stats.deliveries.inc(),
            None => stats.unanswered.inc(),
        }
        Ok(result)
    }

    /// Coordinate of a vantage point on any platform.
    pub fn vantage_coord(&self, platform: PlatformId, idx: usize) -> laces_geo::Coord {
        match &self.platform(platform).kind {
            PlatformKind::Anycast { sites } => self.db.get(sites[idx].city).coord,
            PlatformKind::Unicast { vps } => vps[idx].coord,
        }
    }

    /// Whether VP `idx` of `platform` sits in an AS that filters backing
    /// `/48` announcements.
    pub fn is_broken_v6_vp(&self, platform: PlatformId, idx: usize) -> bool {
        (platform == self.std_platforms.ark || platform == self.std_platforms.ark_dev)
            && self.broken_v6_vps.contains(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_probability_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for s in [0.0, 1.0, 31.0, 300.0, 1860.0, 24_180.0, 1e6] {
            let p = flip_probability(s);
            assert!((0.0..=1.0).contains(&p), "p({s}) = {p}");
            assert!(p >= prev, "not monotone at {s}");
            prev = p;
        }
    }

    #[test]
    fn flip_probability_matches_fig4_calibration() {
        // Span for a 32-worker measurement = 31 × interval.
        let p_1s = flip_probability(31.0);
        let p_1m = flip_probability(31.0 * 60.0);
        let p_13m = flip_probability(31.0 * 780.0);
        // Paper (Fig. 4): extra FPs over the 0 s baseline out of ~280 k
        // unicast: ~1.2 k (1 s), ~6.5 k (1 m), ~185 k (13 m).
        assert!((0.003..0.006).contains(&p_1s), "p_1s = {p_1s}");
        assert!((0.015..0.035).contains(&p_1m), "p_1m = {p_1m}");
        assert!((0.55..0.80).contains(&p_13m), "p_13m = {p_13m}");
    }

    #[test]
    fn zero_span_never_flips() {
        assert_eq!(flip_probability(0.0), 0.0);
        assert_eq!(flip_probability(-5.0), 0.0);
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("10.0.0.77".parse().unwrap()), 77);
        assert_eq!(host_of("2001:db8::5".parse().unwrap()), 5);
    }
}

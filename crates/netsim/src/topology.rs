//! AS-level topology generation.
//!
//! The simulated Internet is a three-tier customer/provider hierarchy with
//! peering, in the style of measured AS topologies:
//!
//! * a small clique of **tier-1** ASes that peer with each other and have
//!   points of presence spread across the globe;
//! * **transit** ASes that buy from tier-1s (or other transit ASes) and
//!   selectively peer with geographically close transit ASes;
//! * **stub** ASes (eyeball and enterprise networks) that buy transit from
//!   one or two nearby transit providers. Census targets live here.
//!
//! Providers are always chosen among ASes with a *smaller index*, so the
//! customer→provider digraph is acyclic by construction, which both matches
//! economic reality (no provider loops) and guarantees the Gao-Rexford
//! propagation in [`crate::routing`] terminates.

use laces_geo::{CityDb, CityId, Coord};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Transit-free backbone network.
    Tier1,
    /// Regional or national transit provider.
    Transit,
    /// Edge network (origin of census targets).
    Stub,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    /// A synthetic AS number (unique, for display).
    pub asn: u32,
    /// Hierarchy role.
    pub tier: Tier,
    /// Cities where this AS has points of presence (non-empty).
    pub pops: Vec<CityId>,
}

/// Parameters for topology generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoConfig {
    /// Number of tier-1 ASes (fully meshed peers).
    pub n_tier1: usize,
    /// Number of transit ASes.
    pub n_transit: usize,
    /// Number of stub ASes.
    pub n_stub: usize,
}

impl Default for TopoConfig {
    fn default() -> Self {
        TopoConfig {
            n_tier1: 12,
            n_transit: 380,
            n_stub: 3600,
        }
    }
}

impl TopoConfig {
    /// A miniature topology for unit tests.
    pub fn tiny() -> Self {
        TopoConfig {
            n_tier1: 4,
            n_transit: 30,
            n_stub: 200,
        }
    }
}

/// The AS graph: nodes plus customer/provider and peering adjacency.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// All ASes; indices into this vector are the canonical AS identifiers
    /// used throughout the simulator.
    pub ases: Vec<AsNode>,
    /// For each AS, the indices of its providers.
    pub providers: Vec<Vec<u32>>,
    /// For each AS, the indices of its customers (inverse of `providers`).
    pub customers: Vec<Vec<u32>>,
    /// For each AS, the indices of its peers (symmetric).
    pub peers: Vec<Vec<u32>>,
}

impl Topology {
    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// Whether the topology has no ASes.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// Add an AS with explicit relationships; returns its index.
    ///
    /// Used by the generator and by [`crate::world`] to attach measurement
    /// platform sites and anycast deployment sites as edge networks.
    /// Panics if a provider or peer index is out of range or if `pops` is
    /// empty.
    pub fn add_as(
        &mut self,
        asn: u32,
        tier: Tier,
        pops: Vec<CityId>,
        providers: Vec<u32>,
        peers: Vec<u32>,
    ) -> u32 {
        assert!(!pops.is_empty(), "AS must have at least one PoP");
        let idx = self.ases.len() as u32;
        for &p in &providers {
            assert!(
                (p as usize) < self.ases.len(),
                "provider index out of range"
            );
            assert!(p != idx, "AS cannot be its own provider");
        }
        for &p in &peers {
            assert!((p as usize) < self.ases.len(), "peer index out of range");
        }
        self.ases.push(AsNode { asn, tier, pops });
        self.providers.push(providers.clone());
        self.customers.push(Vec::new());
        self.peers.push(peers.clone());
        for p in providers {
            self.customers[p as usize].push(idx);
        }
        for p in peers {
            self.peers[p as usize].push(idx);
        }
        idx
    }

    /// The PoP of `as_idx` geographically nearest to `to`.
    ///
    /// Generation gives every AS at least one PoP; should that invariant
    /// ever slip, the world's first city stands in rather than a panic
    /// mid-measurement (great-circle distances are always finite, so the
    /// total order below equals the partial one).
    pub fn nearest_pop(&self, db: &CityDb, as_idx: u32, to: &Coord) -> CityId {
        let pops = &self.ases[as_idx as usize].pops;
        *pops
            .iter()
            .min_by(|a, b| {
                let da = db.get(**a).coord.gcd_km(to);
                let dbd = db.get(**b).coord.gcd_km(to);
                da.total_cmp(&dbd)
            })
            .unwrap_or(&CityId(0))
    }

    /// The first (home) PoP of an AS.
    pub fn home_city(&self, as_idx: u32) -> CityId {
        self.ases[as_idx as usize].pops[0]
    }

    /// Generate a topology per `cfg`, deterministically from `seed`.
    pub fn generate(cfg: &TopoConfig, db: &CityDb, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7070_7070);
        let mut topo = Topology::default();

        // Population-weighted city sampler.
        let cities: Vec<CityId> = db.iter().map(|(id, _)| id).collect();
        let weights: Vec<f64> = db
            .iter()
            .map(|(_, c)| (c.population as f64).sqrt())
            .collect();
        let total_w: f64 = weights.iter().sum();
        let pick_city = |rng: &mut StdRng| -> CityId {
            let mut x = rng.gen_range(0.0..total_w);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return cities[i];
                }
                x -= w;
            }
            // Numeric fallthrough (x can exceed every cumulative weight by
            // a rounding hair): the final city is the correct weighted
            // pick, and the embedded database is never empty.
            cities.last().copied().unwrap_or(CityId(0))
        };

        // Tier-1 clique.
        for t in 0..cfg.n_tier1 {
            let n_pops = rng.gen_range(6..=12);
            let mut pops = Vec::with_capacity(n_pops);
            while pops.len() < n_pops {
                let c = pick_city(&mut rng);
                if !pops.contains(&c) {
                    pops.push(c);
                }
            }
            let peers: Vec<u32> = (0..t as u32).collect();
            topo.add_as(100 + t as u32, Tier::Tier1, pops, Vec::new(), peers);
        }

        // Transit ASes: providers among tier-1 and previously created transit.
        for t in 0..cfg.n_transit {
            let n_pops = rng.gen_range(1..=4);
            let mut pops = Vec::with_capacity(n_pops);
            while pops.len() < n_pops {
                let c = pick_city(&mut rng);
                if !pops.contains(&c) {
                    pops.push(c);
                }
            }
            let home = db.get(pops[0]).coord;
            let n_candidates = topo.len();
            let n_prov = rng.gen_range(1..=3.min(n_candidates));
            let providers = pick_near(&topo, db, &mut rng, &home, 0..n_candidates as u32, n_prov);
            // Peer with a couple of geographically close transit ASes.
            let transit_start = cfg.n_tier1 as u32;
            let mut peers = Vec::new();
            if topo.len() as u32 > transit_start && rng.gen_bool(0.5) {
                let n_peer = rng.gen_range(1..=2);
                peers = pick_near(
                    &topo,
                    db,
                    &mut rng,
                    &home,
                    transit_start..topo.len() as u32,
                    n_peer,
                );
            }
            topo.add_as(2_000 + t as u32, Tier::Transit, pops, providers, peers);
        }

        // Stub ASes: one or two nearby transit providers.
        let transit_range = cfg.n_tier1 as u32..(cfg.n_tier1 + cfg.n_transit) as u32;
        for s in 0..cfg.n_stub {
            let city = pick_city(&mut rng);
            let home = db.get(city).coord;
            let n_prov = if rng.gen_bool(0.3) { 2 } else { 1 };
            let providers = pick_near(&topo, db, &mut rng, &home, transit_range.clone(), n_prov);
            topo.add_as(
                10_000 + s as u32,
                Tier::Stub,
                vec![city],
                providers,
                Vec::new(),
            );
        }

        topo
    }
}

/// Choose `n` distinct ASes from `range`, weighted toward those with a PoP
/// near `home`.
fn pick_near(
    topo: &Topology,
    db: &CityDb,
    rng: &mut StdRng,
    home: &Coord,
    range: std::ops::Range<u32>,
    n: usize,
) -> Vec<u32> {
    let candidates: Vec<u32> = range.collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let weights: Vec<f64> = candidates
        .iter()
        .map(|&i| {
            let pop_city = topo.nearest_pop(db, i, home);
            let d = db.get(pop_city).coord.gcd_km(home);
            1.0 / (1.0 + d / 800.0).powi(2)
        })
        .collect();
    let mut chosen = Vec::with_capacity(n);
    let mut pool: Vec<(u32, f64)> = candidates.into_iter().zip(weights).collect();
    for _ in 0..n.min(pool.len()) {
        let total: f64 = pool.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            // Degenerate weights: fall back to uniform choice.
            let i = rng.gen_range(0..pool.len());
            chosen.push(pool.swap_remove(i).0);
            continue;
        }
        let mut x = rng.gen_range(0.0..total);
        let mut idx = pool.len() - 1;
        for (i, (_, w)) in pool.iter().enumerate() {
            if x < *w {
                idx = i;
                break;
            }
            x -= w;
        }
        chosen.push(pool.swap_remove(idx).0);
    }
    // Deterministic order regardless of selection order.
    chosen.sort_unstable();
    chosen.shuffle(rng);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Topology, CityDb) {
        let db = CityDb::embedded();
        let topo = Topology::generate(&TopoConfig::tiny(), &db, 1);
        (topo, db)
    }

    #[test]
    fn generation_is_deterministic() {
        let db = CityDb::embedded();
        let a = Topology::generate(&TopoConfig::tiny(), &db, 5);
        let b = Topology::generate(&TopoConfig::tiny(), &db, 5);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.providers[i], b.providers[i]);
            assert_eq!(a.peers[i], b.peers[i]);
            assert_eq!(a.ases[i].pops, b.ases[i].pops);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let db = CityDb::embedded();
        let a = Topology::generate(&TopoConfig::tiny(), &db, 5);
        let b = Topology::generate(&TopoConfig::tiny(), &db, 6);
        let same = (0..a.len()).all(|i| a.providers[i] == b.providers[i]);
        assert!(!same);
    }

    #[test]
    fn sizes_match_config() {
        let (topo, _) = small();
        let cfg = TopoConfig::tiny();
        assert_eq!(topo.len(), cfg.n_tier1 + cfg.n_transit + cfg.n_stub);
        let t1 = topo.ases.iter().filter(|a| a.tier == Tier::Tier1).count();
        assert_eq!(t1, cfg.n_tier1);
    }

    #[test]
    fn providers_have_smaller_indices() {
        let (topo, _) = small();
        for (i, provs) in topo.providers.iter().enumerate() {
            for &p in provs {
                assert!((p as usize) < i, "AS {i} has provider {p} >= itself");
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let (topo, _) = small();
        for (i, a) in topo.ases.iter().enumerate() {
            if a.tier != Tier::Tier1 {
                assert!(!topo.providers[i].is_empty(), "AS {i} is an orphan");
            }
        }
    }

    #[test]
    fn tier1_clique_is_fully_meshed() {
        let (topo, _) = small();
        let n1 = TopoConfig::tiny().n_tier1;
        for i in 0..n1 {
            let mut peers: Vec<u32> = topo.peers[i].clone();
            peers.sort_unstable();
            peers.dedup();
            let expected: Vec<u32> = (0..n1 as u32).filter(|&j| j != i as u32).collect();
            assert_eq!(peers, expected, "tier-1 {i} not fully meshed");
        }
    }

    #[test]
    fn customers_is_inverse_of_providers() {
        let (topo, _) = small();
        for (i, provs) in topo.providers.iter().enumerate() {
            for &p in provs {
                assert!(topo.customers[p as usize].contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn peering_is_symmetric() {
        let (topo, _) = small();
        for (i, peers) in topo.peers.iter().enumerate() {
            for &p in peers {
                assert!(topo.peers[p as usize].contains(&(i as u32)), "{i} <-> {p}");
            }
        }
    }

    #[test]
    fn nearest_pop_prefers_close_city() {
        let (topo, db) = small();
        // Any multi-PoP AS: its nearest PoP to one of its own PoPs is that PoP.
        for (i, a) in topo.ases.iter().enumerate() {
            if a.pops.len() > 1 {
                let target = db.get(a.pops[1]).coord;
                assert_eq!(topo.nearest_pop(&db, i as u32, &target), a.pops[1]);
                return;
            }
        }
    }

    #[test]
    fn add_as_wires_relationships() {
        let db = CityDb::embedded();
        let mut topo = Topology::generate(&TopoConfig::tiny(), &db, 2);
        let city = db.by_name("Amsterdam").unwrap();
        let idx = topo.add_as(65_000, Tier::Stub, vec![city], vec![0, 1], vec![2]);
        assert_eq!(topo.providers[idx as usize], vec![0, 1]);
        assert!(topo.customers[0].contains(&idx));
        assert!(topo.customers[1].contains(&idx));
        assert!(topo.peers[2].contains(&idx));
    }

    #[test]
    #[should_panic(expected = "at least one PoP")]
    fn add_as_rejects_empty_pops() {
        let mut topo = Topology::default();
        topo.add_as(1, Tier::Stub, vec![], vec![], vec![]);
    }
}

//! The latency model: what an RTT sample looks like on the simulated wire.
//!
//! An observed round-trip time decomposes into:
//!
//! * **propagation** — great-circle distance at the speed of light in fibre,
//!   inflated by a *path stretch* factor capturing routing detours (fibre
//!   does not follow geodesics, and AS paths bounce through exchanges);
//! * **access delay** — per-endpoint last-mile and processing delay, drawn
//!   per host (a DSL target adds milliseconds; a well-connected server adds
//!   tenths);
//! * **jitter** — per-probe queueing noise.
//!
//! The stretch is always ≥ 1, so a simulated RTT never violates the
//! speed-of-light bound the GCD methodology relies on: the feasibility disk
//! of a measured RTT always contains the true responding site. This is the
//! invariant that makes iGreedy *sound* (no false anycast from latency
//! alone) while staying *incomplete* (access delay inflates disk radii, so
//! nearby sites blur together — the paper's regional-anycast false
//! negatives).

use laces_geo::{min_rtt_ms, Coord};

use crate::rng::{self, Key};

/// Deterministic latency sampler (stateless; all variation is keyed).
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    seed: u64,
}

impl LatencyModel {
    /// Create a model for a world seed.
    pub fn new(seed: u64) -> Self {
        LatencyModel { seed }
    }

    /// Synthetic AS-path hop estimate when no routed path is available
    /// (unicast targets probed from unicast VPs): grows with distance.
    pub fn estimate_hops(&self, from: &Coord, to: &Coord, pair_key: Key) -> u16 {
        self.estimate_hops_km(from.gcd_km(to), pair_key)
    }

    /// [`LatencyModel::estimate_hops`] with the great-circle distance
    /// already in hand (the batched wire path caches city-pair distances).
    pub fn estimate_hops_km(&self, d_km: f64, pair_key: Key) -> u16 {
        let base = 2 + (d_km / 2500.0) as u16;
        base + (rng::below(rng::mix(pair_key, 0xA5), 3)) as u16
    }

    /// One-way propagation delay between two points over a path of
    /// `hops` AS hops, in milliseconds. Deterministic per `pair_key`.
    pub fn one_way_ms(&self, from: &Coord, to: &Coord, hops: u16, pair_key: Key) -> f64 {
        self.one_way_ms_km(from.gcd_km(to), hops, pair_key)
    }

    /// [`LatencyModel::one_way_ms`] with the great-circle distance already
    /// in hand. Bit-identical to the coordinate form for the same distance.
    pub fn one_way_ms_km(&self, d_km: f64, hops: u16, pair_key: Key) -> f64 {
        let ideal = min_rtt_ms(d_km) / 2.0;
        // Path stretch: 1.2 base detour plus per-hop inefficiency, plus a
        // stable per-pair component (peering geometry), capped below 2.0.
        let per_pair = rng::unit_f64(rng::mix(rng::mix(pair_key, self.seed), 0x57)) * 0.25;
        let stretch = (1.2 + 0.04 * f64::from(hops.min(12)) + per_pair).min(1.95);
        ideal * stretch
    }

    /// Per-host access/processing delay contribution to an RTT, in
    /// milliseconds. Stable per endpoint (keyed), heavy-tailed: most hosts
    /// add well under a millisecond, a minority add several.
    pub fn access_ms(&self, endpoint_key: Key) -> f64 {
        let u = rng::unit_f64(rng::mix(endpoint_key, self.seed ^ 0xACCE55));
        // Inverse-CDF of a truncated Pareto-ish tail: median ~0.45 ms,
        // p90 ~2.3 ms, max ~8 ms.
        let v = 0.2 / (1.0 - 0.97 * u) - 0.2;
        v.min(8.0) + 0.1
    }

    /// Per-probe queueing jitter in milliseconds (non-negative).
    pub fn jitter_ms(&self, probe_key: Key) -> f64 {
        let g = rng::gaussianish(rng::mix(probe_key, self.seed ^ 0x71772)).abs();
        (g * 0.35).min(5.0)
    }

    /// A full RTT sample for a two-leg path `a -> b -> c` (probe from `a`
    /// answered by a host at `b`, reply received at `c`; for unicast probing
    /// `c == a`).
    #[allow(clippy::too_many_arguments)]
    pub fn rtt_ms(
        &self,
        a: &Coord,
        b: &Coord,
        c: &Coord,
        hops_ab: u16,
        hops_bc: u16,
        src_key: Key,
        target_key: Key,
        probe_key: Key,
    ) -> f64 {
        self.rtt_ms_km(
            a.gcd_km(b),
            b.gcd_km(c),
            hops_ab,
            hops_bc,
            src_key,
            target_key,
            probe_key,
            self.access_ms(src_key),
            self.access_ms(target_key),
        )
    }

    /// [`LatencyModel::rtt_ms`] with the two leg distances and the two
    /// endpoint access delays already in hand — the batched wire path
    /// resolves all four from caches (distances per city pair, access
    /// delays per endpoint), which removes three haversines and two
    /// inverse-CDF draws from the per-probe cost. The arithmetic is kept in
    /// the same order as the coordinate form, so the sample is
    /// bit-identical for identical inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn rtt_ms_km(
        &self,
        d_ab_km: f64,
        d_bc_km: f64,
        hops_ab: u16,
        hops_bc: u16,
        src_key: Key,
        target_key: Key,
        probe_key: Key,
        access_src: f64,
        access_target: f64,
    ) -> f64 {
        let fwd = self.one_way_ms_km(d_ab_km, hops_ab, rng::mix(src_key, target_key));
        let back = self.one_way_ms_km(d_bc_km, hops_bc, rng::mix(target_key, rng::mix(src_key, 1)));
        fwd + back + access_src / 2.0 + access_target + self.jitter_ms(probe_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_geo::{max_one_way_km, Coord};

    fn model() -> LatencyModel {
        LatencyModel::new(7)
    }

    fn ams() -> Coord {
        Coord::new(52.37, 4.90)
    }
    fn syd() -> Coord {
        Coord::new(-33.87, 151.21)
    }

    #[test]
    fn one_way_never_beats_light_in_fibre() {
        let m = model();
        for k in 0..500u64 {
            let t = m.one_way_ms(&ams(), &syd(), 5, k);
            let d = ams().gcd_km(&syd());
            assert!(
                t >= min_rtt_ms(d) / 2.0,
                "propagation faster than fibre light"
            );
        }
    }

    #[test]
    fn rtt_feasibility_disk_contains_true_site() {
        // The GCD soundness invariant: disk radius from a same-path RTT
        // always covers the actual one-way distance.
        let m = model();
        for k in 0..500u64 {
            let rtt = m.rtt_ms(&ams(), &syd(), &ams(), 6, 6, k, k + 1000, k + 2000);
            let radius = max_one_way_km(rtt);
            assert!(
                radius >= ams().gcd_km(&syd()),
                "disk excludes the true site"
            );
        }
    }

    #[test]
    fn zero_distance_rtt_is_small_but_positive() {
        let m = model();
        let rtt = m.rtt_ms(&ams(), &ams(), &ams(), 1, 1, 3, 4, 5);
        assert!(rtt > 0.0);
        assert!(rtt < 25.0, "same-city RTT too large: {rtt}");
    }

    #[test]
    fn determinism() {
        let m = model();
        let a = m.rtt_ms(&ams(), &syd(), &ams(), 4, 4, 1, 2, 3);
        let b = m.rtt_ms(&ams(), &syd(), &ams(), 4, 4, 1, 2, 3);
        assert_eq!(a, b);
        let c = m.rtt_ms(&ams(), &syd(), &ams(), 4, 4, 1, 2, 4);
        assert_ne!(a, c, "probe key should vary jitter");
    }

    #[test]
    fn access_delay_is_bounded_and_heavy_tailed() {
        let m = model();
        let mut over_2ms = 0;
        for k in 0..2000u64 {
            let a = m.access_ms(k);
            assert!((0.0..=8.2).contains(&a));
            if a > 2.0 {
                over_2ms += 1;
            }
        }
        // A minority, but a real one.
        assert!(over_2ms > 50, "tail too thin: {over_2ms}");
        assert!(over_2ms < 700, "tail too fat: {over_2ms}");
    }

    #[test]
    fn hop_estimate_grows_with_distance() {
        let m = model();
        let near = m.estimate_hops(&ams(), &Coord::new(51.51, -0.13), 1);
        let far = m.estimate_hops(&ams(), &syd(), 1);
        assert!(far > near);
    }

    #[test]
    fn jitter_nonnegative() {
        let m = model();
        for k in 0..1000 {
            assert!(m.jitter_ms(k) >= 0.0);
        }
    }
}

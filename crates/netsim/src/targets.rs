//! The probe-able population: every `/24` and `/48` the census can target.

use laces_geo::CityId;
use laces_packet::{Prefix24, Prefix48, PrefixKey};
use serde::{Deserialize, Serialize};

use crate::deployments::{DeploymentId, TempSchedule};
use crate::rng;

/// Index of a target in the world's target table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TargetId(pub u32);

/// What a target *really* is — the simulator's ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// Ordinary unicast host.
    Unicast {
        /// Host location.
        city: CityId,
    },
    /// A prefix of an anycast deployment.
    Anycast {
        /// The deployment announcing this prefix.
        dep: DeploymentId,
    },
    /// Globally announced BGP prefix routed internally to a single unicast
    /// destination (the Microsoft AS 8075 pattern, §5.1.3): probes ingress
    /// at the nearest PoP, responses egress near the destination via one of
    /// two nearby egress networks.
    GlobalUnicast {
        /// Destination host location.
        city: CityId,
        /// The two egress AS indices responses leave through.
        egress: [u32; 2],
    },
    /// A `/24` whose representative (hitlist) address is unicast but whose
    /// low addresses are anycast (§5.6 partial anycast — the NTT public
    /// resolver case).
    PartialAnycast {
        /// Location of the unicast portion.
        city: CityId,
        /// Deployment serving the anycast portion.
        dep: DeploymentId,
    },
    /// Unicast `/48` covered by a less-specific *backing anycast* prefix;
    /// VP networks that filter the `/48` announcement fall back to the
    /// anycast route (Fastly's TE, the paper's IPv6 GCD false positives).
    BackingAnycast {
        /// Location of the unicast host.
        city: CityId,
        /// Deployment of the backing prefix.
        dep: DeploymentId,
    },
}

/// Host octet/IID below which addresses of a partial-anycast prefix are
/// anycast (addresses `< PARTIAL_ANYCAST_HOSTS` replicate; the rest,
/// including every hitlist representative, are unicast).
pub const PARTIAL_ANYCAST_HOSTS: u8 = 6;

/// Host octet used for hitlist representative addresses.
pub const REPRESENTATIVE_HOST: u8 = 77;

/// Per-protocol responsiveness of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resp {
    /// Answers ICMP echo.
    pub icmp: bool,
    /// Answers TCP SYN/ACK with RST.
    pub tcp: bool,
    /// Answers DNS-over-UDP queries.
    pub udp: bool,
}

impl Resp {
    /// Responds to at least one protocol.
    pub fn any(&self) -> bool {
        self.icmp || self.tcp || self.udp
    }

    /// Responds to the given protocol.
    pub fn to(&self, proto: laces_packet::Protocol) -> bool {
        match proto {
            laces_packet::Protocol::Icmp => self.icmp,
            laces_packet::Protocol::Tcp => self.tcp,
            // CHAOS rides on the DNS service.
            laces_packet::Protocol::Udp | laces_packet::Protocol::Chaos => self.udp,
        }
    }
}

/// How a nameserver answers CHAOS `hostname.bind` (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosProfile {
    /// Each anycast site discloses its own identity (RFC 4892 intent).
    PerSite,
    /// `n` co-located servers behind one address answer `auth1..authN` —
    /// multiple CHAOS values at a *single* location (the paper's
    /// weak-indicator finding).
    Colo(u8),
}

/// A prefix hijack event: on `day`, a bogus origin also announces the
/// prefix and captures part of the Internet's traffic toward it (§6 future
/// work: using the census to detect suspected BGP hijacking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hijack {
    /// The day the bogus announcement is live.
    pub day: u32,
    /// The attacker's AS (topology index).
    pub attacker_as: u32,
}

/// A census-probeable prefix with its ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Target {
    /// The `/24` or `/48`.
    pub prefix: PrefixKey,
    /// Hosting AS for unicast-like kinds (`u32::MAX` for pure anycast,
    /// whose responders are the deployment's site ASes).
    pub as_idx: u32,
    /// Ground-truth kind.
    pub kind: TargetKind,
    /// Protocol responsiveness.
    pub resp: Resp,
    /// Present (with a CHAOS profile) if the target is a nameserver.
    pub ns: Option<ChaosProfile>,
    /// Temporary-anycast schedule, if any.
    pub temp: Option<TempSchedule>,
    /// Whether the reverse route re-resolves per packet among equal-cost
    /// alternatives (persistent 2-VP false positives even with simultaneous
    /// probes).
    pub jittery: bool,
    /// A one-day prefix hijack, if this target suffers one.
    pub hijack: Option<Hijack>,
}

impl Target {
    /// Daily availability: targets churn in and out of responsiveness.
    /// Anycast infrastructure is far more stable than the hitlist tail.
    pub fn alive_on(&self, seed: u64, id: TargetId, day: u32) -> bool {
        let p_dead = match self.kind {
            TargetKind::Anycast { .. } => 0.002,
            _ => 0.04,
        };
        rng::unit_f64(rng::key(seed, &[0xA11E, id.0 as u64, day as u64])) >= p_dead
    }

    /// Whether this target behaves as anycast on `day` at the given host
    /// octet/IID (partial anycast is anycast only on its low addresses;
    /// temporary anycast only on active days).
    pub fn is_anycast_at(&self, host: u8, day: u32) -> bool {
        let scheduled = self.temp.is_none_or(|t| t.active_on(day));
        match self.kind {
            TargetKind::Anycast { .. } => scheduled,
            TargetKind::PartialAnycast { .. } => scheduled && host < PARTIAL_ANYCAST_HOSTS,
            _ => false,
        }
    }

    /// Ground-truth: is any address in this prefix anycast on `day`?
    pub fn any_anycast_on(&self, day: u32) -> bool {
        let scheduled = self.temp.is_none_or(|t| t.active_on(day));
        matches!(
            self.kind,
            TargetKind::Anycast { .. } | TargetKind::PartialAnycast { .. }
        ) && scheduled
    }
}

/// Deterministic address assignment for synthetic targets.
///
/// IPv4 `/24`s are laid out consecutively from `20.0.0.0`; IPv6 `/48`s from
/// `2a10::/16`-ish space. Both leave the measurement platform ranges
/// (`198.18.0.0/15`, `2001:db8::/32`) untouched.
pub mod addressing {
    use super::*;

    const V4_BASE: u32 = 20 << 24; // 20.0.0.0
    const V6_BASE: u128 = 0x2A10 << 112;

    /// The `/24` for v4 target number `i`.
    pub fn v4(i: u32) -> Prefix24 {
        Prefix24::from_network(V4_BASE + (i << 8))
    }

    /// The `/48` for v6 target number `i`.
    pub fn v6(i: u32) -> Prefix48 {
        Prefix48::from_network(V6_BASE | (u128::from(i) << 80))
    }

    /// Recover the v4 target number from a prefix, if it is in our range.
    pub fn v4_index(p: Prefix24) -> Option<u32> {
        let n = p.network();
        if n >= V4_BASE {
            Some((n - V4_BASE) >> 8)
        } else {
            None
        }
    }

    /// Recover the v6 target number from a prefix, if it is in our range.
    pub fn v6_index(p: Prefix48) -> Option<u32> {
        let n = p.network();
        if n >= V6_BASE {
            Some(((n - V6_BASE) >> 80) as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_is_bijective() {
        for i in [0u32, 1, 255, 256, 400_000] {
            assert_eq!(addressing::v4_index(addressing::v4(i)), Some(i));
            assert_eq!(addressing::v6_index(addressing::v6(i)), Some(i));
        }
        assert_ne!(addressing::v4(1), addressing::v4(2));
    }

    #[test]
    fn v4_addresses_avoid_platform_range() {
        let p = addressing::v4(500_000);
        let net = p.network() >> 24;
        assert_ne!(net, 198, "collided with measurement platform space");
    }

    #[test]
    fn partial_anycast_is_anycast_only_on_low_hosts() {
        let t = Target {
            prefix: PrefixKey::V4(addressing::v4(0)),
            as_idx: 0,
            kind: TargetKind::PartialAnycast {
                city: CityId(0),
                dep: DeploymentId(0),
            },
            resp: Resp {
                icmp: true,
                tcp: false,
                udp: false,
            },
            ns: None,
            temp: None,
            jittery: false,
            hijack: None,
        };
        assert!(t.is_anycast_at(0, 0));
        assert!(t.is_anycast_at(PARTIAL_ANYCAST_HOSTS - 1, 0));
        assert!(!t.is_anycast_at(PARTIAL_ANYCAST_HOSTS, 0));
        assert!(!t.is_anycast_at(REPRESENTATIVE_HOST, 0));
        assert!(t.any_anycast_on(0));
    }

    #[test]
    fn temporary_anycast_follows_schedule() {
        let t = Target {
            prefix: PrefixKey::V4(addressing::v4(1)),
            as_idx: 0,
            kind: TargetKind::Anycast {
                dep: DeploymentId(1),
            },
            resp: Resp {
                icmp: true,
                tcp: false,
                udp: false,
            },
            ns: None,
            temp: Some(TempSchedule {
                period: 4,
                active: 1,
                phase: 0,
            }),
            jittery: false,
            hijack: None,
        };
        assert!(t.is_anycast_at(REPRESENTATIVE_HOST, 0));
        assert!(!t.is_anycast_at(REPRESENTATIVE_HOST, 1));
        assert!(t.is_anycast_at(REPRESENTATIVE_HOST, 4));
        assert!(!t.any_anycast_on(2));
    }

    #[test]
    fn unicast_is_never_anycast() {
        let t = Target {
            prefix: PrefixKey::V4(addressing::v4(2)),
            as_idx: 3,
            kind: TargetKind::Unicast { city: CityId(0) },
            resp: Resp {
                icmp: true,
                tcp: true,
                udp: false,
            },
            ns: None,
            temp: None,
            jittery: true,
            hijack: None,
        };
        assert!(!t.is_anycast_at(0, 0));
        assert!(!t.any_anycast_on(0));
    }

    #[test]
    fn aliveness_is_deterministic_and_mostly_up() {
        let t = Target {
            prefix: PrefixKey::V4(addressing::v4(3)),
            as_idx: 3,
            kind: TargetKind::Unicast { city: CityId(0) },
            resp: Resp {
                icmp: true,
                tcp: false,
                udp: false,
            },
            ns: None,
            temp: None,
            jittery: false,
            hijack: None,
        };
        let mut up = 0;
        for day in 0..500 {
            let a = t.alive_on(9, TargetId(3), day);
            assert_eq!(a, t.alive_on(9, TargetId(3), day));
            if a {
                up += 1;
            }
        }
        assert!((440..=490).contains(&up), "uptime {up}/500");
    }

    #[test]
    fn resp_protocol_dispatch() {
        let r = Resp {
            icmp: true,
            tcp: false,
            udp: true,
        };
        assert!(r.to(laces_packet::Protocol::Icmp));
        assert!(!r.to(laces_packet::Protocol::Tcp));
        assert!(r.to(laces_packet::Protocol::Udp));
        assert!(r.to(laces_packet::Protocol::Chaos));
        assert!(r.any());
        assert!(!Resp::default().any());
    }
}

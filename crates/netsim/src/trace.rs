//! Forward traceroute (the scamper primitive Ark provides).
//!
//! §5.2 and §6 point at traceroute as the way to *improve enumeration*
//! beyond what latency disks can distinguish: a traceroute from each VP
//! terminates inside the catchment site actually serving that VP, so the
//! set of distinct terminal networks across VPs enumerates sites — even
//! co-located ones GCD cannot separate. [`World::traceroute`] walks the
//! valley-free AS path the routing engine computed, yielding per-hop
//! locations and cumulative RTTs.

use std::net::IpAddr;
use std::sync::Arc;

use laces_geo::CityId;
use laces_packet::PrefixKey;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::platform::PlatformId;
use crate::rng;
use crate::routing::{self, Routes};
use crate::targets::TargetKind;
use crate::world::World;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHop {
    /// Topology index of the hop's AS.
    pub as_idx: u32,
    /// Display ASN.
    pub asn: u32,
    /// The PoP metro where the path enters this AS.
    pub city: CityId,
    /// Cumulative RTT at this hop, in milliseconds.
    pub rtt_ms: f64,
}

/// Cache of destination-rooted route tables (traceroute is an analysis
/// primitive used on handfuls of targets; the cache is bounded).
#[derive(Default)]
pub(crate) struct TraceCache {
    routes: std::collections::BTreeMap<u32, Arc<Routes>>,
}

static TRACE_CACHE_LIMIT: usize = 512;

// A process-wide cache keyed by (world seed, dst AS) would leak across
// worlds; keep it per call-site simple instead: worlds own their cache.
pub(crate) fn dst_routes(world: &World, cache: &Mutex<TraceCache>, dst_as: u32) -> Arc<Routes> {
    if let Some(r) = cache.lock().routes.get(&dst_as) {
        return Arc::clone(r);
    }
    let r = Arc::new(routing::compute(&world.topo, &[dst_as]));
    let mut guard = cache.lock();
    if guard.routes.len() < TRACE_CACHE_LIMIT {
        guard.routes.insert(dst_as, Arc::clone(&r));
    }
    r
}

impl World {
    /// Run a forward traceroute from VP `vp` of a platform toward `dst`.
    ///
    /// Returns the hop list from the VP's AS (exclusive) to the responding
    /// AS (inclusive); empty when the destination is unknown, down, or
    /// unreachable. For anycast destinations the trace terminates at the
    /// catchment site serving this VP — the property traceroute-assisted
    /// enumeration exploits.
    pub fn traceroute(
        &self,
        platform: PlatformId,
        vp: usize,
        dst: IpAddr,
        day: u32,
    ) -> Vec<TraceHop> {
        let Some(tid) = self.lookup(PrefixKey::of(dst)) else {
            return Vec::new();
        };
        let target = self.target(tid);
        if !target.alive_on(self.cfg.seed, tid, day) {
            return Vec::new();
        }
        let src_as = self.platform(platform).vp_as(vp);
        let src_coord = self.vantage_coord(platform, vp);

        // Resolve the responder exactly as the wire does.
        let host = match dst {
            IpAddr::V4(a) => a.octets()[3],
            IpAddr::V6(a) => a.octets()[15],
        };
        let responder_as = if target.is_anycast_at(host, day) {
            let dep = match target.kind {
                TargetKind::Anycast { dep }
                | TargetKind::PartialAnycast { dep, .. }
                | TargetKind::BackingAnycast { dep, .. } => dep,
                _ => unreachable!("anycast behaviour implies a deployment"),
            };
            match self.forward_site(dep, src_as, day) {
                Some((site, _)) => self.deployment(dep).sites[site].as_idx,
                None => return Vec::new(),
            }
        } else {
            target.as_idx
        };

        let routes = dst_routes(self, self.trace_cache(), responder_as);
        let path = routes.path_from(src_as);
        if path.is_empty() {
            return Vec::new();
        }

        // Per-hop PoPs and cumulative latency.
        let mut hops = Vec::with_capacity(path.len().saturating_sub(1));
        let mut prev_city_coord = src_coord;
        let mut rtt = self.latency.access_ms(rng::key(
            self.cfg.seed,
            &[0x52C, platform.0 as u64, vp as u64],
        ));
        for (i, &hop_as) in path.iter().enumerate().skip(1) {
            // Packets enter the next AS at its PoP nearest to where they are.
            let city = self.topo.nearest_pop(&self.db, hop_as, &prev_city_coord);
            let coord = self.db.get(city).coord;
            let pair_key = rng::key(self.cfg.seed, &[0x72AC, hop_as as u64, vp as u64]);
            rtt += 2.0
                * self
                    .latency
                    .one_way_ms(&prev_city_coord, &coord, 1, pair_key)
                + self.latency.jitter_ms(rng::mix(pair_key, i as u64));
            hops.push(TraceHop {
                as_idx: hop_as,
                asn: self.topo.ases[hop_as as usize].asn,
                city,
                rtt_ms: rtt,
            });
            prev_city_coord = coord;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    fn addr_of(w: &World, i: usize) -> IpAddr {
        match w.targets[i].prefix {
            PrefixKey::V4(p) => IpAddr::V4(p.addr(77)),
            PrefixKey::V6(p) => IpAddr::V6(p.addr(77)),
        }
    }

    #[test]
    fn unicast_trace_terminates_at_host_as() {
        let w = world();
        let ark = w.std_platforms.ark;
        let mut checked = 0;
        for (i, t) in w.targets.iter().enumerate() {
            if let TargetKind::Unicast { .. } = t.kind {
                if !t.prefix.is_v4() {
                    continue;
                }
                let hops = w.traceroute(ark, 0, addr_of(&w, i), 0);
                if hops.is_empty() {
                    continue; // down that day
                }
                assert_eq!(
                    hops.last().unwrap().as_idx,
                    t.as_idx,
                    "trace ended in the wrong AS"
                );
                // RTTs are cumulative and positive.
                let mut prev = 0.0;
                for h in &hops {
                    assert!(h.rtt_ms >= prev, "RTT not monotone");
                    prev = h.rtt_ms;
                }
                checked += 1;
                if checked > 40 {
                    break;
                }
            }
        }
        assert!(checked > 20);
    }

    #[test]
    fn anycast_traces_terminate_at_catchment_sites() {
        let w = world();
        let ark = w.std_platforms.ark;
        // A wide deployment: traces from different VPs end at different
        // site ASes, all belonging to the deployment.
        let (i, dep) = w
            .targets
            .iter()
            .enumerate()
            .find_map(|(i, t)| match t.kind {
                TargetKind::Anycast { dep }
                    if w.deployment(dep).n_distinct_cities() >= 8
                        && t.temp.is_none()
                        && t.prefix.is_v4() =>
                {
                    Some((i, dep))
                }
                _ => None,
            })
            .expect("wide deployment exists");
        let site_ases: std::collections::BTreeSet<u32> =
            w.deployment(dep).sites.iter().map(|s| s.as_idx).collect();
        let mut terminals = std::collections::BTreeSet::new();
        for vp in 0..w.platform(ark).n_vps() {
            let hops = w.traceroute(ark, vp, addr_of(&w, i), 0);
            if let Some(last) = hops.last() {
                assert!(
                    site_ases.contains(&last.as_idx),
                    "trace ended outside the deployment"
                );
                terminals.insert(last.as_idx);
            }
        }
        assert!(
            terminals.len() >= 2,
            "traces should reach multiple sites, got {terminals:?}"
        );
    }

    #[test]
    fn traceroute_is_deterministic() {
        let w = world();
        let ark = w.std_platforms.ark;
        let dst = addr_of(&w, 0);
        assert_eq!(w.traceroute(ark, 3, dst, 0), w.traceroute(ark, 3, dst, 0));
    }

    #[test]
    fn unknown_destination_yields_empty_trace() {
        let w = world();
        assert!(w
            .traceroute(w.std_platforms.ark, 0, "9.9.9.9".parse().unwrap(), 0)
            .is_empty());
    }
}

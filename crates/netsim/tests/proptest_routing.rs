//! Property-based tests for the Gao-Rexford routing engine: valley-free
//! invariants must hold on arbitrary generated topologies.

use laces_geo::CityDb;
use laces_netsim::routing::{compute, RouteClass};
use laces_netsim::topology::{Tier, TopoConfig, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = (Topology, u64)> {
    (1u64..500, 2usize..8, 5usize..40, 10usize..80).prop_map(|(seed, t1, tr, st)| {
        let db = CityDb::embedded();
        let topo = Topology::generate(
            &TopoConfig {
                n_tier1: t1,
                n_transit: tr,
                n_stub: st,
            },
            &db,
            seed,
        );
        (topo, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Origins are always reachable at distance zero from themselves, and
    /// every reachable AS has a consistent (class, dist, origins) triple.
    #[test]
    fn route_state_is_consistent((topo, seed) in arb_topology()) {
        let n = topo.len() as u32;
        let origins: Vec<u32> = (0..3).map(|i| (seed.wrapping_mul(i + 1) % u64::from(n)) as u32).collect();
        let r = compute(&topo, &origins);
        for &o in &origins {
            prop_assert_eq!(r.dist[o as usize], 0);
            prop_assert!(!r.origins[o as usize].is_empty());
        }
        for x in 0..topo.len() {
            match r.class[x] {
                RouteClass::Unreachable => {
                    prop_assert_eq!(r.dist[x], u16::MAX);
                    prop_assert!(r.origins[x].is_empty());
                }
                _ => {
                    prop_assert!(r.dist[x] != u16::MAX);
                    prop_assert!(!r.origins[x].is_empty());
                    // Every tie member is a valid origin index.
                    for &t in r.origins[x].as_slice() {
                        prop_assert!((t as usize) < origins.len());
                    }
                }
            }
        }
    }

    /// Everyone can reach a tier-1 origin: tier-1s peer in a clique and all
    /// customer trees hang below them.
    #[test]
    fn tier1_origin_reaches_everyone((topo, _seed) in arb_topology()) {
        let r = compute(&topo, &[0]);
        for x in 0..topo.len() {
            prop_assert!(
                r.class[x] != RouteClass::Unreachable,
                "AS {} unreachable from tier-1 origin", x
            );
        }
    }

    /// Adding origins never degrades any AS's route *class* (more routes
    /// can only improve the best preference). Note that path *length* is
    /// NOT monotone under Gao-Rexford: an intermediate AS may switch to a
    /// newly-available customer-class route that is longer in hops, which
    /// lengthens its customers' paths — classic BGP non-monotonicity, so we
    /// deliberately do not assert it.
    #[test]
    fn more_origins_never_degrade_class((topo, seed) in arb_topology()) {
        let n = topo.len() as u32;
        let o1 = vec![(seed % u64::from(n)) as u32];
        let mut o2 = o1.clone();
        o2.push(((seed / 7) % u64::from(n)) as u32);
        let r1 = compute(&topo, &o1);
        let r2 = compute(&topo, &o2);
        let rank = |c: RouteClass| match c {
            RouteClass::Customer => 0u8,
            RouteClass::Peer => 1,
            RouteClass::Provider => 2,
            RouteClass::Unreachable => 3,
        };
        for x in 0..topo.len() {
            prop_assert!(rank(r2.class[x]) <= rank(r1.class[x]), "class degraded at {}", x);
        }
    }

    /// Valley-free: a customer route at X implies one of X's customers has
    /// a customer route (or is the origin) one hop shorter.
    #[test]
    fn customer_routes_decompose((topo, seed) in arb_topology()) {
        let n = topo.len() as u32;
        let origin = (seed % u64::from(n)) as u32;
        let r = compute(&topo, &[origin]);
        for x in 0..topo.len() {
            if r.class[x] == RouteClass::Customer && r.dist[x] > 0 {
                let ok = topo.customers[x].iter().any(|&c| {
                    (r.class[c as usize] == RouteClass::Customer || c == origin)
                        && r.dist[c as usize] + 1 == r.dist[x]
                });
                prop_assert!(ok, "customer route at {} has no supporting customer", x);
            }
        }
    }

    /// Stubs (no customers) can never have customer-learned routes unless
    /// they are the origin.
    #[test]
    fn stubs_have_no_customer_routes((topo, seed) in arb_topology()) {
        let n = topo.len() as u32;
        let origin = (seed % u64::from(n)) as u32;
        let r = compute(&topo, &[origin]);
        for (x, node) in topo.ases.iter().enumerate() {
            if node.tier == Tier::Stub && topo.customers[x].is_empty() && x as u32 != origin {
                prop_assert!(
                    r.class[x] != RouteClass::Customer,
                    "stub {} claims a customer route", x
                );
            }
        }
    }
}

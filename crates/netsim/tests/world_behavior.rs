//! Behavioural tests for the generated world and the simulated wire: the
//! phenomena the census methodology depends on must actually occur.

use std::net::IpAddr;

use laces_netsim::wire::{MeasurementCtx, ProbeSource};
use laces_netsim::{platform, TargetKind, World, WorldConfig};
use laces_packet::probe::{build_probe, parse_reply, ProbeEncoding, ProbeMeta, Protocol};
use laces_packet::PrefixKey;

fn tiny_world() -> World {
    World::generate(WorldConfig::tiny())
}

fn target_addr(world: &World, id: laces_netsim::TargetId, host: u8) -> IpAddr {
    match world.target(id).prefix {
        PrefixKey::V4(p) => IpAddr::V4(p.addr(host)),
        PrefixKey::V6(p) => IpAddr::V6(p.addr(u64::from(host))),
    }
}

/// Probe one target from every worker of an anycast platform; return the
/// set of receiving sites.
fn receiving_sites(
    world: &World,
    pid: laces_netsim::PlatformId,
    tid: laces_netsim::TargetId,
    proto: Protocol,
    day: u32,
) -> Vec<usize> {
    let n = world.platform(pid).n_vps();
    let ctx = MeasurementCtx {
        id: 42,
        day,
        span_ms: (n as u64 - 1) * 1000,
    };
    let dst = target_addr(world, tid, 77);
    let src = if dst.is_ipv4() {
        platform::anycast_src_v4(pid)
    } else {
        platform::anycast_src_v6(pid)
    };
    let mut sites: Vec<usize> = Vec::new();
    for w in 0..n {
        let meta = ProbeMeta {
            measurement_id: 42,
            worker_id: w as u16,
            tx_time_ms: w as u64 * 1000,
        };
        let pkt = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
        let d = world
            .send_probe(
                ProbeSource::Worker {
                    platform: pid,
                    site: w,
                },
                &pkt,
                w as u64 * 1000,
                0,
                &ctx,
            )
            .expect("probe bytes are valid");
        if let Some(d) = d {
            // The reply must parse and attribute back to the sending worker.
            let info = parse_reply(&d.packet, 42, d.rx_time_ms).expect("reply parses");
            assert_eq!(info.tx_worker, Some(w as u16));
            sites.push(d.rx_index);
        }
    }
    sites.sort_unstable();
    sites.dedup();
    sites
}

#[test]
fn world_generation_is_deterministic() {
    let a = tiny_world();
    let b = tiny_world();
    assert_eq!(a.n_targets(), b.n_targets());
    assert_eq!(a.topo.len(), b.topo.len());
    for (ta, tb) in a.targets.iter().zip(&b.targets) {
        assert_eq!(ta.prefix, tb.prefix);
        assert_eq!(ta.kind, tb.kind);
        assert_eq!(ta.resp, tb.resp);
    }
}

/// Derived routing state must be identical across two independent
/// generations of the same config, regardless of the order the lazy
/// caches were populated in. Regression test for the ordered-map
/// conversion of the world caches (platform routes, deployment
/// catchments, traceroute routes) and the bench artifact cache keys.
#[test]
fn derived_state_is_identical_across_reruns() {
    let a = tiny_world();
    let b = tiny_world();

    // Populate the caches in opposite orders: lookups must not depend on
    // insertion order.
    let pids: Vec<_> = (0..a.platforms.len() as u16)
        .map(laces_netsim::PlatformId)
        .filter(|&pid| a.platform(pid).is_anycast())
        .collect();
    for &pid in &pids {
        a.platform_routes(pid);
    }
    for &pid in pids.iter().rev() {
        b.platform_routes(pid);
    }
    for &pid in &pids {
        let ra = a.platform_routes(pid);
        let rb = b.platform_routes(pid);
        assert_eq!(ra.dist, rb.dist, "platform {pid:?} route distances");
        assert_eq!(
            format!("{:?}", ra.origins),
            format!("{:?}", rb.origins),
            "platform {pid:?} origin tie-sets"
        );
    }

    let dids: Vec<_> = (0..a.deployments.len() as u32)
        .map(laces_netsim::DeploymentId)
        .collect();
    for &did in dids.iter().rev() {
        a.dep_catchment(did);
    }
    for &did in &dids {
        assert_eq!(
            format!("{:?}", a.dep_catchment(did).per_vp),
            format!("{:?}", b.dep_catchment(did).per_vp),
            "deployment {did:?} catchment"
        );
    }

    // forward_site goes through the vp_as_pos index; spot-check every
    // deployment from every registered VP AS on two days.
    for &did in &dids {
        for &vp_as in a.vp_ases() {
            for day in [0, 7] {
                assert_eq!(
                    a.forward_site(did, vp_as, day),
                    b.forward_site(did, vp_as, day),
                    "forward_site({did:?}, {vp_as}, {day})"
                );
            }
        }
    }

    // Traceroutes exercise the destination-route cache; compare full hop
    // lists for a sample of targets from the first platform's first VP.
    let pid = pids[0];
    for tid in (0..a.n_targets()).step_by(a.n_targets() / 16 + 1) {
        let dst = target_addr(&a, laces_netsim::TargetId(tid as u32), 9);
        let ha = a.traceroute(pid, 0, dst, 3);
        let hb = b.traceroute(pid, 0, dst, 3);
        assert_eq!(format!("{ha:?}"), format!("{hb:?}"), "traceroute to {dst}");
    }
}

#[test]
fn population_counts_match_config() {
    let w = tiny_world();
    let cfg = &w.cfg;
    let unicast = w
        .targets
        .iter()
        .filter(|t| matches!(t.kind, TargetKind::Unicast { .. }))
        .count();
    let global = w
        .targets
        .iter()
        .filter(|t| matches!(t.kind, TargetKind::GlobalUnicast { .. }))
        .count();
    let partial = w
        .targets
        .iter()
        .filter(|t| matches!(t.kind, TargetKind::PartialAnycast { .. }))
        .count();
    assert_eq!(
        unicast,
        cfg.unicast_24s + cfg.unresponsive_24s + cfg.unicast_48s + cfg.unresponsive_48s
    );
    assert_eq!(global, cfg.global_unicast_24s + cfg.global_unicast_48s);
    assert_eq!(partial, cfg.partial_stable_24s + cfg.partial_temp_24s);
    let jittery = w.targets.iter().filter(|t| t.jittery).count();
    assert_eq!(jittery, cfg.jittery_24s + cfg.jittery_48s);
}

#[test]
fn lookup_is_inverse_of_generation() {
    let w = tiny_world();
    for (i, t) in w.targets.iter().enumerate() {
        let id = w.lookup(t.prefix).expect("every generated prefix resolves");
        assert_eq!(id.0 as usize, i);
    }
    // Unknown prefixes do not resolve.
    assert!(w
        .lookup(PrefixKey::of("9.9.9.9".parse().unwrap()))
        .is_none());
}

#[test]
fn unicast_targets_respond_to_one_site() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let mut checked = 0;
    for (i, t) in w.targets.iter().enumerate() {
        if let TargetKind::Unicast { .. } = t.kind {
            if t.resp.icmp && !t.jittery && t.prefix.is_v4() {
                let sites =
                    receiving_sites(&w, pid, laces_netsim::TargetId(i as u32), Protocol::Icmp, 0);
                // Responses may be empty (churn/loss) but when present, a
                // stable unicast target lands on at most 2 sites (1 plus a
                // possible rare long-window flip with 31 s span).
                assert!(
                    sites.len() <= 2,
                    "unicast target {i} hit {} sites",
                    sites.len()
                );
                checked += 1;
                if checked > 120 {
                    break;
                }
            }
        }
    }
    assert!(checked > 50, "too few unicast targets exercised");
}

#[test]
fn hypergiant_anycast_reaches_many_sites() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    // Find a Cloudflare-style prefix: deployment with the most sites.
    let (dep_id, _) = w
        .deployments
        .iter()
        .enumerate()
        .max_by_key(|(_, d)| d.n_sites())
        .unwrap();
    let tid = w
        .targets
        .iter()
        .position(|t| {
            matches!(t.kind, TargetKind::Anycast { dep } if dep.0 == dep_id as u32)
                && t.resp.icmp
                && t.prefix.is_v4()
        })
        .expect("hypergiant has an ICMP-responsive v4 prefix");
    let sites = receiving_sites(
        &w,
        pid,
        laces_netsim::TargetId(tid as u32),
        Protocol::Icmp,
        0,
    );
    assert!(
        sites.len() >= 3,
        "hypergiant prefix only reached {} sites",
        sites.len()
    );
}

#[test]
fn global_unicast_reaches_at_most_two_sites_consistently() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let mut seen_multi = 0;
    for (i, t) in w.targets.iter().enumerate() {
        if matches!(t.kind, TargetKind::GlobalUnicast { .. }) && t.prefix.is_v4() {
            let s0 = receiving_sites(&w, pid, laces_netsim::TargetId(i as u32), Protocol::Icmp, 0);
            assert!(s0.len() <= 2, "global unicast at {} sites", s0.len());
            if s0.len() == 2 {
                seen_multi += 1;
                // And it is *stable*: same sites on a re-measurement.
                let s1 =
                    receiving_sites(&w, pid, laces_netsim::TargetId(i as u32), Protocol::Icmp, 0);
                assert_eq!(s0, s1);
            }
        }
    }
    assert!(
        seen_multi > 5,
        "expected a population of 2-VP global-unicast targets, saw {seen_multi}"
    );
}

#[test]
fn partial_anycast_unicast_at_representative_anycast_at_low_hosts() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let (i, t) = w
        .targets
        .iter()
        .enumerate()
        .find(|(_, t)| {
            matches!(t.kind, TargetKind::PartialAnycast { .. }) && t.temp.is_none() && t.resp.icmp
        })
        .expect("world has stable partial anycast");
    assert!(t.is_anycast_at(0, 0));
    assert!(!t.is_anycast_at(laces_netsim::targets::REPRESENTATIVE_HOST, 0));
    let _ = i;

    // Probing host .0 from two different workers can reach different VPs;
    // probing the representative host always behaves unicast. We verify via
    // ground truth here; wire-level divergence is covered by the census
    // integration tests.
    let _ = pid;
}

#[test]
fn temporary_anycast_toggles_across_days() {
    let w = tiny_world();
    let t = w
        .targets
        .iter()
        .find(|t| t.temp.is_some() && matches!(t.kind, TargetKind::Anycast { .. }))
        .expect("world has temporary anycast");
    let days: Vec<bool> = (0..12).map(|d| t.any_anycast_on(d)).collect();
    assert!(days.iter().any(|&x| x));
    assert!(days.iter().any(|&x| !x));
}

#[test]
fn unresponsive_targets_never_reply() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let ctx = MeasurementCtx {
        id: 1,
        day: 0,
        span_ms: 0,
    };
    let mut checked = 0;
    for (i, t) in w.targets.iter().enumerate() {
        if !t.resp.any() {
            let dst = target_addr(&w, laces_netsim::TargetId(i as u32), 77);
            let src = if dst.is_ipv4() {
                platform::anycast_src_v4(pid)
            } else {
                platform::anycast_src_v6(pid)
            };
            for proto in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp] {
                let meta = ProbeMeta {
                    measurement_id: 1,
                    worker_id: 0,
                    tx_time_ms: 0,
                };
                let pkt = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
                let d = w
                    .send_probe(
                        ProbeSource::Worker {
                            platform: pid,
                            site: 0,
                        },
                        &pkt,
                        0,
                        0,
                        &ctx,
                    )
                    .unwrap();
                assert!(d.is_none(), "unresponsive target {i} answered {proto}");
            }
            checked += 1;
            if checked > 30 {
                break;
            }
        }
    }
    assert!(checked > 10);
}

#[test]
fn vp_probing_returns_to_same_vp_with_plausible_rtt() {
    let w = tiny_world();
    let ark = w.std_platforms.ark;
    let ctx = MeasurementCtx {
        id: 7,
        day: 0,
        span_ms: 0,
    };
    let mut checked = 0;
    for (i, t) in w.targets.iter().enumerate() {
        if t.resp.icmp && t.prefix.is_v4() {
            let dst = target_addr(&w, laces_netsim::TargetId(i as u32), 77);
            for vp in [0usize, 5, 11] {
                let src = platform::vp_src_v4(ark, vp);
                let meta = ProbeMeta {
                    measurement_id: 7,
                    worker_id: vp as u16,
                    tx_time_ms: 100,
                };
                let pkt = build_probe(src, dst, Protocol::Icmp, &meta, ProbeEncoding::PerWorker);
                if let Some(d) = w
                    .send_probe(ProbeSource::Vp { platform: ark, vp }, &pkt, 100, 100, &ctx)
                    .unwrap()
                {
                    assert_eq!(d.rx_index, vp, "reply went to a different VP");
                    assert!(d.rtt_ms > 0.0 && d.rtt_ms < 500.0, "rtt {}", d.rtt_ms);
                    assert!(d.rx_time_ms > 100);
                }
            }
            checked += 1;
            if checked > 60 {
                break;
            }
        }
    }
    assert!(checked > 30);
}

#[test]
fn chaos_identities_distinguish_anycast_sites() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let n = w.platform(pid).n_vps();
    // An anycast nameserver exposes different identities at different sites.
    let (i, _) = w
        .targets
        .iter()
        .enumerate()
        .find(|(_, t)| {
            matches!(t.ns, Some(laces_netsim::ChaosProfile::PerSite))
                && t.resp.udp
                && t.prefix.is_v4()
                && matches!(t.kind, TargetKind::Anycast { dep } if w.deployment(dep).n_sites() >= 5)
        })
        .expect("anycast nameserver exists");
    let dst = target_addr(&w, laces_netsim::TargetId(i as u32), 77);
    let src = platform::anycast_src_v4(pid);
    let ctx = MeasurementCtx {
        id: 9,
        day: 0,
        span_ms: (n as u64 - 1) * 1000,
    };
    let mut identities = std::collections::HashSet::new();
    for wkr in 0..n {
        let meta = ProbeMeta {
            measurement_id: 9,
            worker_id: wkr as u16,
            tx_time_ms: wkr as u64,
        };
        let pkt = build_probe(src, dst, Protocol::Chaos, &meta, ProbeEncoding::PerWorker);
        if let Some(d) = w
            .send_probe(
                ProbeSource::Worker {
                    platform: pid,
                    site: wkr,
                },
                &pkt,
                wkr as u64,
                0,
                &ctx,
            )
            .unwrap()
        {
            let info = parse_reply(&d.packet, 9, d.rx_time_ms).unwrap();
            if let Some(id) = info.chaos_identity {
                identities.insert(id);
            }
        }
    }
    assert!(identities.len() >= 2, "CHAOS identities: {identities:?}");
}

#[test]
fn wrong_protocol_goes_unanswered() {
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let ctx = MeasurementCtx {
        id: 3,
        day: 0,
        span_ms: 0,
    };
    let (i, _) = w
        .targets
        .iter()
        .enumerate()
        .find(|(_, t)| t.resp.icmp && !t.resp.tcp && t.prefix.is_v4())
        .unwrap();
    let dst = target_addr(&w, laces_netsim::TargetId(i as u32), 77);
    let src = platform::anycast_src_v4(pid);
    let meta = ProbeMeta {
        measurement_id: 3,
        worker_id: 0,
        tx_time_ms: 0,
    };
    let pkt = build_probe(src, dst, Protocol::Tcp, &meta, ProbeEncoding::PerWorker);
    assert!(w
        .send_probe(
            ProbeSource::Worker {
                platform: pid,
                site: 0
            },
            &pkt,
            0,
            0,
            &ctx
        )
        .unwrap()
        .is_none());
}

#[test]
fn flips_increase_with_probing_span() {
    // Statistical check on the wire (not just the probability function):
    // measure how many stable unicast targets answer at >1 site under a
    // short vs a very long probing window.
    let w = tiny_world();
    let pid = w.std_platforms.production;
    let n = w.platform(pid).n_vps();
    let count_multi = |span_ms: u64, mid: u32| -> usize {
        let ctx = MeasurementCtx {
            id: mid,
            day: 0,
            span_ms,
        };
        let mut multi = 0;
        for (i, t) in w.targets.iter().enumerate() {
            if !matches!(t.kind, TargetKind::Unicast { .. })
                || !t.resp.icmp
                || t.jittery
                || !t.prefix.is_v4()
            {
                continue;
            }
            let dst = target_addr(&w, laces_netsim::TargetId(i as u32), 77);
            let src = platform::anycast_src_v4(pid);
            let mut sites = std::collections::HashSet::new();
            for wkr in 0..n {
                let tx = wkr as u64 * (span_ms / (n as u64 - 1).max(1));
                let meta = ProbeMeta {
                    measurement_id: mid,
                    worker_id: wkr as u16,
                    tx_time_ms: tx,
                };
                let pkt = build_probe(src, dst, Protocol::Icmp, &meta, ProbeEncoding::PerWorker);
                if let Some(d) = w
                    .send_probe(
                        ProbeSource::Worker {
                            platform: pid,
                            site: wkr,
                        },
                        &pkt,
                        tx,
                        0,
                        &ctx,
                    )
                    .unwrap()
                {
                    sites.insert(d.rx_index);
                }
            }
            if sites.len() > 1 {
                multi += 1;
            }
        }
        multi
    };
    let short = count_multi(31_000, 100);
    let long = count_multi(31_000 * 780, 101);
    assert!(
        long > short * 5,
        "flip FPs: short span {short}, long span {long}"
    );
}

//! Hitlist construction (paper §4.2.3).
//!
//! The census probes one representative address per IPv4 `/24` and IPv6
//! `/48`. The paper sources these from:
//!
//! * **ISI's IPv4 hitlist** — ping-responsive addresses ranked per `/24`;
//! * **OpenINTEL nameserver addresses** — preferred over the ISI pick for
//!   a `/24` when present, to maximise the chance of hitting an active DNS
//!   server in the DNS census;
//! * **TUM's IPv6 hitlist plus OpenINTEL AAAA records** — for the IPv6
//!   census (coverage-limited: the paper repeatedly hits `/48`s its hitlist
//!   misses, and we model that gap).
//!
//! Inside the simulation the "scan" that discovers prefixes enumerates the
//! world's target table, which corresponds to ISI's (near-complete)
//! coverage of the announced IPv4 space; the IPv6 hitlist deliberately
//! misses a few percent of prefixes, matching the paper's observation that
//! IPv6 results are hitlist-limited (§5.3.2, §5.8).

#![forbid(unsafe_code)]

use std::net::IpAddr;

use laces_netsim::rng;
use laces_netsim::{TargetId, World};
use laces_packet::{IpVersion, PrefixKey};
use serde::{Deserialize, Serialize};

/// Where a hitlist entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// ISI-style ping scan ranking (IPv4).
    PingScan,
    /// OpenINTEL-style authoritative nameserver address (preferred).
    Nameserver,
    /// TUM-style IPv6 hitlist.
    V6Hitlist,
}

/// One hitlist row: the representative address chosen for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// The census prefix.
    pub prefix: PrefixKey,
    /// The representative address probed.
    pub addr: IpAddr,
    /// Provenance.
    pub source: Source,
}

/// A hitlist: one representative per covered prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hitlist {
    /// Address family.
    pub family: IpVersion,
    /// Entries, in prefix order.
    pub entries: Vec<Entry>,
}

/// Host octet the ping-scan ranking picks (the address that historically
/// answered probes).
pub const PING_HOST: u8 = laces_netsim::targets::REPRESENTATIVE_HOST;

/// Host octet where nameservers live in the simulation.
pub const NS_HOST: u8 = 53;

/// Fraction of IPv6 prefixes the hitlist actually covers.
pub const V6_COVERAGE: f64 = 0.97;

impl Hitlist {
    /// Just the probe addresses, in order.
    pub fn addresses(&self) -> Vec<IpAddr> {
        self.entries.iter().map(|e| e.addr).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the hitlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a prefix is covered.
    pub fn covers(&self, prefix: PrefixKey) -> bool {
        self.entries
            .binary_search_by_key(&prefix, |e| e.prefix)
            .is_ok()
    }
}

fn v4_targets(world: &World) -> impl Iterator<Item = (TargetId, &laces_netsim::Target)> {
    world.targets[..world.n_v4]
        .iter()
        .enumerate()
        .map(|(i, t)| (TargetId(i as u32), t))
}

fn v6_targets(world: &World) -> impl Iterator<Item = (TargetId, &laces_netsim::Target)> {
    world.targets[world.n_v4..]
        .iter()
        .enumerate()
        .map(move |(i, t)| (TargetId((world.n_v4 + i) as u32), t))
}

/// The ISI-style IPv4 hitlist: every known `/24`, represented by its
/// ping-ranked address.
pub fn build_v4(world: &World) -> Hitlist {
    let entries = v4_targets(world)
        .map(|(_, t)| match t.prefix {
            PrefixKey::V4(p) => Entry {
                prefix: t.prefix,
                addr: IpAddr::V4(p.addr(PING_HOST)),
                source: Source::PingScan,
            },
            PrefixKey::V6(_) => unreachable!("v4 range holds only v4 prefixes"),
        })
        .collect();
    Hitlist {
        family: IpVersion::V4,
        entries,
    }
}

/// The DNS-census IPv4 hitlist: ISI merged with nameserver addresses,
/// preferring the nameserver as a prefix's representative (§4.2.3).
pub fn build_v4_dns(world: &World) -> Hitlist {
    let entries = v4_targets(world)
        .map(|(_, t)| match t.prefix {
            PrefixKey::V4(p) => {
                if t.ns.is_some() {
                    Entry {
                        prefix: t.prefix,
                        addr: IpAddr::V4(p.addr(NS_HOST)),
                        source: Source::Nameserver,
                    }
                } else {
                    Entry {
                        prefix: t.prefix,
                        addr: IpAddr::V4(p.addr(PING_HOST)),
                        source: Source::PingScan,
                    }
                }
            }
            PrefixKey::V6(_) => unreachable!(),
        })
        .collect();
    Hitlist {
        family: IpVersion::V4,
        entries,
    }
}

/// The IPv6 hitlist (TUM + OpenINTEL AAAA): covers most, not all, `/48`s.
pub fn build_v6(world: &World) -> Hitlist {
    let entries = v6_targets(world)
        .filter(|(id, _)| {
            rng::unit_f64(rng::key(world.cfg.seed, &[0x617, id.0 as u64])) < V6_COVERAGE
        })
        .map(|(_, t)| match t.prefix {
            PrefixKey::V6(p) => {
                let (host, source) = if t.ns.is_some() {
                    (u64::from(NS_HOST), Source::Nameserver)
                } else {
                    (u64::from(PING_HOST), Source::V6Hitlist)
                };
                Entry {
                    prefix: t.prefix,
                    addr: IpAddr::V6(p.addr(host)),
                    source,
                }
            }
            PrefixKey::V4(_) => unreachable!("v6 range holds only v6 prefixes"),
        })
        .collect();
    Hitlist {
        family: IpVersion::V6,
        entries,
    }
}

/// The nameserver hitlist used for the CHAOS comparison (Appendix C):
/// every v4 prefix hosting a nameserver.
pub fn build_nameservers_v4(world: &World) -> Hitlist {
    let entries = v4_targets(world)
        .filter(|(_, t)| t.ns.is_some())
        .map(|(_, t)| match t.prefix {
            PrefixKey::V4(p) => Entry {
                prefix: t.prefix,
                addr: IpAddr::V4(p.addr(NS_HOST)),
                source: Source::Nameserver,
            },
            PrefixKey::V6(_) => unreachable!(),
        })
        .collect();
    Hitlist {
        family: IpVersion::V4,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn v4_covers_every_known_prefix() {
        let w = world();
        let h = build_v4(&w);
        assert_eq!(h.len(), w.n_v4);
        for e in &h.entries {
            assert!(matches!(e.addr, IpAddr::V4(_)));
            assert_eq!(PrefixKey::of(e.addr), e.prefix);
        }
    }

    #[test]
    fn entries_are_sorted_and_covers_works() {
        let w = world();
        let h = build_v4(&w);
        for pair in h.entries.windows(2) {
            assert!(pair[0].prefix < pair[1].prefix);
        }
        assert!(h.covers(h.entries[5].prefix));
        assert!(!h.covers(PrefixKey::of("9.9.9.9".parse().unwrap())));
    }

    #[test]
    fn dns_merge_prefers_nameserver_addresses() {
        let w = world();
        let plain = build_v4(&w);
        let dns = build_v4_dns(&w);
        assert_eq!(plain.len(), dns.len());
        let ns_count = dns
            .entries
            .iter()
            .filter(|e| e.source == Source::Nameserver)
            .count();
        assert!(ns_count > 0, "merge changed nothing");
        for (p, d) in plain.entries.iter().zip(&dns.entries) {
            assert_eq!(p.prefix, d.prefix);
            if d.source == Source::Nameserver {
                assert_ne!(p.addr, d.addr, "nameserver representative should differ");
            } else {
                assert_eq!(p.addr, d.addr);
            }
        }
    }

    #[test]
    fn v6_hitlist_has_coverage_gaps() {
        let w = world();
        let h = build_v6(&w);
        let total_v6 = w.targets.len() - w.n_v4;
        assert!(h.len() < total_v6, "v6 hitlist should miss some prefixes");
        assert!(h.len() as f64 > total_v6 as f64 * 0.9, "but cover most");
        for e in &h.entries {
            assert!(matches!(e.addr, IpAddr::V6(_)));
        }
    }

    #[test]
    fn v6_coverage_is_deterministic() {
        let w = world();
        assert_eq!(build_v6(&w).entries, build_v6(&w).entries);
    }

    #[test]
    fn nameserver_hitlist_is_ns_only() {
        let w = world();
        let h = build_nameservers_v4(&w);
        assert!(!h.is_empty());
        for e in &h.entries {
            let t = w.target(w.lookup(e.prefix).unwrap());
            assert!(t.ns.is_some());
        }
        // And it is a strict subset of the full hitlist.
        assert!(h.len() < build_v4(&w).len());
    }
}

//! GCD engine invariance: the fast path is pure execution layout.
//!
//! PR 9's tentpole claim is that the campaign's cost profile — the
//! [`VpGeometry`] memo behind every selection and overlap test, the
//! grid-indexed city geolocation, per-chunk probe sessions with reusable
//! buffers on the prepared wire path, and the chunk fan-out itself —
//! changes *only* throughput. Every per-prefix result, the serialized
//! telemetry, and the flight-recorder export must be byte-identical
//! between [`run_campaign`] and the pre-PR9 [`run_campaign_reference`],
//! and across chunk counts {1, 16}, fault-free and with a panicking
//! chunk plan. These tests pin that claim, mirroring the probing
//! pipeline's `shard_invariance.rs`.

use std::net::IpAddr;
use std::sync::{Arc, OnceLock};

use laces_gcd::engine::{run_campaign, run_campaign_reference, GcdConfig, GcdReport};
use laces_netsim::{World, WorldConfig};
use laces_obs::DegradedReason;
use laces_packet::PrefixKey;
use laces_trace::TraceConfig;

/// Shared tiny world — generated once for the whole test binary.
fn world() -> &'static Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    WORLD.get_or_init(|| Arc::new(World::generate(WorldConfig::tiny())))
}

fn targets(world: &World, n: usize) -> Vec<IpAddr> {
    world.targets[..world.n_v4]
        .iter()
        .take(n)
        .map(|t| match t.prefix {
            PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
            PrefixKey::V6(_) => unreachable!(),
        })
        .collect()
}

/// A traced campaign config, so the trace comparison is never vacuous.
fn cfg_with(id: u32, threads: usize) -> GcdConfig {
    let mut cfg = GcdConfig::daily(id, 0);
    cfg.attempts = 2;
    cfg.threads = threads;
    cfg.trace = TraceConfig::all(0x9C0D);
    cfg
}

/// Assert two campaign reports are observably identical: every per-prefix
/// result, the probe count, the serialized run report, and the trace
/// export. `chunk_report` is deliberately NOT compared — it is the one
/// field documented to depend on the chunk layout.
fn assert_reports_equal(a: &GcdReport, b: &GcdReport, label: &str) {
    assert_eq!(a.results, b.results, "{label}: results diverge");
    assert_eq!(
        a.probes_sent, b.probes_sent,
        "{label}: probes_sent diverges"
    );
    assert_eq!(a.n_vps, b.n_vps, "{label}: n_vps diverges");
    assert_eq!(
        a.telemetry.to_jsonl(),
        b.telemetry.to_jsonl(),
        "{label}: serialized run report diverges"
    );
    assert_eq!(
        a.trace_report.to_jsonl(),
        b.trace_report.to_jsonl(),
        "{label}: trace export diverges"
    );
}

#[test]
fn fast_engine_matches_the_reference_byte_for_byte() {
    let w = world();
    let t = targets(w, 80);
    let cfg = cfg_with(47_001, 4);
    let fast = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");
    let reference =
        run_campaign_reference(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");
    assert!(!fast.results.is_empty(), "workload must be non-trivial");
    assert!(
        !fast.trace_report.to_jsonl().is_empty(),
        "tracing must be live or the trace comparison is vacuous"
    );
    assert_reports_equal(&fast, &reference, "fast-vs-reference");
}

#[test]
fn fast_engine_matches_the_reference_under_vp_selection() {
    // The Atlas-style config exercises every memoized geometry consumer:
    // the flaky-VP filter, the min-distance selection, the max-VP stride,
    // and a no-precheck campaign (all VPs probe every target).
    let w = world();
    let t = targets(w, 50);
    let mut cfg = cfg_with(47_002, 3);
    cfg.precheck = false;
    cfg.min_vp_distance_km = Some(400.0);
    cfg.max_vps = Some(9);
    let fast = run_campaign(w, w.std_platforms.atlas, &t, &cfg).expect("unicast platform");
    let reference =
        run_campaign_reference(w, w.std_platforms.atlas, &t, &cfg).expect("unicast platform");
    assert!(fast.n_vps <= 9, "max_vps must have engaged");
    assert_reports_equal(&fast, &reference, "atlas fast-vs-reference");
}

#[test]
fn outputs_are_byte_identical_across_chunk_counts() {
    let w = world();
    let t = targets(w, 80);
    let baseline = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg_with(47_003, 1))
        .expect("unicast platform");
    for threads in [4usize, 16] {
        let outcome = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg_with(47_003, threads))
            .expect("unicast platform");
        assert_reports_equal(&baseline, &outcome, &format!("threads={threads}"));
        assert_eq!(
            outcome.chunk_report.gauge("gcd.threads"),
            threads as u64,
            "chunk layout must land in chunk_report"
        );
    }
    // The reference engine is chunked identically.
    let ref_single = run_campaign_reference(w, w.std_platforms.ark_dev, &t, &cfg_with(47_003, 1))
        .expect("unicast platform");
    let ref_chunked = run_campaign_reference(w, w.std_platforms.ark_dev, &t, &cfg_with(47_003, 16))
        .expect("unicast platform");
    assert_reports_equal(&ref_single, &ref_chunked, "reference threads=16");
    assert_reports_equal(&baseline, &ref_single, "fast-vs-reference threads=1");
}

#[test]
fn faulted_chunk_quarantines_its_targets_on_both_engines() {
    let w = world();
    let t = targets(w, 80);
    let clean = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg_with(47_004, 4))
        .expect("unicast platform");

    let mut cfg = cfg_with(47_004, 4);
    cfg.fault_chunk = Some(1);
    let fast = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");
    let reference =
        run_campaign_reference(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");

    // The fault plan degrades both engines identically.
    assert_reports_equal(&fast, &reference, "faulted fast-vs-reference");
    assert!(fast.is_degraded(), "lost chunk must degrade the campaign");
    assert_eq!(
        fast.degraded_reasons(),
        &[DegradedReason::GcdChunkLost { targets: 20 }],
        "chunk 1 of 4 holds a quarter of the 80 targets"
    );
    assert_eq!(fast.telemetry.counter("gcd.targets_lost"), 20);
    assert_eq!(fast.results.len(), 60, "surviving chunks all publish");
    // Surviving results are exactly the clean run's (per-chunk probing is
    // independent, so a lost sibling changes nothing).
    for (prefix, result) in &fast.results {
        assert_eq!(
            Some(result),
            clean.results.get(prefix),
            "surviving result for {prefix} diverges from the clean run"
        );
    }
    // And the fault plan is chunk-layout-stable in what it loses: the same
    // plan at chunk count 4 always loses the same 20 targets.
    let again = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");
    assert_reports_equal(&fast, &again, "faulted rerun");
}

#[test]
fn chunk_markers_are_opt_in_and_quarantined() {
    let w = world();
    let t = targets(w, 40);

    // TraceConfig::all leaves chunk markers off: the canonical trace and
    // telemetry never mention the chunk layout.
    let outcome = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg_with(47_005, 4))
        .expect("unicast platform");
    assert!(
        !outcome.trace_report.to_jsonl().contains("GcdChunk"),
        "chunk markers leaked into the invariant trace"
    );
    assert!(
        !outcome.telemetry.to_jsonl().contains("gcd.threads")
            && !outcome.telemetry.to_jsonl().contains("gcd.chunks"),
        "chunk-layout gauges leaked into the invariant run report"
    );
    assert_eq!(outcome.chunk_report.gauge("gcd.threads"), 4);
    assert_eq!(outcome.chunk_report.gauge("gcd.chunks"), 4);

    // Opting in surfaces one marker per chunk.
    let mut cfg = cfg_with(47_005, 4);
    cfg.trace = TraceConfig::all(0x9C0D).with_shard_spans();
    let traced = run_campaign(w, w.std_platforms.ark_dev, &t, &cfg).expect("unicast platform");
    assert_eq!(
        traced.trace_report.to_jsonl().matches("GcdChunk").count(),
        4,
        "one chunk marker per spawned chunk"
    );
}

#[test]
fn oversized_platform_is_rejected_up_front() {
    // The probe wire format carries the witnessing VP in a u16; a platform
    // with more VPs than that id space must be rejected before any probing
    // (previously the id silently saturated, aliasing every VP >= 65535).
    // The guard fires before the campaign resolves routes or builds its
    // geometry memo, so a synthetic VP list on a generated world — far
    // cheaper than generating 65 536 routed VPs — exercises it fully.
    let mut w = World::generate(WorldConfig::tiny());
    let template = w
        .platform(w.std_platforms.atlas)
        .vps()
        .expect("unicast platform")[0]
        .clone();
    let huge = laces_netsim::PlatformId(
        u16::try_from(w.platforms.len()).expect("platform registry fits u16"),
    );
    w.platforms.push(laces_netsim::Platform {
        name: "synthetic-huge".into(),
        kind: laces_netsim::PlatformKind::Unicast {
            vps: vec![template; usize::from(u16::MAX) + 1],
        },
    });
    let w = Arc::new(w);
    let t = targets(&w, 4);
    let err = run_campaign(&w, huge, &t, &cfg_with(47_006, 1))
        .expect_err("oversized platform must be rejected");
    assert_eq!(
        err,
        laces_core::MeasurementError::PlatformTooLarge {
            platform: huge,
            n_vps: usize::from(u16::MAX) + 1,
        }
    );
    assert!(err.to_string().contains("65536"));
}

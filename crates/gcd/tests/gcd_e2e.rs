//! End-to-end GCD tests over a tiny world: the latency methodology must
//! confirm real anycast, pass unicast, and exhibit the paper's known
//! failure modes (regional blindness, backing-anycast FPs).

use std::net::IpAddr;
use std::sync::Arc;

use laces_gcd::engine::{run_campaign, GcdClass, GcdConfig};
use laces_netsim::{TargetKind, World, WorldConfig};
use laces_packet::PrefixKey;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn addr_of(world: &World, idx: usize) -> IpAddr {
    match world.targets[idx].prefix {
        PrefixKey::V4(p) => IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST)),
        PrefixKey::V6(p) => {
            IpAddr::V6(p.addr(u64::from(laces_netsim::targets::REPRESENTATIVE_HOST)))
        }
    }
}

#[test]
fn gcd_confirms_global_anycast_and_passes_unicast() {
    let w = world();
    let mut targets: Vec<IpAddr> = Vec::new();
    let mut truth: Vec<bool> = Vec::new(); // is global anycast
    for (i, t) in w.targets.iter().enumerate() {
        if !t.prefix.is_v4() || !t.resp.icmp {
            continue;
        }
        match t.kind {
            TargetKind::Anycast { dep }
                if w.deployment(dep).n_distinct_cities() >= 8 && t.temp.is_none() =>
            {
                targets.push(addr_of(&w, i));
                truth.push(true);
            }
            TargetKind::Unicast { .. } if truth.iter().filter(|&&x| !x).count() < 200 => {
                targets.push(addr_of(&w, i));
                truth.push(false);
            }
            _ => {}
        }
    }
    assert!(
        truth.iter().filter(|&&x| x).count() >= 10,
        "need anycast in the sample"
    );

    let report = run_campaign(
        &w,
        w.std_platforms.ark_dev,
        &targets,
        &GcdConfig::daily(500, 0),
    )
    .expect("unicast VP platform");
    let mut tp = 0;
    let mut fn_ = 0;
    let mut fp = 0;
    for (addr, is_any) in targets.iter().zip(&truth) {
        match (report.results[&PrefixKey::of(*addr)].class, is_any) {
            (GcdClass::Anycast, true) => tp += 1,
            (GcdClass::Unicast, true) | (GcdClass::Unresponsive, true) => fn_ += 1,
            (GcdClass::Anycast, false) => fp += 1,
            _ => {}
        }
    }
    assert_eq!(fp, 0, "GCD must be sound: no unicast flagged anycast");
    assert!(tp > fn_ * 5, "GCD recall too low: tp={tp} fn={fn_}");
}

#[test]
fn gcd_enumeration_is_lower_bound_and_scales_with_deployment() {
    let w = world();
    // Compare a huge deployment and a small one.
    let mut big = None;
    let mut small = None;
    for (i, t) in w.targets.iter().enumerate() {
        if let TargetKind::Anycast { dep } = t.kind {
            if !t.resp.icmp || !t.prefix.is_v4() || t.temp.is_some() {
                continue;
            }
            let d = w.deployment(dep);
            if d.n_distinct_cities() >= 25 && big.is_none() {
                big = Some((i, d.n_sites()));
            }
            if (3..=5).contains(&d.n_distinct_cities()) && !d.regional && small.is_none() {
                small = Some((i, d.n_sites()));
            }
        }
    }
    let (big_i, big_sites) = big.expect("a big deployment exists");
    let report = run_campaign(
        &w,
        w.std_platforms.ark_dev,
        &[addr_of(&w, big_i)],
        &GcdConfig::daily(501, 0),
    )
    .expect("unicast VP platform");
    let r = &report.results[&w.targets[big_i].prefix];
    assert_eq!(r.class, GcdClass::Anycast);
    assert!(
        r.n_sites() >= 3,
        "big deployment enumerated {} sites",
        r.n_sites()
    );
    assert!(
        r.n_sites() <= big_sites,
        "enumeration {} exceeds truth {}",
        r.n_sites(),
        big_sites
    );

    if let Some((small_i, small_sites)) = small {
        let report = run_campaign(
            &w,
            w.std_platforms.ark_dev,
            &[addr_of(&w, small_i)],
            &GcdConfig::daily(502, 0),
        )
        .expect("unicast VP platform");
        let r = &report.results[&w.targets[small_i].prefix];
        assert!(r.n_sites() <= small_sites);
    }
}

#[test]
fn precheck_reduces_probing_cost_without_changing_verdicts() {
    let w = world();
    let targets: Vec<IpAddr> = (0..300.min(w.n_v4)).map(|i| addr_of(&w, i)).collect();
    let mut with = GcdConfig::daily(503, 0);
    with.precheck = true;
    let mut without = with.clone();
    without.precheck = false;
    without.measurement_id = 503; // same id: identical availability and jitter keys
    let a = run_campaign(&w, w.std_platforms.ark, &targets, &with).expect("unicast VP platform");
    let b = run_campaign(&w, w.std_platforms.ark, &targets, &without).expect("unicast VP platform");
    assert!(a.probes_sent < b.probes_sent, "precheck should save probes");
    for t in &targets {
        let k = PrefixKey::of(*t);
        // Verdicts agree except where the precheck VP missed a responsive
        // target due to loss (rare; those become unresponsive).
        let (ca, cb) = (a.results[&k].class, b.results[&k].class);
        if ca != GcdClass::Unresponsive {
            assert_eq!(ca, cb, "verdict changed for {k}");
        }
    }
}

#[test]
fn backing_anycast_creates_v6_false_positives_on_broken_vps() {
    // §5.8.2: Ark VPs whose AS filters a /48 fall back to the backing
    // anycast prefix and misclassify the unicast /48 as anycast.
    let w = world();
    let backing: Vec<usize> = w
        .targets
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.kind, TargetKind::BackingAnycast { .. }) && t.resp.icmp)
        .map(|(i, _)| i)
        .collect();
    assert!(!backing.is_empty(), "world has backing-anycast targets");
    let targets: Vec<IpAddr> = backing.iter().map(|&i| addr_of(&w, i)).collect();
    let report = run_campaign(
        &w,
        w.std_platforms.ark_dev,
        &targets,
        &GcdConfig::daily(504, 0),
    )
    .expect("unicast VP platform");
    let fps = report.count(GcdClass::Anycast);
    assert!(fps > 0, "expected backing-anycast FPs through broken VPs");
}

#[test]
fn atlas_platform_is_flaky_but_usable() {
    let w = world();
    let cfg_a = GcdConfig::daily(505, 0);
    let cfg_b = GcdConfig::daily(506, 0);
    let va = laces_gcd::engine::participating_vps(&w, w.std_platforms.atlas, &cfg_a);
    let vb = laces_gcd::engine::participating_vps(&w, w.std_platforms.atlas, &cfg_b);
    let n = w.platform(w.std_platforms.atlas).n_vps();
    assert!(va.len() < n, "some Atlas VPs must be absent");
    assert!(va.len() > n / 2, "most Atlas VPs present");
    let ia: Vec<usize> = va.iter().map(|(i, _)| *i).collect();
    let ib: Vec<usize> = vb.iter().map(|(i, _)| *i).collect();
    assert_ne!(ia, ib, "different measurements see different Atlas subsets");
}

#[test]
fn min_distance_filter_thins_platform() {
    let w = world();
    let mut cfg = GcdConfig::daily(507, 0);
    cfg.min_vp_distance_km = Some(1_000.0);
    let filtered = laces_gcd::engine::participating_vps(&w, w.std_platforms.ark_dev, &cfg);
    cfg.min_vp_distance_km = None;
    let all = laces_gcd::engine::participating_vps(&w, w.std_platforms.ark_dev, &cfg);
    assert!(filtered.len() < all.len());
    for i in 0..filtered.len() {
        for j in i + 1..filtered.len() {
            assert!(filtered[i].1.gcd_km(&filtered[j].1) >= 1_000.0);
        }
    }
}

#[test]
fn retry_attempts_draw_independent_loss_and_jitter() {
    // Regression: each retry used to pass its own tx time as the window
    // start, zeroing the schedule offset the wire keys per-probe draws on —
    // every attempt drew the identical loss verdict and `attempts > 1` was
    // a no-op.
    let mut wc = WorldConfig::tiny();
    wc.loss_rate = 0.7;
    let w = Arc::new(World::generate(wc));
    let targets: Vec<IpAddr> = (0..200.min(w.n_v4)).map(|i| addr_of(&w, i)).collect();
    let mut one = GcdConfig::daily(509, 0);
    one.precheck = false;
    let mut four = one.clone();
    four.attempts = 4;
    let a = run_campaign(&w, w.std_platforms.ark, &targets, &one).expect("unicast VP platform");
    let b = run_campaign(&w, w.std_platforms.ark, &targets, &four).expect("unicast VP platform");
    let samples = |r: &laces_gcd::engine::GcdReport| -> usize {
        r.results.values().map(|p| p.enumeration.n_samples).sum()
    };
    assert!(
        samples(&b) > samples(&a),
        "retries must redraw loss independently: {} samples with 4 attempts \
         vs {} with 1",
        samples(&b),
        samples(&a)
    );
    assert!(
        b.count(GcdClass::Unresponsive) <= a.count(GcdClass::Unresponsive),
        "extra attempts cannot lose responsive targets"
    );
}

#[test]
fn campaign_is_deterministic() {
    let w = world();
    let targets: Vec<IpAddr> = (0..100.min(w.n_v4)).map(|i| addr_of(&w, i)).collect();
    let cfg = GcdConfig::daily(508, 0);
    let a = run_campaign(&w, w.std_platforms.ark, &targets, &cfg).expect("unicast VP platform");
    let b = run_campaign(&w, w.std_platforms.ark, &targets, &cfg).expect("unicast VP platform");
    assert_eq!(a.probes_sent, b.probes_sent);
    for (k, ra) in &a.results {
        assert_eq!(ra.class, b.results[k].class);
        assert_eq!(ra.n_sites(), b.results[k].n_sites());
    }
    // The campaign telemetry is bit-identical across reruns, even with the
    // multi-threaded chunked probing (counters only ever sum).
    assert_eq!(
        serde_json::to_string(&a.telemetry).unwrap(),
        serde_json::to_string(&b.telemetry).unwrap()
    );
}

#[test]
fn anycast_platform_is_a_typed_error_not_a_panic() {
    let w = world();
    let targets: Vec<IpAddr> = (0..10.min(w.n_v4)).map(|i| addr_of(&w, i)).collect();
    let err = run_campaign(
        &w,
        w.std_platforms.production,
        &targets,
        &GcdConfig::daily(510, 0),
    )
    .expect_err("anycast platform must be rejected");
    assert_eq!(
        err,
        laces_core::MeasurementError::NotUnicast {
            platform: w.std_platforms.production
        }
    );
}

#[test]
fn campaign_telemetry_accounts_for_the_wire() {
    let w = world();
    let targets: Vec<IpAddr> = (0..100.min(w.n_v4)).map(|i| addr_of(&w, i)).collect();
    let mut cfg = GcdConfig::daily(511, 0);
    cfg.precheck = false;
    cfg.threads = 4;
    let report =
        run_campaign(&w, w.std_platforms.ark, &targets, &cfg).expect("unicast VP platform");
    let t = &report.telemetry;
    assert!(!report.is_degraded());
    assert_eq!(t.counter("gcd.probes_sent"), report.probes_sent);
    assert_eq!(
        t.counter("gcd.replies") + t.counter("gcd.unanswered"),
        report.probes_sent,
        "every probe is either answered or unanswered"
    );
    assert_eq!(t.gauge("gcd.n_vps"), report.n_vps as u64);
    assert_eq!(t.gauge("gcd.n_targets"), targets.len() as u64);
    // Chunk layout is quarantined from the canonical telemetry so the
    // latter stays byte-identical across chunk counts.
    assert_eq!(t.gauge("gcd.threads"), 0);
    assert_eq!(report.chunk_report.gauge("gcd.threads"), 4);
    assert_eq!(report.chunk_report.gauge("gcd.chunks"), 4);
    assert_eq!(
        t.counter("gcd.class.anycast")
            + t.counter("gcd.class.unicast")
            + t.counter("gcd.class.unresponsive"),
        targets.len() as u64,
        "every target is classified exactly once"
    );
    assert!(
        t.counter("gcd.enumeration.overlap_tests") > 0,
        "the greedy pass must have compared disks"
    );
    assert_eq!(t.stages.len(), 1);
    assert_eq!(t.stages[0].name, "gcd:Icmp");
    assert_eq!(t.stages[0].counter("targets"), targets.len() as u64);
}

//! GCD measurement campaigns: latency probing from a unicast VP platform
//! followed by iGreedy analysis, per target.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use laces_core::MeasurementError;
use laces_geo::Coord;
use laces_netsim::wire::{MeasurementCtx, ProbeSource, WireStats};
use laces_netsim::{platform as plat, PlatformId, World};
use laces_obs::{Degraded, DegradedReason, RunReport, SimClock, StageTimer};
use laces_packet::probe::{build_probe, ProbeEncoding, ProbeMeta};
use laces_packet::{PrefixKey, Protocol};
use laces_trace::{Component, TraceConfig, TraceEvent, TraceReport, Tracer};
use serde::{Deserialize, Serialize};

use crate::enumerate::{enumerate_counted, Enumeration, RttSample};
use crate::vp_selection::select_by_distance;

/// Chunk fan-out when [`GcdConfig::threads`] is 0 ("auto"). A fixed count
/// — deliberately not `available_parallelism` — so the campaign's chunk
/// geometry and its serialized telemetry (`gcd.threads` / `gcd.chunks`
/// gauges) are identical on every machine. Each chunk gets an OS thread
/// in the enumeration scope; 16 saturates the simulated wire well before
/// it saturates real cores, and hosts with fewer cores just time-slice.
pub const DEFAULT_GCD_CHUNKS: usize = 16;

/// Configuration of a GCD campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcdConfig {
    /// Probing protocol (the pipeline uses ICMP and TCP; DNS is excluded
    /// because request processing adds jitter, §4.2.2).
    pub protocol: Protocol,
    /// Probes per (VP, target); the minimum RTT is kept, as scamper does.
    pub attempts: u8,
    /// Probe responsiveness from a single VP before engaging the full
    /// platform (the paper's future-work optimisation; saves ~⅓ of probes
    /// on full-hitlist scans).
    pub precheck: bool,
    /// Keep only VPs at least this far apart (RIPE Atlas selection, §5.2).
    pub min_vp_distance_km: Option<f64>,
    /// Cap the number of participating VPs (evenly strided over the
    /// platform); the §5.6 partial-anycast scan uses nine.
    pub max_vps: Option<usize>,
    /// Measurement identifier.
    pub measurement_id: u32,
    /// Simulated day.
    pub day: u32,
    /// Worker threads for the campaign (0 = [`DEFAULT_GCD_CHUNKS`], a
    /// fixed fan-out so chunk geometry and the `gcd.threads`/`gcd.chunks`
    /// telemetry gauges never depend on the host).
    pub threads: usize,
    /// Flight-recorder configuration (default: disabled).
    pub trace: TraceConfig,
}

impl GcdConfig {
    /// Daily-pipeline defaults: ICMP, one attempt, precheck on.
    pub fn daily(measurement_id: u32, day: u32) -> Self {
        GcdConfig {
            protocol: Protocol::Icmp,
            attempts: 1,
            precheck: true,
            min_vp_distance_km: None,
            max_vps: None,
            measurement_id,
            day,
            threads: 0,
            trace: TraceConfig::default(),
        }
    }

    /// The campaign's effective thread/chunk fan-out.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            DEFAULT_GCD_CHUNKS
        } else {
            self.threads
        }
    }
}

/// GCD verdict for one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcdClass {
    /// Speed-of-light violation: provably replicated.
    Anycast,
    /// Responsive, all disks mutually consistent with one host.
    Unicast,
    /// No responses.
    Unresponsive,
}

/// Per-prefix GCD result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixGcd {
    /// Verdict.
    pub class: GcdClass,
    /// iGreedy enumeration (empty for unresponsive prefixes).
    pub enumeration: Enumeration,
}

impl PrefixGcd {
    /// Enumerated site count (0 when unresponsive).
    pub fn n_sites(&self) -> usize {
        self.enumeration.n_sites()
    }
}

/// Outcome of a GCD campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcdReport {
    /// Per-prefix results (every probed target appears).
    pub results: BTreeMap<PrefixKey, PrefixGcd>,
    /// Total probes transmitted.
    pub probes_sent: u64,
    /// Number of VPs that participated.
    pub n_vps: usize,
    /// Deterministic campaign telemetry. Lost chunks (a measurement thread
    /// panicked) appear as [`DegradedReason::GcdChunkLost`] entries: the
    /// report covers only the surviving chunks and the consumer must carry
    /// the reasons forward instead of trusting absences.
    pub telemetry: RunReport,
    /// The flight recorder's event log for the campaign (empty and
    /// disabled unless [`GcdConfig::trace`] enabled tracing).
    pub trace_report: TraceReport,
}

impl GcdReport {
    /// Prefixes with a proven violation.
    pub fn anycast_prefixes(&self) -> Vec<PrefixKey> {
        self.results
            .iter()
            .filter(|(_, r)| r.class == GcdClass::Anycast)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Count per class.
    pub fn count(&self, class: GcdClass) -> usize {
        self.results.values().filter(|r| r.class == class).count()
    }

    /// Whether part of the campaign was lost.
    pub fn is_degraded(&self) -> bool {
        self.telemetry.is_degraded()
    }

    /// Why the campaign degraded (empty when it ran clean).
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

impl Degraded for GcdReport {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

/// The VPs participating in one campaign: flaky platforms (RIPE Atlas)
/// contribute a per-measurement random subset; a minimum-distance filter
/// thins the rest.
pub fn participating_vps(
    world: &World,
    platform: PlatformId,
    cfg: &GcdConfig,
) -> Vec<(usize, Coord)> {
    let Some(vps) = world.platform(platform).vps() else {
        return Vec::new();
    };
    let mut active: Vec<(usize, Coord)> = vps
        .iter()
        .enumerate()
        .filter(|(i, v)| {
            !v.flaky
                || laces_netsim::rng::unit_f64(laces_netsim::rng::key(
                    world.cfg.seed,
                    &[
                        0xA7A1,
                        platform.0 as u64,
                        *i as u64,
                        cfg.measurement_id as u64,
                    ],
                )) < 0.9
        })
        .map(|(i, v)| (i, v.coord))
        .collect();
    if let Some(min_km) = cfg.min_vp_distance_km {
        active = select_by_distance(&active, min_km);
    }
    if let Some(max) = cfg.max_vps {
        if max > 0 && active.len() > max {
            let step = active.len() as f64 / max as f64;
            active = (0..max)
                .map(|i| active[(i as f64 * step) as usize])
                .collect();
        }
    }
    active
}

/// Run a GCD campaign from `platform` toward `targets`.
///
/// # Errors
///
/// [`MeasurementError::NotUnicast`] if `platform` is an anycast platform:
/// GCD needs geographically dispersed unicast vantage points, each with
/// its own return path.
pub fn run_campaign(
    world: &Arc<World>,
    platform: PlatformId,
    targets: &[IpAddr],
    cfg: &GcdConfig,
) -> Result<GcdReport, MeasurementError> {
    if world.platform(platform).is_anycast() {
        return Err(MeasurementError::NotUnicast { platform });
    }
    let vps = participating_vps(world, platform, cfg);
    let tracer = Tracer::new(cfg.trace);
    let wire = WireStats::new();
    let overlap_tests = AtomicU64::new(0);
    let threads = if cfg.threads == 0 {
        DEFAULT_GCD_CHUNKS
    } else {
        cfg.threads
    };
    let chunk = targets.len().div_ceil(threads.max(1)).max(1);

    let mut report = RunReport::new();
    let mut results: BTreeMap<PrefixKey, PrefixGcd> = BTreeMap::new();
    let mut chunks_spawned = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_index, part) in targets.chunks(chunk).enumerate() {
            let vps = &vps;
            let wire = &wire;
            let overlap_tests = &overlap_tests;
            let tracer = &tracer;
            chunks_spawned += 1;
            tracer.record(Component::Control, || TraceEvent::GcdChunk {
                chunk_index,
                n_targets: part.len(),
            });
            handles.push((
                part.len(),
                scope.spawn(move || {
                    let mut local: Vec<(PrefixKey, PrefixGcd)> = Vec::with_capacity(part.len());
                    let mut tests = 0u64;
                    for &target in part {
                        let r = measure_target(
                            world, platform, vps, target, cfg, wire, &mut tests, tracer,
                        );
                        local.push((PrefixKey::of(target), r));
                    }
                    // laces-lint: allow(atomic-ordering) — per-chunk test counts commute under addition; into_inner() after the scope join reads the order-independent sum
                    overlap_tests.fetch_add(tests, Ordering::Relaxed);
                    local
                }),
            ));
        }
        for (n_targets, h) in handles {
            match h.join() {
                Ok(local) => results.extend(local),
                // A panicked chunk loses its targets, not the campaign:
                // the report is published degraded (graceful degradation,
                // mirroring the Orchestrator's R5 behaviour).
                Err(_) => {
                    report.add_degraded(DegradedReason::GcdChunkLost { targets: n_targets });
                    report.inc("gcd.targets_lost", n_targets as u64);
                }
            }
        }
    });

    let probes_sent = wire.probes.get();
    report.set_gauge("gcd.n_vps", vps.len() as u64);
    report.set_gauge("gcd.n_targets", targets.len() as u64);
    report.set_gauge("gcd.threads", threads as u64);
    report.set_gauge("gcd.chunks", chunks_spawned);
    report.set_gauge("gcd.attempts", u64::from(cfg.attempts.max(1)));
    report.set_gauge("gcd.precheck", u64::from(cfg.precheck));
    report.inc("gcd.probes_sent", probes_sent);
    report.inc("gcd.replies", wire.deliveries.get());
    report.inc("gcd.unanswered", wire.unanswered.get());
    report.inc("gcd.enumeration.overlap_tests", overlap_tests.into_inner());
    let mut sites = 0u64;
    for (key, class) in [
        ("gcd.class.anycast", GcdClass::Anycast),
        ("gcd.class.unicast", GcdClass::Unicast),
        ("gcd.class.unresponsive", GcdClass::Unresponsive),
    ] {
        report.inc(
            key,
            results.values().filter(|r| r.class == class).count() as u64,
        );
    }
    for r in results.values() {
        sites += r.n_sites() as u64;
    }
    report.inc("gcd.sites_enumerated", sites);

    // One stage spanning the campaign's probing schedule: every attempt is
    // offset 50 ms from the previous one inside the target's window, and
    // targets are probed concurrently, so the simulated span is the
    // per-target attempt train.
    let mut clock = SimClock::new();
    let mut stage = StageTimer::start(format!("gcd:{:?}", cfg.protocol), &clock);
    stage.count("targets", targets.len() as u64);
    stage.count("probes_sent", probes_sent);
    let sim_ms = u64::from(cfg.attempts.max(1)) * 50;
    clock.advance(sim_ms);
    report.push_stage(stage.finish(&clock));
    tracer.record(Component::Control, || TraceEvent::StageSpan {
        name: format!("gcd:{:?}", cfg.protocol),
        start_ms: 0,
        sim_ms,
    });

    Ok(GcdReport {
        results,
        probes_sent,
        n_vps: vps.len(),
        telemetry: report,
        trace_report: tracer.snapshot(""),
    })
}

#[allow(clippy::too_many_arguments)]
fn measure_target(
    world: &Arc<World>,
    platform: PlatformId,
    vps: &[(usize, Coord)],
    target: IpAddr,
    cfg: &GcdConfig,
    wire: &WireStats,
    overlap_tests: &mut u64,
    tracer: &Tracer,
) -> PrefixGcd {
    let ctx = MeasurementCtx {
        id: cfg.measurement_id,
        day: cfg.day,
        span_ms: 0,
    };
    let prefix = PrefixKey::of(target);
    // RTTs are deterministic f64s on the SimClock; events carry them as
    // integer micro-milliseconds so the trace stays float-free.
    let trace_probe = |vp: usize, best: Option<f64>| {
        tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdProbe {
            prefix,
            vp: u16::try_from(vp).unwrap_or(u16::MAX),
            rtt_micro_ms: best.map(|r| (r * 1000.0).round() as u64),
        });
    };
    let verdict = |class: GcdClass| {
        tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdVerdict {
            prefix,
            class: match class {
                GcdClass::Anycast => "anycast",
                GcdClass::Unicast => "unicast",
                GcdClass::Unresponsive => "unresponsive",
            }
            .to_string(),
        });
    };
    let mut samples: Vec<RttSample> = Vec::with_capacity(vps.len());

    let probe_from = |vp: usize| -> Option<f64> {
        let src = match target {
            IpAddr::V4(_) => plat::vp_src_v4(platform, vp),
            IpAddr::V6(_) => plat::vp_src_v6(platform, vp),
        };
        let mut best: Option<f64> = None;
        // The wire keys per-probe draws on the offset inside the target's
        // window (rate invariance, §5.5.2), so attempts must occupy distinct
        // schedule offsets under a *fixed* window start — passing each
        // attempt's tx as its own window start would zero the offset and
        // give every retry the identical loss/jitter draw.
        let window_start = u64::from(cfg.measurement_id) * 1000;
        for attempt in 0..cfg.attempts.max(1) {
            // Distinct schedule offsets give each attempt independent jitter.
            let tx = window_start + u64::from(attempt) * 50;
            let meta = ProbeMeta {
                measurement_id: cfg.measurement_id,
                worker_id: u16::try_from(vp).unwrap_or(u16::MAX),
                tx_time_ms: tx,
            };
            let pkt = build_probe(src, target, cfg.protocol, &meta, ProbeEncoding::PerWorker);
            if let Ok(Some(d)) = world.send_probe_observed(
                ProbeSource::Vp { platform, vp },
                &pkt,
                tx,
                window_start,
                &ctx,
                wire,
            ) {
                best = Some(best.map_or(d.rtt_ms, |b: f64| b.min(d.rtt_ms)));
            }
        }
        best
    };

    let mut start = 0usize;
    if cfg.precheck {
        // Responsiveness gate from the first participating VP.
        let Some((vp0, c0)) = vps.first().copied() else {
            verdict(GcdClass::Unresponsive);
            return PrefixGcd {
                class: GcdClass::Unresponsive,
                enumeration: enumerate_counted(&[], &world.db, overlap_tests),
            };
        };
        let best = probe_from(vp0);
        trace_probe(vp0, best);
        match best {
            Some(rtt) => samples.push(RttSample {
                vp: vp0,
                vp_coord: c0,
                rtt_ms: rtt,
            }),
            None => {
                verdict(GcdClass::Unresponsive);
                return PrefixGcd {
                    class: GcdClass::Unresponsive,
                    enumeration: enumerate_counted(&[], &world.db, overlap_tests),
                };
            }
        }
        start = 1;
    }
    for &(vp, coord) in &vps[start..] {
        let best = probe_from(vp);
        trace_probe(vp, best);
        if let Some(rtt) = best {
            samples.push(RttSample {
                vp,
                vp_coord: coord,
                rtt_ms: rtt,
            });
        }
    }

    let tests_before = *overlap_tests;
    let enumeration = enumerate_counted(&samples, &world.db, overlap_tests);
    let tests_here = *overlap_tests - tests_before;
    tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdOverlap {
        prefix,
        n_samples: enumeration.n_samples,
        overlap_tests: tests_here,
        n_sites: enumeration.n_sites(),
    });
    let class = if enumeration.n_samples == 0 {
        GcdClass::Unresponsive
    } else if enumeration.is_anycast() {
        GcdClass::Anycast
    } else {
        GcdClass::Unicast
    };
    verdict(class);
    PrefixGcd { class, enumeration }
}

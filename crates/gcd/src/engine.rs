//! GCD measurement campaigns: latency probing from a unicast VP platform
//! followed by iGreedy analysis, per target.
//!
//! The campaign runs at the probing pipeline's per-probe cost profile:
//! per-chunk [`ProbeSession`]s and reusable probe buffers
//! (`build_probe_into`), the prepared single-probe wire path
//! (`World::send_probe_one` with attached metadata, skipping reply-byte
//! synthesis), a campaign-scoped [`VpGeometry`] memo replacing per-target
//! haversines, and the grid-indexed city geolocation. The pre-PR9 engine
//! survives as [`run_campaign_reference`], and the `gcd_invariance` suite
//! pins both engines — and every chunk count — byte-identical.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use laces_core::MeasurementError;
use laces_geo::Coord;
use laces_netsim::wire::{
    BatchProbe, Delivery, MeasurementCtx, ProbeSession, ProbeSource, WireStats,
};
use laces_netsim::{platform as plat, PlatformId, World};
use laces_obs::{names, Degraded, DegradedReason, RunReport, SimClock, StageTimer};
use laces_packet::probe::{build_probe, build_probe_into, ProbeEncoding, ProbeMeta};
use laces_packet::{PrefixKey, Protocol};
use laces_trace::{Component, TraceConfig, TraceEvent, TraceReport, Tracer};
use serde::{Deserialize, Serialize};

use crate::enumerate::{
    enumerate_counted_memo, enumerate_counted_reference, Enumeration, RttSample,
};
use crate::geometry::VpGeometry;
use crate::vp_selection::{select_by_distance, select_by_distance_with};

/// Chunk fan-out when [`GcdConfig::threads`] is 0 ("auto"). A fixed count
/// — deliberately not `available_parallelism` — so the campaign's chunk
/// geometry is identical on every machine. Each chunk gets an OS thread
/// in the enumeration scope; 16 saturates the simulated wire well before
/// it saturates real cores, and hosts with fewer cores just time-slice.
/// Chunk-layout telemetry (`gcd.threads` / `gcd.chunks`) lives in
/// [`GcdReport::chunk_report`], quarantined from the canonical telemetry
/// so the latter stays byte-identical across chunk counts.
pub const DEFAULT_GCD_CHUNKS: usize = 16;

/// Configuration of a GCD campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcdConfig {
    /// Probing protocol (the pipeline uses ICMP and TCP; DNS is excluded
    /// because request processing adds jitter, §4.2.2).
    pub protocol: Protocol,
    /// Probes per (VP, target); the minimum RTT is kept, as scamper does.
    pub attempts: u8,
    /// Probe responsiveness from a single VP before engaging the full
    /// platform (the paper's future-work optimisation; saves ~⅓ of probes
    /// on full-hitlist scans).
    pub precheck: bool,
    /// Keep only VPs at least this far apart (RIPE Atlas selection, §5.2).
    pub min_vp_distance_km: Option<f64>,
    /// Cap the number of participating VPs (evenly strided over the
    /// platform); the §5.6 partial-anycast scan uses nine.
    pub max_vps: Option<usize>,
    /// Measurement identifier.
    pub measurement_id: u32,
    /// Simulated day.
    pub day: u32,
    /// Worker threads for the campaign (0 = [`DEFAULT_GCD_CHUNKS`], a
    /// fixed fan-out so chunk geometry never depends on the host).
    pub threads: usize,
    /// Flight-recorder configuration (default: disabled).
    pub trace: TraceConfig,
    /// Fault injection: panic the chunk with this index before it probes,
    /// exercising the campaign's graceful degradation (the chunk's targets
    /// are reported as [`DegradedReason::GcdChunkLost`], the rest of the
    /// campaign publishes). Test-only; `None` in production.
    pub fault_chunk: Option<usize>,
}

impl GcdConfig {
    /// Daily-pipeline defaults: ICMP, one attempt, precheck on.
    pub fn daily(measurement_id: u32, day: u32) -> Self {
        GcdConfig {
            protocol: Protocol::Icmp,
            attempts: 1,
            precheck: true,
            min_vp_distance_km: None,
            max_vps: None,
            measurement_id,
            day,
            threads: 0,
            trace: TraceConfig::default(),
            fault_chunk: None,
        }
    }

    /// The campaign's effective thread/chunk fan-out.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            DEFAULT_GCD_CHUNKS
        } else {
            self.threads
        }
    }
}

/// GCD verdict for one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcdClass {
    /// Speed-of-light violation: provably replicated.
    Anycast,
    /// Responsive, all disks mutually consistent with one host.
    Unicast,
    /// No responses.
    Unresponsive,
}

/// Per-prefix GCD result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixGcd {
    /// Verdict.
    pub class: GcdClass,
    /// iGreedy enumeration (empty for unresponsive prefixes).
    pub enumeration: Enumeration,
}

impl PrefixGcd {
    /// Enumerated site count (0 when unresponsive).
    pub fn n_sites(&self) -> usize {
        self.enumeration.n_sites()
    }
}

/// Outcome of a GCD campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcdReport {
    /// Per-prefix results (every probed target appears).
    pub results: BTreeMap<PrefixKey, PrefixGcd>,
    /// Total probes transmitted.
    pub probes_sent: u64,
    /// Number of VPs that participated.
    pub n_vps: usize,
    /// Deterministic campaign telemetry. Lost chunks (a measurement thread
    /// panicked) appear as [`DegradedReason::GcdChunkLost`] entries: the
    /// report covers only the surviving chunks and the consumer must carry
    /// the reasons forward instead of trusting absences. Byte-identical
    /// across chunk counts; chunk-layout gauges live in
    /// [`chunk_report`](Self::chunk_report).
    pub telemetry: RunReport,
    /// The flight recorder's event log for the campaign (empty and
    /// disabled unless [`GcdConfig::trace`] enabled tracing).
    pub trace_report: TraceReport,
    /// Chunk-layout telemetry (`gcd.threads`, `gcd.chunks` gauges):
    /// genuinely a function of the fan-out, so it is quarantined here —
    /// mirroring `MeasurementOutcome::shard_report` — and never absorbed
    /// into the canonical [`telemetry`](Self::telemetry).
    pub chunk_report: RunReport,
}

impl GcdReport {
    /// Prefixes with a proven violation.
    pub fn anycast_prefixes(&self) -> Vec<PrefixKey> {
        self.results
            .iter()
            .filter(|(_, r)| r.class == GcdClass::Anycast)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Count per class.
    pub fn count(&self, class: GcdClass) -> usize {
        self.results.values().filter(|r| r.class == class).count()
    }

    /// Whether part of the campaign was lost.
    pub fn is_degraded(&self) -> bool {
        self.telemetry.is_degraded()
    }

    /// Why the campaign degraded (empty when it ran clean).
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

impl Degraded for GcdReport {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

/// The VPs participating in one campaign: flaky platforms (RIPE Atlas)
/// contribute a per-measurement random subset; a minimum-distance filter
/// thins the rest.
pub fn participating_vps(
    world: &World,
    platform: PlatformId,
    cfg: &GcdConfig,
) -> Vec<(usize, Coord)> {
    participating_vps_inner(world, platform, cfg, None)
}

/// [`participating_vps`], with the min-distance filter optionally served
/// from a [`VpGeometry`] memo (bit-identical selection either way).
fn participating_vps_inner(
    world: &World,
    platform: PlatformId,
    cfg: &GcdConfig,
    geom: Option<&VpGeometry>,
) -> Vec<(usize, Coord)> {
    let Some(vps) = world.platform(platform).vps() else {
        return Vec::new();
    };
    let mut active: Vec<(usize, Coord)> = vps
        .iter()
        .enumerate()
        .filter(|(i, v)| {
            !v.flaky
                || laces_netsim::rng::unit_f64(laces_netsim::rng::key(
                    world.cfg.seed,
                    &[
                        0xA7A1,
                        platform.0 as u64,
                        *i as u64,
                        cfg.measurement_id as u64,
                    ],
                )) < 0.9
        })
        .map(|(i, v)| (i, v.coord))
        .collect();
    if let Some(min_km) = cfg.min_vp_distance_km {
        active = match geom {
            Some(g) => select_by_distance_with(g, &active, min_km),
            None => select_by_distance(&active, min_km),
        };
    }
    if let Some(max) = cfg.max_vps {
        if max > 0 && active.len() > max {
            let step = active.len() as f64 / max as f64;
            active = (0..max)
                .map(|i| active[(i as f64 * step) as usize])
                .collect();
        }
    }
    active
}

/// Wire identifier of a VP index. [`run_campaign`] rejects platforms with
/// more than `u16::MAX` VPs up front ([`MeasurementError::PlatformTooLarge`]),
/// so the conversion never actually collapses; `u16::MAX` stays free as
/// the "unknown" sentinel rather than silently aliasing real VPs.
fn vp_wire_id(vp: usize) -> u16 {
    u16::try_from(vp).unwrap_or(u16::MAX)
}

/// Run a GCD campaign from `platform` toward `targets`.
///
/// # Errors
///
/// [`MeasurementError::NotUnicast`] if `platform` is an anycast platform:
/// GCD needs geographically dispersed unicast vantage points, each with
/// its own return path. [`MeasurementError::PlatformTooLarge`] if the
/// platform has more than `u16::MAX` VPs — the probe wire format carries
/// the witnessing VP in a u16, and a silently wrapped id would alias
/// distinct VPs in records and traces.
pub fn run_campaign(
    world: &Arc<World>,
    platform: PlatformId,
    targets: &[IpAddr],
    cfg: &GcdConfig,
) -> Result<GcdReport, MeasurementError> {
    run_campaign_inner(world, platform, targets, cfg, true)
}

/// [`run_campaign`] at the pre-PR9 per-probe cost profile: an allocating
/// `build_probe` through the scalar `send_probe_observed` path (per-call
/// source/route resolution and reply-byte synthesis), per-pair haversines
/// for every selection and overlap test, and linear city-table scans for
/// geolocation. Byte-identical output — this is the benchmark baseline
/// and the invariance oracle, not a fallback.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_reference(
    world: &Arc<World>,
    platform: PlatformId,
    targets: &[IpAddr],
    cfg: &GcdConfig,
) -> Result<GcdReport, MeasurementError> {
    run_campaign_inner(world, platform, targets, cfg, false)
}

fn run_campaign_inner(
    world: &Arc<World>,
    platform: PlatformId,
    targets: &[IpAddr],
    cfg: &GcdConfig,
    fast: bool,
) -> Result<GcdReport, MeasurementError> {
    if world.platform(platform).is_anycast() {
        return Err(MeasurementError::NotUnicast { platform });
    }
    let platform_vps = world.platform(platform).vps().map_or(0, |v| v.len());
    if platform_vps > usize::from(u16::MAX) {
        return Err(MeasurementError::PlatformTooLarge {
            platform,
            n_vps: platform_vps,
        });
    }
    // The campaign-scoped geometry memo covers the *whole* platform by VP
    // index, so selection and enumeration share one table.
    let geom: Option<VpGeometry> = fast.then(|| {
        let coords: Vec<Coord> = world
            .platform(platform)
            .vps()
            .map(|vps| vps.iter().map(|v| v.coord).collect())
            .unwrap_or_default();
        VpGeometry::new(&coords, &world.db)
    });
    let vps = participating_vps_inner(world, platform, cfg, geom.as_ref());
    let tracer = Tracer::new(cfg.trace);
    let wire = WireStats::new();
    let overlap_tests = AtomicU64::new(0);
    let threads = cfg.effective_threads();
    let chunk = targets.len().div_ceil(threads.max(1)).max(1);

    let mut report = RunReport::new();
    let mut results: BTreeMap<PrefixKey, PrefixGcd> = BTreeMap::new();
    let mut chunks_spawned = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_index, part) in targets.chunks(chunk).enumerate() {
            let vps = &vps;
            let wire = &wire;
            let overlap_tests = &overlap_tests;
            let tracer = &tracer;
            let geom = geom.as_ref();
            chunks_spawned += 1;
            // Chunk markers are a function of the fan-out, so — like the
            // orchestrator's ShardSpan events — they are opt-in and
            // excluded from the cross-chunk-count trace invariance.
            if cfg.trace.shard_spans {
                tracer.record(Component::Control, || TraceEvent::GcdChunk {
                    chunk_index,
                    n_targets: part.len(),
                });
            }
            handles.push((
                part.len(),
                scope.spawn(move || {
                    if cfg.fault_chunk == Some(chunk_index) {
                        // laces-lint: allow(panic-path) — deliberate fault injection; the join handler below converts the panic into GcdChunkLost degradation
                        panic!("injected GCD chunk fault (chunk {chunk_index})");
                    }
                    let mut local: Vec<(PrefixKey, PrefixGcd)> = Vec::with_capacity(part.len());
                    let mut tests = 0u64;
                    match geom {
                        Some(g) => {
                            // Resolved once per (chunk, VP): the probe
                            // session (route handles, latency keys, scratch
                            // buffers) and both family source addresses.
                            let mut sessions: Vec<ProbeSession> = vps
                                .iter()
                                .map(|&(vp, _)| {
                                    world.probe_session(ProbeSource::Vp { platform, vp })
                                })
                                .collect();
                            let srcs: Vec<(IpAddr, IpAddr)> = vps
                                .iter()
                                .map(|&(vp, _)| {
                                    (plat::vp_src_v4(platform, vp), plat::vp_src_v6(platform, vp))
                                })
                                .collect();
                            let ctx = MeasurementCtx {
                                id: cfg.measurement_id,
                                day: cfg.day,
                                span_ms: 0,
                            };
                            let window_start = u64::from(cfg.measurement_id) * 1000;
                            // Probing first (VP-major batches), analysis
                            // second (target-major, as the trace demands).
                            let rtts = probe_chunk_fast(
                                world,
                                vps,
                                &mut sessions,
                                &srcs,
                                part,
                                cfg,
                                &ctx,
                                window_start,
                                wire,
                            );
                            for (ti, &target) in part.iter().enumerate() {
                                let r = analyze_target_fast(
                                    vps,
                                    g,
                                    &rtts,
                                    ti,
                                    part.len(),
                                    target,
                                    cfg,
                                    &mut tests,
                                    tracer,
                                );
                                local.push((PrefixKey::of(target), r));
                            }
                        }
                        None => {
                            for &target in part {
                                let r = measure_target_reference(
                                    world, platform, vps, target, cfg, wire, &mut tests, tracer,
                                );
                                local.push((PrefixKey::of(target), r));
                            }
                        }
                    }
                    // laces-lint: allow(atomic-ordering) — per-chunk test counts commute under addition; into_inner() after the scope join reads the order-independent sum
                    overlap_tests.fetch_add(tests, Ordering::Relaxed);
                    local
                }),
            ));
        }
        for (n_targets, h) in handles {
            match h.join() {
                Ok(local) => results.extend(local),
                // A panicked chunk loses its targets, not the campaign:
                // the report is published degraded (graceful degradation,
                // mirroring the Orchestrator's R5 behaviour).
                Err(_) => {
                    report.add_degraded(DegradedReason::GcdChunkLost { targets: n_targets });
                    report.inc(names::gcd::TARGETS_LOST, n_targets as u64);
                }
            }
        }
    });

    let probes_sent = wire.probes.get();
    report.set_gauge(names::gcd::N_VPS, vps.len() as u64);
    report.set_gauge(names::gcd::N_TARGETS, targets.len() as u64);
    report.set_gauge(names::gcd::ATTEMPTS, u64::from(cfg.attempts.max(1)));
    report.set_gauge(names::gcd::PRECHECK, u64::from(cfg.precheck));
    report.inc(names::gcd::PROBES_SENT, probes_sent);
    report.inc(names::gcd::REPLIES, wire.deliveries.get());
    report.inc(names::gcd::UNANSWERED, wire.unanswered.get());
    report.inc(
        names::gcd::ENUMERATION_OVERLAP_TESTS,
        overlap_tests.into_inner(),
    );
    // Single pass over the results for the class/site tallies; `inc`
    // creates a key even at 0, so the telemetry schema is load-independent.
    let (mut anycast, mut unicast, mut unresponsive, mut sites) = (0u64, 0u64, 0u64, 0u64);
    for r in results.values() {
        match r.class {
            GcdClass::Anycast => anycast += 1,
            GcdClass::Unicast => unicast += 1,
            GcdClass::Unresponsive => unresponsive += 1,
        }
        sites += r.n_sites() as u64;
    }
    report.inc(names::gcd::CLASS_ANYCAST, anycast);
    report.inc(names::gcd::CLASS_UNICAST, unicast);
    report.inc(names::gcd::CLASS_UNRESPONSIVE, unresponsive);
    report.inc(names::gcd::SITES_ENUMERATED, sites);

    // Chunk layout is a throughput knob, not an observation: quarantine
    // its gauges so `telemetry` is byte-identical across chunk counts.
    let mut chunk_report = RunReport::new();
    chunk_report.set_gauge(names::gcd::THREADS, threads as u64);
    chunk_report.set_gauge(names::gcd::CHUNKS, chunks_spawned);

    // One stage spanning the campaign's probing schedule: every attempt is
    // offset 50 ms from the previous one inside the target's window, and
    // targets are probed concurrently, so the simulated span is the
    // per-target attempt train.
    let mut clock = SimClock::new();
    let mut stage = StageTimer::start(format!("gcd:{:?}", cfg.protocol), &clock);
    stage.count("targets", targets.len() as u64);
    stage.count("probes_sent", probes_sent);
    let sim_ms = u64::from(cfg.attempts.max(1)) * 50;
    clock.advance(sim_ms);
    report.push_stage(stage.finish(&clock));
    tracer.record(Component::Control, || TraceEvent::StageSpan {
        name: format!("gcd:{:?}", cfg.protocol),
        start_ms: 0,
        sim_ms,
    });

    Ok(GcdReport {
        results,
        probes_sent,
        n_vps: vps.len(),
        telemetry: report,
        trace_report: tracer.snapshot(""),
        chunk_report,
    })
}

/// Record one VP's (traced) probe outcome. RTTs are deterministic f64s on
/// the SimClock; events carry them as integer micro-milliseconds so the
/// trace stays float-free.
fn trace_probe(tracer: &Tracer, prefix: PrefixKey, vp: usize, best: Option<f64>) {
    tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdProbe {
        prefix,
        vp: vp_wire_id(vp),
        rtt_micro_ms: best.map(|r| (r * 1000.0).round() as u64),
    });
}

/// Record the per-prefix verdict.
fn trace_verdict(tracer: &Tracer, prefix: PrefixKey, class: GcdClass) {
    tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdVerdict {
        prefix,
        class: match class {
            GcdClass::Anycast => "anycast",
            GcdClass::Unicast => "unicast",
            GcdClass::Unresponsive => "unresponsive",
        }
        .to_string(),
    });
}

/// Classify an enumeration and emit the overlap + verdict trace events.
fn classify_and_trace(
    tracer: &Tracer,
    prefix: PrefixKey,
    enumeration: Enumeration,
    tests_here: u64,
) -> PrefixGcd {
    tracer.record_for(Component::Gcd, prefix, || TraceEvent::GcdOverlap {
        prefix,
        n_samples: enumeration.n_samples,
        overlap_tests: tests_here,
        n_sites: enumeration.n_sites(),
    });
    let class = if enumeration.n_samples == 0 {
        GcdClass::Unresponsive
    } else if enumeration.is_anycast() {
        GcdClass::Anycast
    } else {
        GcdClass::Unicast
    };
    trace_verdict(tracer, prefix, class);
    PrefixGcd { class, enumeration }
}

/// Probe one chunk on the prepared batched wire path, VP-major: each
/// (VP, address family) sends one batch covering the chunk's whole
/// target slice (full attempt trains), so the per-probe wire statistics,
/// the session destructure and the flip-probability hoist amortize over
/// the chunk instead of recurring per probe. Returns the per-(VP, target)
/// minimum RTT — `rtts[pos * part.len() + ti]`, NaN when no reply — the
/// same min-fold scamper applies.
///
/// Per-probe wire draws are keyed on (target, schedule offset, VP,
/// measurement id), never on transmission order, so the VP-major order
/// is invisible in every outcome; `gcd_invariance` pins this against the
/// target-major reference engine.
#[allow(clippy::too_many_arguments)]
fn probe_chunk_fast(
    world: &World,
    vps: &[(usize, Coord)],
    sessions: &mut [ProbeSession],
    srcs: &[(IpAddr, IpAddr)],
    part: &[IpAddr],
    cfg: &GcdConfig,
    ctx: &MeasurementCtx,
    window_start: u64,
    wire: &WireStats,
) -> Vec<f64> {
    let n = part.len();
    let attempts = usize::from(cfg.attempts.max(1));
    let mut rtts = vec![f64::NAN; vps.len() * n];
    if vps.is_empty() {
        return rtts;
    }
    // A batch shares one source address, so targets split by family.
    let v4: Vec<usize> = (0..n).filter(|&i| part[i].is_ipv4()).collect();
    let v6: Vec<usize> = (0..n).filter(|&i| part[i].is_ipv6()).collect();
    // Probe-byte buffers and delivery slots, reused across every batch.
    let mut bufs: Vec<Vec<u8>> = Vec::new();
    let mut slots: Vec<Option<Delivery>> = Vec::new();

    // Cap each wire batch so its delivery slots stay cache-resident: a
    // whole chunk's worth of `Option<Delivery>` runs to megabytes at
    // census scale, and the fold would stream it back out of DRAM. Wire
    // draws are keyed per probe, never per batch, so the split is
    // invisible in every outcome (`gcd_invariance` pins chunk and batch
    // geometry out of the results).
    const BATCH_BLOCK: usize = 512;
    let mut probe_vp = |pos: usize,
                        sessions: &mut [ProbeSession],
                        tis_v4: &[usize],
                        tis_v6: &[usize],
                        rtts: &mut [f64]| {
        let (vp, _) = vps[pos];
        for (tis, src) in [(tis_v4, srcs[pos].0), (tis_v6, srcs[pos].1)] {
            for block in tis.chunks(BATCH_BLOCK) {
                send_vp_batch(
                    world,
                    &mut sessions[pos],
                    src,
                    vp,
                    block,
                    part,
                    cfg,
                    ctx,
                    window_start,
                    wire,
                    &mut bufs,
                    &mut slots,
                );
                for (j, &ti) in block.iter().enumerate() {
                    let mut best = f64::NAN;
                    for d in slots[j * attempts..(j + 1) * attempts].iter().flatten() {
                        best = if best.is_nan() {
                            d.rtt_ms
                        } else {
                            best.min(d.rtt_ms)
                        };
                    }
                    rtts[pos * n + ti] = best;
                }
            }
        }
    };

    if cfg.precheck {
        // Responsiveness gate from the first participating VP: probe the
        // whole slice from vps[0], then engage the rest of the platform
        // only for the targets that answered — the probe set the
        // target-major reference sends, reordered.
        probe_vp(0, sessions, &v4, &v6, &mut rtts);
        let resp = |tis: &[usize]| -> Vec<usize> {
            tis.iter()
                .copied()
                .filter(|&ti| !rtts[ti].is_nan())
                .collect()
        };
        let (resp_v4, resp_v6) = (resp(&v4), resp(&v6));
        for pos in 1..vps.len() {
            probe_vp(pos, sessions, &resp_v4, &resp_v6, &mut rtts);
        }
    } else {
        for pos in 0..vps.len() {
            probe_vp(pos, sessions, &v4, &v6, &mut rtts);
        }
    }
    rtts
}

/// One (VP, family) batch: every target's attempt train, probe bytes
/// built into the reusable per-slot buffers (`build_probe_into`),
/// metadata attached so the wire takes the prepared path. `slots` comes
/// back with one entry per probe in probe order — positional, so a
/// repeated destination in `part` cannot misattribute replies.
#[allow(clippy::too_many_arguments)]
fn send_vp_batch(
    world: &World,
    session: &mut ProbeSession,
    src: IpAddr,
    vp: usize,
    tis: &[usize],
    part: &[IpAddr],
    cfg: &GcdConfig,
    ctx: &MeasurementCtx,
    window_start: u64,
    wire: &WireStats,
    bufs: &mut Vec<Vec<u8>>,
    slots: &mut Vec<Option<Delivery>>,
) {
    let attempts = usize::from(cfg.attempts.max(1));
    let total = tis.len() * attempts;
    // The wire keys per-probe draws on the offset inside the target's
    // window (rate invariance, §5.5.2), so attempts must occupy distinct
    // schedule offsets under a *fixed* window start — passing each
    // attempt's tx as its own window start would zero the offset and
    // give every retry the identical loss/jitter draw.
    let meta_at = |vp: usize, attempt: usize| -> (u64, ProbeMeta) {
        let tx = window_start + attempt as u64 * 50;
        (
            tx,
            ProbeMeta {
                measurement_id: cfg.measurement_id,
                worker_id: vp_wire_id(vp),
                tx_time_ms: tx,
            },
        )
    };
    // A v4 ICMP probe's bytes are a function of (source, meta) only: the
    // v4 ICMP checksum has no pseudo-header, so the destination address
    // never reaches the byte stream (`laces-packet` pins this with
    // `v4_echo_request_bytes_ignore_destination`). Within a batch the
    // meta varies only by attempt, so one template per attempt serves
    // every target byte-for-byte.
    let template = matches!(cfg.protocol, Protocol::Icmp) && src.is_ipv4();
    if template {
        if bufs.len() < attempts {
            bufs.resize_with(attempts, Vec::new);
        }
        for (attempt, buf) in bufs.iter_mut().enumerate().take(attempts) {
            let (_, meta) = meta_at(vp, attempt);
            build_probe_into(
                src,
                part[tis[0]],
                cfg.protocol,
                &meta,
                ProbeEncoding::PerWorker,
                buf,
            );
        }
    } else {
        if bufs.len() < total {
            bufs.resize_with(total, Vec::new);
        }
        let mut k = 0usize;
        for &ti in tis {
            for attempt in 0..attempts {
                let (_, meta) = meta_at(vp, attempt);
                build_probe_into(
                    src,
                    part[ti],
                    cfg.protocol,
                    &meta,
                    ProbeEncoding::PerWorker,
                    &mut bufs[k],
                );
                k += 1;
            }
        }
    }
    let mut probes: Vec<BatchProbe<'_>> = Vec::with_capacity(total);
    let mut k = 0usize;
    for &ti in tis {
        for attempt in 0..attempts {
            let (tx, meta) = meta_at(vp, attempt);
            probes.push(BatchProbe {
                dst: part[ti],
                bytes: if template { &bufs[attempt] } else { &bufs[k] },
                tx_time_ms: tx,
                window_start_ms: window_start,
                meta: Some((meta, ProbeEncoding::PerWorker)),
            });
            k += 1;
        }
    }
    if let Err(e) =
        world.send_probe_batch_slotted(session, src, cfg.protocol, &probes, ctx, wire, slots)
    {
        // laces-lint: allow(panic-path) — with `meta` attached the wire never parses probe bytes, so a malformed-probe error here means the engine itself built a bad prepared probe: a bug worth failing loudly on
        unreachable!("prepared GCD probes cannot be malformed: {e}");
    }
}

/// Assemble one target's verdict from the chunk's RTT matrix: trace the
/// per-VP probes in platform order, run the memoized enumeration, and
/// classify — the same per-target walk as the reference engine, with the
/// wire work already done.
#[allow(clippy::too_many_arguments)]
fn analyze_target_fast(
    vps: &[(usize, Coord)],
    geom: &VpGeometry,
    rtts: &[f64],
    ti: usize,
    n: usize,
    target: IpAddr,
    cfg: &GcdConfig,
    overlap_tests: &mut u64,
    tracer: &Tracer,
) -> PrefixGcd {
    let prefix = PrefixKey::of(target);
    let mut samples: Vec<RttSample> = Vec::with_capacity(vps.len());
    let best_of = |pos: usize| -> Option<f64> {
        let r = rtts[pos * n + ti];
        (!r.is_nan()).then_some(r)
    };

    let mut start = 0usize;
    if cfg.precheck {
        // Responsiveness gate from the first participating VP.
        let Some(&(vp0, c0)) = vps.first() else {
            trace_verdict(tracer, prefix, GcdClass::Unresponsive);
            return PrefixGcd {
                class: GcdClass::Unresponsive,
                enumeration: enumerate_counted_memo(&[], geom, overlap_tests),
            };
        };
        let best = best_of(0);
        trace_probe(tracer, prefix, vp0, best);
        match best {
            Some(rtt) => samples.push(RttSample {
                vp: vp0,
                vp_coord: c0,
                rtt_ms: rtt,
            }),
            None => {
                trace_verdict(tracer, prefix, GcdClass::Unresponsive);
                return PrefixGcd {
                    class: GcdClass::Unresponsive,
                    enumeration: enumerate_counted_memo(&[], geom, overlap_tests),
                };
            }
        }
        start = 1;
    }
    for (pos, &(vp, coord)) in vps.iter().enumerate().skip(start) {
        let best = best_of(pos);
        trace_probe(tracer, prefix, vp, best);
        if let Some(rtt) = best {
            samples.push(RttSample {
                vp,
                vp_coord: coord,
                rtt_ms: rtt,
            });
        }
    }

    let tests_before = *overlap_tests;
    let enumeration = enumerate_counted_memo(&samples, geom, overlap_tests);
    let tests_here = *overlap_tests - tests_before;
    classify_and_trace(tracer, prefix, enumeration, tests_here)
}

/// Measure one target at the pre-PR9 cost profile (see
/// [`run_campaign_reference`]): allocating probe construction, the scalar
/// observed wire path, recomputed haversines, linear geolocation scans.
#[allow(clippy::too_many_arguments)]
fn measure_target_reference(
    world: &Arc<World>,
    platform: PlatformId,
    vps: &[(usize, Coord)],
    target: IpAddr,
    cfg: &GcdConfig,
    wire: &WireStats,
    overlap_tests: &mut u64,
    tracer: &Tracer,
) -> PrefixGcd {
    let ctx = MeasurementCtx {
        id: cfg.measurement_id,
        day: cfg.day,
        span_ms: 0,
    };
    let prefix = PrefixKey::of(target);
    let mut samples: Vec<RttSample> = Vec::with_capacity(vps.len());

    let probe_from = |vp: usize| -> Option<f64> {
        let src = match target {
            IpAddr::V4(_) => plat::vp_src_v4(platform, vp),
            IpAddr::V6(_) => plat::vp_src_v6(platform, vp),
        };
        let mut best: Option<f64> = None;
        // Fixed window start for rate invariance; see `probe_target_fast`.
        let window_start = u64::from(cfg.measurement_id) * 1000;
        for attempt in 0..cfg.attempts.max(1) {
            let tx = window_start + u64::from(attempt) * 50;
            let meta = ProbeMeta {
                measurement_id: cfg.measurement_id,
                worker_id: vp_wire_id(vp),
                tx_time_ms: tx,
            };
            let pkt = build_probe(src, target, cfg.protocol, &meta, ProbeEncoding::PerWorker);
            if let Ok(Some(d)) = world.send_probe_observed(
                ProbeSource::Vp { platform, vp },
                &pkt,
                tx,
                window_start,
                &ctx,
                wire,
            ) {
                best = Some(best.map_or(d.rtt_ms, |b: f64| b.min(d.rtt_ms)));
            }
        }
        best
    };

    let mut start = 0usize;
    if cfg.precheck {
        // Responsiveness gate from the first participating VP.
        let Some((vp0, c0)) = vps.first().copied() else {
            trace_verdict(tracer, prefix, GcdClass::Unresponsive);
            return PrefixGcd {
                class: GcdClass::Unresponsive,
                enumeration: enumerate_counted_reference(&[], &world.db, overlap_tests),
            };
        };
        let best = probe_from(vp0);
        trace_probe(tracer, prefix, vp0, best);
        match best {
            Some(rtt) => samples.push(RttSample {
                vp: vp0,
                vp_coord: c0,
                rtt_ms: rtt,
            }),
            None => {
                trace_verdict(tracer, prefix, GcdClass::Unresponsive);
                return PrefixGcd {
                    class: GcdClass::Unresponsive,
                    enumeration: enumerate_counted_reference(&[], &world.db, overlap_tests),
                };
            }
        }
        start = 1;
    }
    for &(vp, coord) in &vps[start..] {
        let best = probe_from(vp);
        trace_probe(tracer, prefix, vp, best);
        if let Some(rtt) = best {
            samples.push(RttSample {
                vp,
                vp_coord: coord,
                rtt_ms: rtt,
            });
        }
    }

    let tests_before = *overlap_tests;
    let enumeration = enumerate_counted_reference(&samples, &world.db, overlap_tests);
    let tests_here = *overlap_tests - tests_before;
    classify_and_trace(tracer, prefix, enumeration, tests_here)
}

//! Latency-based (GCD) anycast detection — the iGreedy methodology inside
//! LACeS.
//!
//! A target probed from many geographically dispersed unicast vantage
//! points yields one feasibility disk per RTT sample; disjoint disks are a
//! *speed-of-light violation* proving the address is served from multiple
//! locations. This crate provides:
//!
//! * [`enumerate`] — the violation test, the greedy independent-disk site
//!   enumeration, and population-based geolocation (fast enough to run
//!   daily, unlike the original iGreedy);
//! * [`engine`] — measurement campaigns from a VP platform (Ark- or
//!   Atlas-like) over a target list, with per-VP availability, an optional
//!   single-VP responsiveness precheck, and multi-threaded probing;
//! * [`vp_selection`] — the minimum-inter-VP-distance selection used for
//!   the RIPE Atlas comparison.
//!
//! GCD is *sound* (the simulator's latency model never lets an RTT beat
//! light in fibre, so a violation is always real anycast) but *incomplete*:
//! regional anycast whose sites sit inside each other's blur radius is
//! invisible — exactly the false-negative behaviour the paper reports.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use laces_gcd::engine::{run_campaign, GcdClass, GcdConfig};
//! use laces_netsim::{World, WorldConfig};
//! use laces_packet::PrefixKey;
//!
//! let world = Arc::new(World::generate(WorldConfig::tiny()));
//! let targets: Vec<std::net::IpAddr> = world.targets[..50]
//!     .iter()
//!     .filter_map(|t| match t.prefix {
//!         PrefixKey::V4(p) => Some(std::net::IpAddr::V4(p.addr(77))),
//!         _ => None,
//!     })
//!     .collect();
//! let report = run_campaign(
//!     &world,
//!     world.std_platforms.ark,
//!     &targets,
//!     &GcdConfig::daily(900, 0),
//! )
//! .expect("unicast VP platform");
//! println!("{} anycast, {} probes", report.count(GcdClass::Anycast), report.probes_sent);
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod enumerate;
pub mod geometry;
pub mod vp_selection;

pub use engine::{run_campaign, run_campaign_reference, GcdClass, GcdConfig, GcdReport, PrefixGcd};
pub use enumerate::{
    enumerate, enumerate_counted, enumerate_counted_memo, enumerate_counted_reference,
    has_violation, Enumeration, RttSample, SiteEstimate,
};
pub use geometry::VpGeometry;
pub use vp_selection::{select_by_distance, select_by_distance_with};

//! Campaign-scoped vantage-point geometry.
//!
//! A GCD campaign compares VP-pair great-circle distances millions of
//! times — every `select_by_distance` test and every disk-overlap test in
//! the greedy enumeration reduces to "how far apart are these two VPs?",
//! because each feasibility disk is centred on its witnessing VP. The
//! distances themselves are constant across the whole campaign, so
//! [`VpGeometry`] computes each unordered pair once up front and the hot
//! paths index into the table instead of re-deriving haversines per
//! target.
//!
//! The memo is *bit-identical* to recomputation: `Coord::gcd_km` is an
//! exactly symmetric IEEE function (`sin(-x) = -sin(x)` exactly, the
//! half-angle sines are squared, and multiplication commutes), so storing
//! the `(min, max)` pair's distance loses nothing regardless of which
//! direction the caller asks for. The `gcd_invariance` suite pins the
//! memoized engine byte-identical to the recomputing reference.

use laces_geo::{CityDb, CityId, Coord};

/// Upper-triangular memo of pairwise VP great-circle distances, indexed by
/// the platform-scoped VP index (the same index [`RttSample::vp`] and
/// `select_by_distance` carry), plus a per-VP geolocation table answering
/// "most populous city within `r` km of this VP" by binary search.
///
/// [`RttSample::vp`]: crate::enumerate::RttSample
#[derive(Debug, Clone)]
pub struct VpGeometry {
    n: usize,
    /// Row-major upper triangle: `dist[tri(i) + (j - i - 1)]` holds the
    /// distance between VPs `i < j`, where `tri(i)` skips the first `i`
    /// rows.
    dist: Vec<f64>,
    n_cities: usize,
    /// Per-VP city distances, ascending: `city_dist[v * n_cities + k]` is
    /// the distance from VP `v` to its `k`-th nearest city.
    city_dist: Vec<f64>,
    /// `city_best[v * n_cities + k]` is the city maximising
    /// `(population, CityId)` among VP `v`'s `k + 1` nearest cities — the
    /// exact argmax [`CityDb::most_populous_in`] computes over a disk
    /// containing those cities and no others.
    city_best: Vec<u16>,
}

impl VpGeometry {
    /// Memoize every pairwise distance of `coords` (indexed by VP index)
    /// and each VP's distance-sorted city table.
    ///
    /// Cost is `n·(n-1)/2` VP-pair haversines plus `n·|cities|` city-leg
    /// haversines once per campaign — ~80 k for the 227-VP Ark platform —
    /// repaid on the first few targets.
    pub fn new(coords: &[Coord], db: &CityDb) -> Self {
        let n = coords.len();
        let mut dist = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dist.push(coords[i].gcd_km(&coords[j]));
            }
        }
        let n_cities = db.len();
        let mut city_dist = Vec::with_capacity(n * n_cities);
        let mut city_best = Vec::with_capacity(n * n_cities);
        let mut row: Vec<(f64, u16)> = Vec::with_capacity(n_cities);
        for c in coords {
            row.clear();
            // The leg is computed exactly as `Disk::contains` computes it
            // for a VP-centred disk: `center.gcd_km(&city)`.
            row.extend((0..n_cities).map(|i| {
                // laces-lint: allow(as-truncation) — i < db.len(), and CityDb is u16-indexed
                let id = i as u16;
                (c.gcd_km(&db.get(CityId(id)).coord), id)
            }));
            row.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut best: Option<(u64, u16)> = None;
            for &(d, i) in row.iter() {
                let pop = db.get(CityId(i)).population;
                if best.is_none_or(|b| (pop, i) > b) {
                    best = Some((pop, i));
                }
                city_dist.push(d);
                // A non-empty prefix always has a best entry; `unwrap_or`
                // keeps the measurement path panic-free regardless.
                city_best.push(best.map(|(_, i)| i).unwrap_or(0));
            }
        }
        VpGeometry {
            n,
            dist,
            n_cities,
            city_dist,
            city_best,
        }
    }

    /// Number of VPs covered by the memo.
    pub fn n_vps(&self) -> usize {
        self.n
    }

    /// Great-circle distance between VPs `a` and `b`, in km. Returns the
    /// exact f64 `coords[a].gcd_km(&coords[b])` would produce (0.0 when
    /// `a == b`).
    pub fn dist_km(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        // Offset of row i's first entry: i rows of lengths n-1, n-2, ...
        let row_start = i * (2 * self.n - i - 1) / 2;
        self.dist[row_start + (j - i - 1)]
    }

    /// The most populous city within `radius_km` of VP `vp` — byte-for-byte
    /// what [`CityDb::most_populous_in`] returns for a disk of that radius
    /// centred on the VP, via binary search over the memoized
    /// distance-sorted city row instead of per-city haversines.
    ///
    /// Inclusion uses the same `d <= r + 1e-9` tolerance as
    /// `Disk::contains`, and the prefix argmax reproduces the
    /// `(population, CityId)` total order of the grid and linear scans.
    pub fn most_populous_within_km(&self, vp: usize, radius_km: f64) -> Option<CityId> {
        let row = &self.city_dist[vp * self.n_cities..(vp + 1) * self.n_cities];
        let cnt = row.partition_point(|&d| d <= radius_km + 1e-9);
        (cnt > 0).then(|| CityId(self.city_best[vp * self.n_cities + cnt - 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords() -> Vec<Coord> {
        vec![
            Coord::new(52.37, 4.90),    // Amsterdam
            Coord::new(35.68, 139.69),  // Tokyo
            Coord::new(-23.55, -46.63), // Sao Paulo
            Coord::new(-33.87, 151.21), // Sydney
            Coord::new(47.61, -122.33), // Seattle
            Coord::new(0.0, 180.0),     // antimeridian
        ]
    }

    #[test]
    fn memo_is_bitwise_equal_to_recomputation_both_directions() {
        let cs = coords();
        let g = VpGeometry::new(&cs, &CityDb::embedded());
        assert_eq!(g.n_vps(), cs.len());
        for i in 0..cs.len() {
            for j in 0..cs.len() {
                let direct = cs[i].gcd_km(&cs[j]);
                assert_eq!(
                    g.dist_km(i, j).to_bits(),
                    direct.to_bits(),
                    "({i}, {j}) diverged"
                );
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let db = CityDb::embedded();
        let g = VpGeometry::new(&coords(), &db);
        for i in 0..g.n_vps() {
            assert_eq!(g.dist_km(i, i), 0.0);
        }
    }

    #[test]
    fn empty_and_singleton_platforms() {
        let db = CityDb::embedded();
        assert_eq!(VpGeometry::new(&[], &db).n_vps(), 0);
        let g = VpGeometry::new(&[Coord::new(1.0, 2.0)], &db);
        assert_eq!(g.n_vps(), 1);
        assert_eq!(g.dist_km(0, 0), 0.0);
    }

    /// Exhaustive equivalence of the per-VP prefix-argmax table against
    /// [`CityDb::most_populous_in`]: every VP, with radii swept through
    /// every city's exact distance plus boundary nudges either side of the
    /// `1e-9` inclusion tolerance.
    #[test]
    fn most_populous_within_matches_disk_query_at_every_boundary() {
        let db = CityDb::embedded();
        let cs = coords();
        let g = VpGeometry::new(&cs, &db);
        for (v, c) in cs.iter().enumerate() {
            let mut radii = vec![0.0, 1e-12, 5.0, 30_000.0];
            for (_, city) in db.iter() {
                let d = c.gcd_km(&city.coord);
                radii.extend([d, d - 2e-9, d + 2e-9, d - 1e-13, d + 1e-13]);
            }
            for r in radii {
                let disk = laces_geo::Disk::new(*c, r);
                assert_eq!(
                    g.most_populous_within_km(v, disk.radius_km),
                    db.most_populous_in(&disk),
                    "vp {v} radius {r}"
                );
            }
        }
    }
}

//! iGreedy-style enumeration and geolocation.
//!
//! Given RTT samples from geographically dispersed vantage points, each
//! sample defines a feasibility disk (the target must be within
//! speed-of-light range of the VP). A single host must lie in the
//! intersection of *all* disks; if any two disks are disjoint the address
//! is provably replicated. iGreedy enumerates a lower bound on the number
//! of sites by greedily picking a maximum independent set of disks
//! (smallest radius first — the tightest evidence), and geolocates each
//! picked disk to its most populous city.
//!
//! The original iGreedy implementation took hours for large campaigns; this
//! reimplementation is a single `O(n log n + n·k)` pass per target (n
//! samples, k enumerated sites), which is what makes a *daily* GCD stage
//! feasible (paper §4.1: "from hours to minutes").

use laces_geo::{CityDb, CityId, Coord, Disk};
use serde::{Deserialize, Serialize};

use crate::geometry::VpGeometry;

/// One latency observation from a vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Index of the vantage point (platform-scoped).
    pub vp: usize,
    /// Vantage-point location.
    pub vp_coord: Coord,
    /// Measured round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// An enumerated anycast site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteEstimate {
    /// The witnessing vantage point.
    pub vp: usize,
    /// The feasibility disk that witnessed the site.
    pub disk: Disk,
    /// Most populous city inside the disk, if the database has one
    /// (iGreedy's geolocation step).
    pub city: Option<CityId>,
}

/// Result of enumerating one target's samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enumeration {
    /// Independent sites found (length ≥ 2 proves anycast).
    pub sites: Vec<SiteEstimate>,
    /// Number of samples used.
    pub n_samples: usize,
}

impl Enumeration {
    /// Whether the samples prove the target is anycast.
    pub fn is_anycast(&self) -> bool {
        self.sites.len() >= 2
    }

    /// The enumerated site count (a lower bound on the true count).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// City names of enumerated sites (deduplicated, sorted).
    pub fn cities<'a>(&self, db: &'a CityDb) -> Vec<&'a str> {
        let mut names: Vec<&str> = self
            .sites
            .iter()
            .filter_map(|s| s.city.map(|c| db.get(c).name))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Run the greedy independent-disk enumeration over one target's samples.
///
/// Samples with non-finite or absurd RTTs are discarded. An empty sample
/// set yields an empty enumeration (unresponsive).
pub fn enumerate(samples: &[RttSample], db: &CityDb) -> Enumeration {
    enumerate_counted(samples, db, &mut 0)
}

/// [`enumerate`], also accumulating the number of disk-overlap tests the
/// greedy pass performed into `overlap_tests`. The test count is the
/// algorithm's true cost driver (`O(n·k)` for k enumerated sites) and is
/// what the campaign telemetry reports, since wall-clock time is
/// nondeterministic.
pub fn enumerate_counted(
    samples: &[RttSample],
    db: &CityDb,
    overlap_tests: &mut u64,
) -> Enumeration {
    enumerate_core(
        samples,
        overlap_tests,
        |_, p, _, d| p.overlaps(d),
        |_, d| db.most_populous_in(d),
    )
}

/// [`enumerate_counted`] with both geometry queries served from a
/// campaign's [`VpGeometry`] memo: each feasibility disk is centred on its
/// witnessing VP, so `picked.overlaps(candidate)` reduces to comparing the
/// memoized VP-pair distance against the radius sum, and geolocation
/// resolves through the VP's distance-sorted prefix-argmax city row.
/// Bit-identical to [`enumerate_counted`] (`Coord::gcd_km` is exactly
/// symmetric, the overlap comparison reproduces [`Disk::overlaps`]
/// literally, and the city row reproduces the
/// [`CityDb::most_populous_in`] argmax), without a single haversine in the
/// per-target loop.
///
/// The memo must cover every `RttSample::vp` index in `samples` and must
/// have been built over the [`CityDb`] the campaign geolocates against.
pub fn enumerate_counted_memo(
    samples: &[RttSample],
    geom: &VpGeometry,
    overlap_tests: &mut u64,
) -> Enumeration {
    enumerate_core(
        samples,
        overlap_tests,
        // Disk::overlaps, with the center distance read from the memo.
        |pv, p, cv, d| geom.dist_km(pv, cv) <= p.radius_km + d.radius_km + 1e-9,
        // CityDb::most_populous_in, with the per-city legs read from the
        // VP's sorted row (the disk's centre IS the witnessing VP).
        |vp, d| geom.most_populous_within_km(vp, d.radius_km),
    )
}

/// [`enumerate_counted`] at the pre-index cost profile: per-pair
/// haversines for every overlap test and a linear scan of the city table
/// for every geolocation. Semantically identical to the other variants —
/// this is the benchmark baseline and the equivalence-test oracle, not a
/// fallback.
pub fn enumerate_counted_reference(
    samples: &[RttSample],
    db: &CityDb,
    overlap_tests: &mut u64,
) -> Enumeration {
    enumerate_core(
        samples,
        overlap_tests,
        |_, p, _, d| p.overlaps(d),
        |_, d| db.most_populous_in_linear(d),
    )
}

/// The shared greedy pass behind the `enumerate_counted*` variants.
/// `overlaps(picked_vp, picked_disk, cand_vp, cand_disk)` and
/// `geolocate(witness_vp, disk)` abstract the geometry source; every
/// variant MUST be observationally identical to [`Disk::overlaps`] /
/// [`CityDb::most_populous_in`] so the variants stay interchangeable.
fn enumerate_core(
    samples: &[RttSample],
    overlap_tests: &mut u64,
    mut overlaps: impl FnMut(usize, &Disk, usize, &Disk) -> bool,
    mut geolocate: impl FnMut(usize, &Disk) -> Option<CityId>,
) -> Enumeration {
    let mut disks: Vec<(usize, Disk)> = samples
        .iter()
        .filter(|s| s.rtt_ms.is_finite() && (0.0..10_000.0).contains(&s.rtt_ms))
        .map(|s| (s.vp, Disk::from_rtt(s.vp_coord, s.rtt_ms)))
        .collect();
    let n_samples = disks.len();
    // Smallest radius first: tight disks are the strongest localisation
    // evidence and maximise the independent-set size. `total_cmp` because
    // the RTT filter above guarantees finite radii and the measurement
    // path must not carry a panic (radii are never NaN, and a total order
    // keeps the sort deterministic even if that invariant slipped).
    disks.sort_by(|a, b| a.1.radius_km.total_cmp(&b.1.radius_km).then(a.0.cmp(&b.0)));

    let mut picked: Vec<(usize, Disk)> = Vec::new();
    for (vp, disk) in disks {
        let mut independent = true;
        for (pv, p) in &picked {
            *overlap_tests += 1;
            if overlaps(*pv, p, vp, &disk) {
                independent = false;
                break;
            }
        }
        if independent {
            picked.push((vp, disk));
        }
    }

    let sites = picked
        .into_iter()
        .map(|(vp, disk)| SiteEstimate {
            vp,
            city: geolocate(vp, &disk),
            disk,
        })
        .collect();
    Enumeration { sites, n_samples }
}

/// The pure violation test: do any two samples' disks fail to overlap?
///
/// Equivalent to `enumerate(..).is_anycast()` but exits on the first
/// violation; used where only the verdict matters.
pub fn has_violation(samples: &[RttSample]) -> bool {
    let disks: Vec<Disk> = samples
        .iter()
        .filter(|s| s.rtt_ms.is_finite() && (0.0..10_000.0).contains(&s.rtt_ms))
        .map(|s| Disk::from_rtt(s.vp_coord, s.rtt_ms))
        .collect();
    // Check against the smallest disk first for early exit.
    let Some(min_idx) = disks
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.radius_km.total_cmp(&b.1.radius_km))
        .map(|(i, _)| i)
    else {
        return false;
    };
    for (i, d) in disks.iter().enumerate() {
        if i != min_idx && !d.overlaps(&disks[min_idx]) {
            return true;
        }
    }
    // The smallest disk overlapped everything; fall back to the full
    // quadratic check (rare: requires every small disk to sit inside the
    // blur of the others).
    for i in 0..disks.len() {
        for j in i + 1..disks.len() {
            if !disks[i].overlaps(&disks[j]) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> CityDb {
        CityDb::embedded()
    }

    fn sample(db: &CityDb, city: &str, rtt: f64, vp: usize) -> RttSample {
        RttSample {
            vp,
            vp_coord: db.get(db.by_name(city).unwrap()).coord,
            rtt_ms: rtt,
        }
    }

    #[test]
    fn empty_samples_are_unresponsive() {
        let e = enumerate(&[], &db());
        assert_eq!(e.n_sites(), 0);
        assert!(!e.is_anycast());
        assert!(!has_violation(&[]));
    }

    #[test]
    fn single_sample_is_one_site() {
        let db = db();
        let e = enumerate(&[sample(&db, "Amsterdam", 5.0, 0)], &db);
        assert_eq!(e.n_sites(), 1);
        assert!(!e.is_anycast());
    }

    #[test]
    fn unicast_pattern_no_violation() {
        // VPs across the world see RTTs proportional to their distance to a
        // single host in Frankfurt: all disks include Frankfurt.
        let db = db();
        let fra = db.get(db.by_name("Frankfurt").unwrap()).coord;
        let samples: Vec<RttSample> = ["Amsterdam", "Tokyo", "Sydney", "Sao Paulo", "Seattle"]
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let c = db.get(db.by_name(name).unwrap()).coord;
                // RTT = distance-derived minimum + realistic inflation.
                let rtt = laces_geo::min_rtt_ms(c.gcd_km(&fra)) * 1.4 + 2.0;
                RttSample {
                    vp: i,
                    vp_coord: c,
                    rtt_ms: rtt,
                }
            })
            .collect();
        let e = enumerate(&samples, &db);
        assert!(
            !e.is_anycast(),
            "unicast misdetected: {} sites",
            e.n_sites()
        );
        assert!(!has_violation(&samples));
    }

    #[test]
    fn anycast_pattern_detected_and_geolocated() {
        // Three sites: VPs in Tokyo, Amsterdam and Sao Paulo all measure
        // ~4 ms — impossible for one host.
        let db = db();
        let samples = vec![
            sample(&db, "Tokyo", 4.0, 0),
            sample(&db, "Amsterdam", 4.0, 1),
            sample(&db, "Sao Paulo", 4.0, 2),
        ];
        assert!(has_violation(&samples));
        let e = enumerate(&samples, &db);
        assert_eq!(e.n_sites(), 3);
        let cities = e.cities(&db);
        // Each 400 km disk contains its own metro (the most populous nearby).
        assert!(cities.contains(&"Tokyo"), "{cities:?}");
        assert!(cities.contains(&"Sao Paulo"), "{cities:?}");
    }

    #[test]
    fn regional_anycast_blurs_into_one_site() {
        // Two sites 200 km apart (Amsterdam, Brussels) probed from nearby
        // VPs with a few ms of access latency: the disks overlap, GCD cannot
        // tell them apart (the paper's regional false negative).
        let db = db();
        let samples = vec![
            sample(&db, "Amsterdam", 4.0, 0),
            sample(&db, "Brussels", 4.0, 1),
        ];
        let e = enumerate(&samples, &db);
        assert_eq!(e.n_sites(), 1, "regional anycast should evade GCD");
    }

    #[test]
    fn enumeration_is_a_lower_bound() {
        // Five true sites, but only three VPs are close enough to witness
        // separation: enumeration must be between 2 and 5.
        let db = db();
        let samples = vec![
            sample(&db, "Tokyo", 3.0, 0),
            sample(&db, "Singapore", 3.0, 1),
            sample(&db, "Sydney", 3.0, 2),
            sample(&db, "Los Angeles", 90.0, 3), // blurred
            sample(&db, "London", 110.0, 4),     // blurred
        ];
        let e = enumerate(&samples, &db);
        assert!(e.is_anycast());
        assert!((2..=5).contains(&e.n_sites()));
        // The three tight disks are all independent.
        assert!(e.n_sites() >= 3, "tight disks must all be picked");
    }

    #[test]
    fn greedy_prefers_small_disks() {
        let db = db();
        // A huge disk overlapping everything plus two tight separated disks:
        // picking the huge disk first would hide one site.
        let samples = vec![
            sample(&db, "Frankfurt", 250.0, 9),
            sample(&db, "Tokyo", 2.0, 0),
            sample(&db, "Sao Paulo", 2.0, 1),
        ];
        let e = enumerate(&samples, &db);
        assert_eq!(e.n_sites(), 2);
        let vps: Vec<usize> = e.sites.iter().map(|s| s.vp).collect();
        assert!(
            vps.contains(&0) && vps.contains(&1),
            "tight disks picked: {vps:?}"
        );
    }

    #[test]
    fn bogus_rtts_are_discarded() {
        let db = db();
        let samples = vec![
            sample(&db, "Tokyo", f64::NAN, 0),
            sample(&db, "Amsterdam", -3.0, 1),
            sample(&db, "Sydney", 50_000.0, 2),
            sample(&db, "Paris", 5.0, 3),
        ];
        let e = enumerate(&samples, &db);
        assert_eq!(e.n_samples, 1);
        assert_eq!(e.n_sites(), 1);
    }

    #[test]
    fn violation_shortcut_agrees_with_enumeration() {
        let db = db();
        let cases = vec![
            vec![
                sample(&db, "Tokyo", 4.0, 0),
                sample(&db, "Amsterdam", 4.0, 1),
            ],
            vec![
                sample(&db, "Tokyo", 200.0, 0),
                sample(&db, "Amsterdam", 200.0, 1),
            ],
            vec![
                sample(&db, "Amsterdam", 2.0, 0),
                sample(&db, "Brussels", 2.0, 1),
            ],
            vec![],
        ];
        for samples in cases {
            assert_eq!(
                has_violation(&samples),
                enumerate(&samples, &db).is_anycast()
            );
        }
    }

    #[test]
    fn memo_and_reference_variants_agree_with_enumerate_counted() {
        let db = db();
        let cases = vec![
            vec![],
            vec![sample(&db, "Amsterdam", 5.0, 0)],
            vec![
                sample(&db, "Tokyo", 4.0, 0),
                sample(&db, "Amsterdam", 4.0, 1),
                sample(&db, "Sao Paulo", 4.0, 2),
            ],
            vec![
                sample(&db, "Frankfurt", 250.0, 3),
                sample(&db, "Tokyo", 2.0, 0),
                sample(&db, "Sao Paulo", 2.0, 1),
                sample(&db, "Amsterdam", f64::NAN, 2),
            ],
            vec![
                sample(&db, "Tokyo", 3.0, 0),
                sample(&db, "Singapore", 3.0, 1),
                sample(&db, "Sydney", 3.0, 2),
                sample(&db, "Los Angeles", 90.0, 3),
                sample(&db, "London", 110.0, 4),
            ],
        ];
        for samples in cases {
            // The memo is indexed by VP index; cover 0..=max.
            let n = samples.iter().map(|s| s.vp + 1).max().unwrap_or(0);
            let mut coords = vec![laces_geo::Coord::new(0.0, 0.0); n];
            for s in &samples {
                coords[s.vp] = s.vp_coord;
            }
            let geom = VpGeometry::new(&coords, &db);
            let (mut t0, mut t1, mut t2) = (0u64, 0u64, 0u64);
            let base = enumerate_counted(&samples, &db, &mut t0);
            let memo = enumerate_counted_memo(&samples, &geom, &mut t1);
            let refr = enumerate_counted_reference(&samples, &db, &mut t2);
            assert_eq!(base, memo);
            assert_eq!(base, refr);
            assert_eq!(t0, t1);
            assert_eq!(t0, t2);
        }
    }
}

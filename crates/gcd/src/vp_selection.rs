//! Vantage-point selection.
//!
//! The paper's RIPE Atlas campaign (§5.2, Appendix A) selects probes so
//! that no two are within a minimum distance of each other, trading
//! enumeration power against probing cost (Fig. 8 sweeps this distance
//! from 100 km to 1,000 km). The same greedy filter is useful for thinning
//! any VP platform.

use laces_geo::Coord;

use crate::geometry::VpGeometry;

/// Greedy minimum-distance filter: walk the VPs in index order and keep
/// each one that is at least `min_km` from every VP kept so far.
///
/// Index order makes the selection deterministic and stable under platform
/// growth (new VPs never evict old ones).
pub fn select_by_distance(vps: &[(usize, Coord)], min_km: f64) -> Vec<(usize, Coord)> {
    let mut kept: Vec<(usize, Coord)> = Vec::new();
    for &(idx, coord) in vps {
        if kept.iter().all(|(_, k)| k.gcd_km(&coord) >= min_km) {
            kept.push((idx, coord));
        }
    }
    kept
}

/// [`select_by_distance`] with pair distances served from a campaign's
/// [`VpGeometry`] memo instead of recomputed haversines. The memo stores
/// the exact `gcd_km` values (and the walk order is identical), so the
/// selection is bit-for-bit the same. `geom` must cover every VP index in
/// `vps`.
pub fn select_by_distance_with(
    geom: &VpGeometry,
    vps: &[(usize, Coord)],
    min_km: f64,
) -> Vec<(usize, Coord)> {
    let mut kept: Vec<(usize, Coord)> = Vec::new();
    for &(idx, coord) in vps {
        if kept.iter().all(|&(k, _)| geom.dist_km(k, idx) >= min_km) {
            kept.push((idx, coord));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lat: f64, lon: f64) -> Coord {
        Coord::new(lat, lon)
    }

    #[test]
    fn zero_distance_keeps_everything() {
        let vps = vec![(0, c(0.0, 0.0)), (1, c(0.0, 0.0)), (2, c(1.0, 1.0))];
        assert_eq!(select_by_distance(&vps, 0.0).len(), 3);
    }

    #[test]
    fn filters_close_pairs() {
        // Amsterdam and Rotterdam are ~60 km apart.
        let vps = vec![
            (0, c(52.37, 4.90)),
            (1, c(51.92, 4.48)),
            (2, c(35.68, 139.69)),
        ];
        let kept = select_by_distance(&vps, 100.0);
        assert_eq!(kept.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn larger_min_distance_keeps_fewer() {
        let vps: Vec<(usize, Coord)> = (0..50)
            .map(|i| (i, c(-40.0 + (i as f64) * 1.5, (i as f64) * 3.0 - 90.0)))
            .collect();
        let mut prev = usize::MAX;
        for min_km in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            let n = select_by_distance(&vps, min_km).len();
            assert!(n <= prev, "selection must shrink as min distance grows");
            prev = n;
        }
    }

    #[test]
    fn kept_vps_respect_constraint() {
        let vps: Vec<(usize, Coord)> = (0..60)
            .map(|i| {
                (
                    i,
                    c(
                        ((i * 13) % 120) as f64 - 60.0,
                        ((i * 37) % 300) as f64 - 150.0,
                    ),
                )
            })
            .collect();
        let kept = select_by_distance(&vps, 800.0);
        for i in 0..kept.len() {
            for j in i + 1..kept.len() {
                assert!(kept[i].1.gcd_km(&kept[j].1) >= 800.0);
            }
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(select_by_distance(&[], 100.0).is_empty());
    }

    #[test]
    fn memoized_selection_matches_reference() {
        let vps: Vec<(usize, Coord)> = (0..60)
            .map(|i| {
                (
                    i,
                    c(
                        ((i * 13) % 120) as f64 - 60.0,
                        ((i * 37) % 300) as f64 - 150.0,
                    ),
                )
            })
            .collect();
        let coords: Vec<Coord> = vps.iter().map(|&(_, c)| c).collect();
        let geom = VpGeometry::new(&coords, &laces_geo::CityDb::embedded());
        for min_km in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            assert_eq!(
                select_by_distance(&vps, min_km),
                select_by_distance_with(&geom, &vps, min_km),
                "diverged at {min_km} km"
            );
        }
        // Also on a thinned subset (indices no longer contiguous).
        let subset: Vec<(usize, Coord)> = vps.iter().copied().step_by(7).collect();
        assert_eq!(
            select_by_distance(&subset, 800.0),
            select_by_distance_with(&geom, &subset, 800.0)
        );
    }
}

//! The full daily census pipeline: anycast-based stage over every protocol
//! and family, AT assembly, GCD confirmation, and JSON-lines publication —
//! the workload the paper runs every day (Fig. 3).
//!
//! ```text
//! cargo run --release -p laces-examples --bin daily_census -- [--mid|--paper] [--days N] [--out FILE]
//! ```

use std::sync::Arc;

use laces_census::longitudinal::presence_from_run;
use laces_census::pipeline::{CensusPipeline, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);
    let days: u32 = args
        .iter()
        .position(|a| a == "--days")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut pipeline = CensusPipeline::new(Arc::clone(&world), PipelineConfig::standard(&world));
    let mut censuses = Vec::new();
    for day in 0..days {
        let t0 = std::time::Instant::now();
        let out = pipeline.run_day(day).expect("valid pipeline config");
        let c = out.census;
        println!(
            "day {day}: {} records published ({} GCD-confirmed) in {:.1?}",
            c.records.len(),
            c.gcd_confirmed().len(),
            t0.elapsed()
        );
        println!(
            "  anycast stage: {} probes; GCD stage: {} probes over {} ATs",
            c.stats.anycast_probes, c.stats.gcd_probes, c.stats.gcd_target_count
        );
        for (label, ats) in &c.stats.ats_per_protocol {
            println!("  {label:>6}: {ats} candidates");
        }
        censuses.push(c);
    }

    if days > 1 {
        let (anycast, gcd) = presence_from_run(&censuses);
        let (a, g) = (anycast.stats(), gcd.stats());
        println!("\nlongitudinal ({days} days):");
        println!(
            "  anycast-based: union {} | every day {} | intermittent {}",
            a.union, a.always_present, a.intermittent
        );
        println!(
            "  GCD-confirmed: union {} | every day {} | intermittent {}",
            g.union, g.always_present, g.intermittent
        );
        let togglers = gcd.togglers(2);
        println!(
            "  temporary-anycast suspects (>=2 toggles): {}",
            togglers.len()
        );
    }

    // Publish the last day as JSON lines, as the public repository does.
    let last = censuses.last().expect("at least one day");
    let jsonl = last.to_jsonl();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &jsonl).expect("write census file");
            println!("\nwrote {} records to {path}", last.records.len());
        }
        None => {
            println!("\nfirst three published records (JSONL):");
            for line in jsonl.lines().take(3) {
                println!("  {line}");
            }
        }
    }
}

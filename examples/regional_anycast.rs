//! Regional anycast: where each methodology breaks (§5.8's ccTLD cases).
//!
//! Regional deployments — a ccTLD's three sites inside one country — are
//! the hard case for both methodologies: the anycast-based stage misses
//! them when every site sits in one VP's catchment, and GCD misses them
//! when the sites are within each other's latency blur. This example runs
//! both stages against ground truth and reports the failure matrix, which
//! is exactly why the census publishes both verdicts independently.
//!
//! ```text
//! cargo run --release -p laces-examples --bin regional_anycast -- [--mid|--paper]
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_core::Class;
use laces_netsim::TargetKind;
use laces_packet::PrefixKey;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);

    let mut pipeline = CensusPipeline::new(Arc::clone(&world), PipelineConfig::icmp_only(&world));
    let out = pipeline.run_day(0).expect("valid pipeline config");
    let gcd_confirmed: BTreeSet<PrefixKey> = out.census.gcd_confirmed().into_iter().collect();
    let icmp = &out.classifications["ICMPv4"];

    println!(
        "{:<44} {:>6} {:>8} {:>9} {:>6}",
        "deployment", "sites", "extent", "anycast?", "GCD?"
    );
    let mut both = 0;
    let mut only_anycast = 0;
    let mut only_gcd = 0;
    let mut neither = 0;
    for (i, dep) in world.deployments.iter().enumerate() {
        if !dep.regional {
            continue;
        }
        // Geographic extent: max pairwise site distance.
        let mut extent: f64 = 0.0;
        for a in &dep.sites {
            for b in &dep.sites {
                extent = extent.max(
                    world
                        .db
                        .get(a.city)
                        .coord
                        .gcd_km(&world.db.get(b.city).coord),
                );
            }
        }
        // Find this deployment's ICMP-responsive v4 prefixes.
        let prefixes: Vec<PrefixKey> = world
            .targets
            .iter()
            .filter(|t| {
                matches!(t.kind, TargetKind::Anycast { dep: d } if d.0 as usize == i)
                    && t.resp.icmp
                    && t.prefix.is_v4()
            })
            .map(|t| t.prefix)
            .collect();
        if prefixes.is_empty() {
            continue;
        }
        let p = prefixes[0];
        let detected_anycast = matches!(icmp.class_of(p), Class::Anycast { .. });
        let detected_gcd = gcd_confirmed.contains(&p);
        match (detected_anycast, detected_gcd) {
            (true, true) => both += 1,
            (true, false) => only_anycast += 1,
            (false, true) => only_gcd += 1,
            (false, false) => neither += 1,
        }
        println!(
            "{:<44} {:>6} {:>7.0}km {:>9} {:>6}",
            dep.operator,
            dep.n_sites(),
            extent,
            if detected_anycast { "yes" } else { "MISS" },
            if detected_gcd { "yes" } else { "MISS" },
        );
    }

    println!("\nfailure matrix over regional deployments:");
    println!("  detected by both          : {both}");
    println!(
        "  anycast-based only        : {only_anycast}  (GCD blind: sites within latency blur)"
    );
    println!("  GCD only                  : {only_gcd}  (anycast-based blind: one VP catchment)");
    println!("  missed by both            : {neither}");
    println!(
        "\nthe combined census (union + AT feedback) covers {} of {} regional deployments",
        both + only_anycast + only_gcd,
        both + only_anycast + only_gcd + neither
    );
}

//! Querying a published census through the indexed read path.
//!
//! Runs a few census days, publishes them through [`CensusStore`] (which
//! writes a binary index sidecar next to every day file), then opens a
//! [`QueryService`] handle and answers the questions a heavy-read consumer
//! asks — point lookups, longitudinal prefix histories, the Table 6 origin
//! AS ranking, day-over-day diffs and per-site prefix lists — without ever
//! deserialising a full day.
//!
//! ```text
//! cargo run --release -p laces-examples --bin census_queries -- [--mid|--paper] [--days N]
//! ```

use std::sync::Arc;

use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::store::CensusStore;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);
    let days: u32 = args
        .iter()
        .position(|a| a == "--days")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    // Publish: each save writes the day file, its telemetry sidecar, and
    // the query index (census-day-NNNNN.idx).
    let dir = std::env::temp_dir().join(format!("laces-census-queries-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CensusStore::open(&dir).expect("store directory");
    let mut pipeline = CensusPipeline::new(Arc::clone(&world), PipelineConfig::icmp_only(&world));
    for day in 0..days {
        let out = pipeline.run_day(day).expect("valid pipeline config");
        store.save(&out.census).expect("day publishes");
        println!(
            "day {day}: published {} records ({} GCD-confirmed)",
            out.census.records.len(),
            out.census.gcd_confirmed().len()
        );
    }

    // Open a handle. `.days(..)` could restrict the window; the cache
    // budget bounds resident index bytes, never correctness.
    let mut q = store
        .query()
        .cache_budget(16 << 20)
        .build()
        .expect("indexed store opens");
    println!("\nopened query service over days {:?}", q.days());

    // A prefix that is anycast on day 0, for the running example.
    let subject = q
        .summary(0)
        .ok()
        .and_then(|_| {
            let ranks = q.asn_ranking(0).expect("ranking");
            let top = ranks.first()?.asn;
            println!(
                "top origin AS on day 0: AS{top} ({} v4 + {} v6 anycast prefixes)",
                ranks[0].v4, ranks[0].v6
            );
            q.sites(0)
                .expect("site list")
                .first()
                .and_then(|(city, _)| {
                    q.site_prefixes(0, city)
                        .expect("site prefixes")
                        .into_iter()
                        .next()
                })
        })
        .expect("day 0 published anycast");

    // Point lookup: one prefix, one day, from the index alone.
    let point = q.point(0, subject).expect("lookup").expect("present");
    println!(
        "\npoint lookup {subject}: anycast_based={} gcd_confirmed={} sites={} origin={:?}",
        point.anycast_based_positive, point.gcd_confirmed, point.n_sites, point.origin_asn
    );

    // The full published record, read as its exact byte span.
    let line = q.record_json(0, subject).expect("lookup").expect("present");
    println!("published record: {line}");

    // Longitudinal history over every selected day.
    println!("\nhistory of {subject}:");
    for (day, anycast_based, gcd) in q.history(subject).expect("history") {
        println!("  day {day}: anycast_based={anycast_based} gcd_confirmed={gcd}");
    }

    // Day-over-day diff (appearances, disappearances, footprint changes).
    if days >= 2 {
        let d = q.diff(0, 1).expect("diff");
        println!(
            "\ndiff day 0 → 1: +{} -{} prefixes, {} footprint changes",
            d.appeared.len(),
            d.disappeared.len(),
            d.footprint_changes.len()
        );
    }

    // Per-day confirmed counts, answered from day summaries only.
    println!(
        "\nGCD-confirmed per day: {:?}",
        q.daily_confirmed_counts().expect("counts")
    );

    // The handle's own telemetry shows how little it read.
    let t = q.telemetry();
    println!(
        "\nservice telemetry: {} point lookups, {} index bytes read, {} record bytes read, {} cache hits / {} misses",
        t.counter("query.point_lookups"),
        t.counter("query.index_bytes_read"),
        t.counter("query.record_bytes_read"),
        t.counter("query.cache_hits"),
        t.counter("query.cache_misses"),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

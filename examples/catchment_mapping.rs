//! Verfploeter-style catchment mapping (the measurement that inspired
//! MAnycast² in the first place, §2.2).
//!
//! Probing every prefix from one anycast deployment and recording *which
//! site captures each response* yields the deployment's catchments — the
//! operational map an anycast operator uses for load balancing. The same
//! data also surfaces the MAnycast² intuition: prefixes that appear in
//! many sites' catchments at once are themselves anycast.
//!
//! ```text
//! cargo run --release -p laces-examples --bin catchment_mapping -- [--mid|--paper]
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_packet::Protocol;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);
    let platform = world.std_platforms.production;
    let targets = Arc::new(laces_examples::v4_hitlist(&world));

    println!(
        "mapping catchments of {} ({} sites) over {} prefixes...",
        world.platform(platform).name,
        world.platform(platform).n_vps(),
        targets.len()
    );
    let spec = MeasurementSpec::builder(7, platform)
        .protocol(Protocol::Icmp)
        .targets(targets)
        .build(&world)
        .expect("anycast platform");
    let outcome = run_measurement(&world, &spec).expect("valid spec");

    // Catchment of a prefix = the site that captured its responses. For
    // multi-site responders (anycast!) we list them all.
    let mut catchment_size: BTreeMap<u16, usize> = BTreeMap::new();
    let mut per_prefix: BTreeMap<laces_packet::PrefixKey, Vec<u16>> = BTreeMap::new();
    for r in &outcome.records {
        per_prefix.entry(r.prefix).or_default().push(r.rx_worker);
    }
    let mut multi_site = 0;
    for sites in per_prefix.values_mut() {
        sites.sort_unstable();
        sites.dedup();
        if sites.len() == 1 {
            *catchment_size.entry(sites[0]).or_default() += 1;
        } else {
            multi_site += 1;
        }
    }

    let sites = world
        .platform(platform)
        .sites()
        .expect("catchment mapping runs on an anycast platform");
    println!("\ncatchment sizes (prefixes captured exclusively per site):");
    let mut rows: Vec<(usize, u16)> = catchment_size.iter().map(|(s, n)| (*n, *s)).collect();
    rows.sort_unstable_by(|a, b| b.cmp(a));
    for (n, site) in &rows {
        let city = world.db.get(sites[*site as usize].city).name;
        let bar = "#".repeat((n * 40 / rows[0].0.max(1)).max(1));
        println!("  {city:<14} {n:>7}  {bar}");
    }
    println!(
        "\n{} prefixes appeared in multiple catchments — De Vries et al.'s\nobservation: those are themselves anycast (or unstable routes).",
        multi_site
    );

    // Catchment imbalance statistic an operator would act on.
    let max = rows.first().map(|r| r.0).unwrap_or(0);
    let min = rows.last().map(|r| r.0).unwrap_or(0);
    println!(
        "catchment imbalance: largest site holds {:.1}x the smallest",
        max as f64 / min.max(1) as f64
    );
}

//! Shared helpers for the example binaries.

use std::sync::Arc;

use laces_netsim::{World, WorldConfig};

/// Resolve the world scale from command-line arguments: `--paper` selects
/// the full paper-calibrated world (minutes of runtime), `--mid` a
/// mid-size one, anything else the seconds-scale test world.
pub fn world_from_args(args: &[String]) -> Arc<World> {
    let cfg = if args.iter().any(|a| a == "--paper") {
        eprintln!("generating the paper-scale world (~400k prefixes, this takes a few seconds)...");
        WorldConfig::paper()
    } else if args.iter().any(|a| a == "--mid") {
        WorldConfig::paper_topology_tiny_targets()
    } else {
        WorldConfig::tiny()
    };
    Arc::new(World::generate(cfg))
}

/// Representative probe addresses for all IPv4 prefixes of a world.
pub fn v4_hitlist(world: &World) -> Vec<std::net::IpAddr> {
    laces_hitlist::build_v4(world).addresses()
}

//! Watching the census for BGP hijacks and temporary anycast (§6 future
//! work, implemented): consume the BGP feed each day, verify events with
//! targeted measurements, and cross-check with the longitudinal one-day
//! anomaly detector.
//!
//! ```text
//! cargo run --release -p laces-examples --bin hijack_watch -- [--mid|--paper] [--days N]
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use laces_census::hijack::{detect_hijacks, DayEvidence};
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::trigger::{run_triggered_verification, TriggerVerdict};
use laces_netsim::bgp::bgp_updates;
use laces_packet::PrefixKey;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);
    let days: u32 = args
        .iter()
        .position(|a| a == "--days")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let mut cfg = PipelineConfig::icmp_only(&world);
    cfg.protocols_v6 = vec![];
    let mut pipeline = CensusPipeline::new(Arc::clone(&world), cfg);
    let mut evidence: Vec<DayEvidence> = Vec::new();

    println!("watching {days} days of BGP feed + census...\n");
    for day in 0..days {
        // The real-time path: BGP events trigger same-day verification.
        let feed = bgp_updates(&world, day);
        let report =
            run_triggered_verification(&world, day, 90_000 + day * 8).expect("valid specs");
        let confirmed = report.with_verdict(TriggerVerdict::ConfirmedNewAnycast);
        let suspects = report.with_verdict(TriggerVerdict::SuspectedHijack);
        println!(
            "day {day}: {} BGP events -> {} temporary-anycast turn-ups confirmed, {} hijack suspects ({} verification probes)",
            feed.len(),
            confirmed.len(),
            suspects.len(),
            report.probes_sent
        );
        for p in &suspects {
            println!("    !! origin change + multi-site responses: {p}");
        }

        // The batch path: the daily census feeds the longitudinal detector.
        let out = pipeline.run_day(day).expect("valid pipeline config");
        evidence.push(DayEvidence {
            day,
            gcd_confirmed: out.census.gcd_confirmed().into_iter().collect(),
            candidates: out.census.anycast_based().into_iter().collect(),
        });
    }

    let longitudinal_suspects = detect_hijacks(&evidence);
    println!(
        "\nlongitudinal one-day anomalies (suspected hijacks): {}",
        longitudinal_suspects.len()
    );
    let truth: BTreeSet<PrefixKey> = world
        .targets
        .iter()
        .filter(|t| t.hijack.is_some_and(|h| h.day < days))
        .map(|t| t.prefix)
        .collect();
    let mut confirmed_truth = 0;
    for s in &longitudinal_suspects {
        let is_real = truth.contains(&s.prefix);
        if is_real {
            confirmed_truth += 1;
        }
        println!(
            "  day {:>2}  {}  {}",
            s.day,
            s.prefix,
            if is_real {
                "(ground truth: real hijack)"
            } else {
                "(no hijack in truth — other anomaly)"
            }
        );
    }
    println!(
        "\nground truth: {} prefixes hijacked in the window; detector confirmed {}",
        truth.len(),
        confirmed_truth
    );
}

//! Quickstart: one synchronized anycast-based measurement, classified.
//!
//! ```text
//! cargo run --release -p laces-examples --bin quickstart -- [--mid|--paper] [CLI flags]
//! ```
//!
//! Accepts the LACeS CLI flags (`--protocol`, `--offset`, `--rate`,
//! `--static`, `--platform`, `--day`); run with `--protocol udp` to see the
//! DNS census, or `--offset 780000` to feel MAnycast²'s pain.

use std::sync::Arc;

use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_core::{cli, Class};
use laces_packet::IpVersion;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = laces_examples::world_from_args(&args);
    let cli_args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--paper" && *a != "--mid")
        .cloned()
        .collect();
    let req = match cli::parse_args(&cli_args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };

    // Resolve the platform by name against the world's registry.
    let platform = (0..world.platforms.len() as u16)
        .map(laces_netsim::PlatformId)
        .find(|&p| world.platform(p).name == req.platform && world.platform(p).is_anycast())
        .unwrap_or_else(|| {
            eprintln!(
                "unknown anycast platform {:?}; available: {:?}",
                req.platform,
                world
                    .platforms
                    .iter()
                    .filter(|p| p.is_anycast())
                    .map(|p| &p.name)
                    .collect::<Vec<_>>()
            );
            std::process::exit(2);
        });

    let hitlist = match req.family {
        IpVersion::V4 => {
            if req.protocol == laces_packet::Protocol::Udp {
                laces_hitlist::build_v4_dns(&world)
            } else {
                laces_hitlist::build_v4(&world)
            }
        }
        IpVersion::V6 => laces_hitlist::build_v6(&world),
    };
    println!(
        "probing {} {} targets over {} from {} ({} workers, offset {} ms)...",
        hitlist.len(),
        req.family.suffix(),
        req.protocol,
        world.platform(platform).name,
        world.platform(platform).n_vps(),
        req.offset_ms,
    );

    // The builder validates the whole definition up front: a unicast
    // platform, a reserved id or a nonsense fault plan is a typed
    // MeasurementError here instead of a panic mid-measurement.
    let spec = MeasurementSpec::builder(42, platform)
        .protocol(req.protocol)
        .targets(Arc::new(hitlist.addresses()))
        .rate_per_s(req.rate_per_s)
        .offset_ms(req.offset_ms)
        .encoding(req.encoding)
        .day(req.day)
        .build(&world)
        .expect("valid measurement request");
    let t0 = std::time::Instant::now();
    let outcome = run_measurement(&world, &spec).expect("valid spec");
    let class = AnycastClassification::from_outcome(&outcome);

    let mut unicast = 0usize;
    let mut anycast = 0usize;
    for o in class.observations.values() {
        if o.rx_workers.len() > 1 {
            anycast += 1;
        } else {
            unicast += 1;
        }
    }
    let unresponsive = outcome.n_targets - class.n_responsive();
    println!(
        "done in {:.1?}: {} probes sent, {} replies captured",
        t0.elapsed(),
        outcome.probes_sent,
        outcome.records.len()
    );
    println!("  anycast candidates : {anycast}");
    println!("  unicast            : {unicast}");
    println!("  unresponsive       : {unresponsive}");

    println!("\ncandidates by receiving-VP count (the confidence signal):");
    for (n_vps, count) in class.vp_count_histogram() {
        println!("  {n_vps:>3} VPs: {count}");
    }

    // Show a couple of high-confidence detections.
    println!("\nsample high-confidence detections:");
    let mut shown = 0;
    for (prefix, o) in &class.observations {
        if o.rx_workers.len() >= 5 {
            println!("  {prefix}  seen at {} VPs", o.rx_workers.len());
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (none at >=5 VPs — try --paper for the full-scale world)");
    }
    // Exercise the Class API for the first candidate.
    if let Some(p) = class.anycast_targets().first() {
        match class.class_of(*p) {
            Class::Anycast { n_vps } => println!("\nfirst candidate {p}: anycast at {n_vps} VPs"),
            other => println!("\nfirst candidate {p}: {other:?}"),
        }
    }
}
